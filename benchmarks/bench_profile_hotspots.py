"""Hot-path profile over a broadcast-factor sweep, recorded for posterity.

Runs the genome design at several unroll factors — the broadcast-width
axis of the source paper — with the stage cache and cross-run incremental
reuse off (profiling measures where *this run's* wall clock goes; replayed
or skipped stages would read as free), profiles the span trees, and
records the ``repro-profile/1`` document under the ``profile`` key of
``BENCH_flow.json``.

Asserted: the profiler finds NO super-linear stage over the sweep.  The
O(n²) refinement loop inside placement — the hot spot ROADMAP item 3
wanted surfaced, and which this bench originally asserted *existed* — was
flattened to linear (cached worst-neighbor corner costs with lazy
invalidation plus search-box fail guards), so this assertion now guards
against the regression re-appearing.  Each factor is measured min-of-N on
a fresh cold flow to keep scheduler/allocator noise out of the fit.
"""

from __future__ import annotations

import gc

from repro import obs
from repro.designs import build_design
from repro.flow import Flow
from repro.opt import FULL
from repro.testing import synthetic_calibration

DESIGN = "genome"
PARAM = "unroll"
#: Broadcast factors swept (unroll=1 exercises a different RTL shape;
#: 2..8 is the regime the paper's figures cover).  The intermediate 6
#: keeps every path's fit at three-plus points even after the profiler
#: censors its sub-floor small-factor readings — a two-point fit is one
#: noisy ratio and swings ±0.4 in slope.
FACTORS = (2, 4, 6, 8)
TOP_K = 12
#: Rounds over the factor list; per-path minimum self-times are kept.
#: Repeats are interleaved round-robin across factors (not batched per
#: factor) with a collection boundary per run: this bench shares its
#: pytest session with the rest of the suite, so spans see collector
#: pauses for other benches' garbage and slow machine phases (frequency
#: scaling, cache pressure) that drift over the session.  Pauses only
#: ever *add* time, so the per-factor minimum across rounds is the
#: honest reading — and interleaving makes any drift hit every factor
#: equally instead of systematically inflating whichever factors run
#: last, which reads as a fake super-linear slope.
REPEAT = 5


def _measure():
    reports = []
    for _rep in range(REPEAT):
        for factor in FACTORS:
            gc.collect()
            tracer = obs.Tracer()
            flow = Flow(
                calibration=synthetic_calibration(),
                stage_cache=False,
                incremental=False,
            )
            with obs.activate(tracer):
                flow.run(build_design(DESIGN, **{PARAM: factor}), FULL)
            reports.append((float(factor), obs.run_report(tracer)))
    return reports


def test_profile_finds_no_superlinear_stage(bench_extras, record):
    reports = _measure()

    document = obs.profile_reports(reports, top=TOP_K, repeat_reduce="min")
    document["design"] = DESIGN
    document["param"] = PARAM
    bench_extras["profile"] = document

    record(
        "profile_hotspots",
        f"{DESIGN} ({PARAM} sweep, config=full)\n"
        + obs.render_profile(document),
    )

    assert document["hotspots"], "profiler produced no hot paths"
    # Self-time shares are a partition of the total.
    assert abs(sum(s["share"] for s in document["hotspots"][:TOP_K]) - 1.0) < 0.2
    superlinear = document.get("superlinear_paths") or []
    assert not superlinear, (
        "super-linear scaling regressed in: "
        + ", ".join(superlinear)
        + " — placement refinement (and every other stage) is expected to "
        "scale linearly with broadcast width"
    )
