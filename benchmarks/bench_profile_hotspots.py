"""Hot-path profile over a broadcast-factor sweep, recorded for posterity.

Runs the genome design at several unroll factors — the broadcast-width
axis of the source paper — with the stage cache off (profiling measures
where *this run's* wall clock goes; replayed stages would read as free),
profiles the span trees, and records the ``repro-profile/1`` document
under the ``profile`` key of ``BENCH_flow.json``.

Asserted: the profiler finds at least one super-linear stage over the
sweep.  Today that is the O(n²) refinement loop inside placement — the
exact kind of hot spot ROADMAP item 3 wants surfaced; if an optimization
PR flattens it, this assertion is the reminder to re-point the bench at
the next-worst offender (or celebrate and drop it).
"""

from __future__ import annotations

from repro import obs
from repro.designs import build_design
from repro.flow import Flow
from repro.opt import FULL
from repro.testing import synthetic_calibration

DESIGN = "genome"
PARAM = "unroll"
#: Broadcast factors swept (unroll=1 exercises a different RTL shape;
#: 2..8 is the regime the paper's figures cover).
FACTORS = (2, 4, 8)
TOP_K = 12


def test_profile_flags_superlinear_stage(bench_extras, record):
    reports = []
    for factor in FACTORS:
        tracer = obs.Tracer()
        flow = Flow(calibration=synthetic_calibration(), stage_cache=False)
        with obs.activate(tracer):
            flow.run(build_design(DESIGN, **{PARAM: factor}), FULL)
        reports.append((float(factor), obs.run_report(tracer)))

    document = obs.profile_reports(reports, top=TOP_K)
    document["design"] = DESIGN
    document["param"] = PARAM
    bench_extras["profile"] = document

    record(
        "profile_hotspots",
        f"{DESIGN} ({PARAM} sweep, config=full)\n"
        + obs.render_profile(document),
    )

    assert document["hotspots"], "profiler produced no hot paths"
    # Self-time shares are a partition of the total.
    assert abs(sum(s["share"] for s in document["hotspots"][:TOP_K]) - 1.0) < 0.2
    superlinear = document.get("superlinear_paths") or []
    assert superlinear, (
        "no super-linear stage found over the sweep — either the scaling "
        "bottleneck was fixed (update this bench) or the profiler regressed"
    )
