"""Design-space exploration — coalescing and warm re-search, measured.

One seeded search over genome's ``plan × config × clock`` space from a
cold cache, then the identical search again warm.  Recorded into
``BENCH_flow.json`` under ``dse``: point/compile counters, the coalescing
ratio, cold and warm wall clock, and the winner.

Asserted, because they are the contract of the explorer:

* point dedup + lowering coalescing + dominance pruning keep compiles at
  or below ``MAX_COMPILE_RATIO`` of the enumerated points;
* the winner is never worse than the hand-tuned ``full`` configuration
  (generation 0 always contains it);
* the warm re-search reproduces the cold report exactly (winner digest
  included) while its flows skip pipeline stages via the content-
  addressed stage store — and it is faster.
"""

from __future__ import annotations

import time

from repro import obs
from repro.dse import InlineBackend, explore
from repro.flow import Flow
from repro.pipeline.store import StageArtifactStore
from repro.testing import synthetic_calibration

DESIGN = "genome"
BUDGET = 24
SEED = 2020
#: Compiles per enumerated point the search must stay at or below.
MAX_COMPILE_RATIO = 0.60


def _search(cache_dir):
    backend = InlineBackend(
        flow=Flow(
            seed=SEED,
            calibration=synthetic_calibration(),
            stage_cache=StageArtifactStore(root=str(cache_dir)),
        )
    )
    tracer = obs.Tracer()
    start = time.perf_counter()
    with obs.activate(tracer):
        report = explore(
            DESIGN, backend=backend, budget=BUDGET, seed=SEED
        )
    elapsed = time.perf_counter() - start
    runs = obs.run_report(tracer)["runs"]
    skipped = sum(
        run["counters"].get("pipeline.stages_skipped", 0) for run in runs
    )
    return report, elapsed, skipped


def test_dse_coalescing_and_warm_research(tmp_path, record, bench_extras):
    cache = tmp_path / "stages"

    cold, cold_s, cold_skipped = _search(cache)
    warm, warm_s, warm_skipped = _search(cache)

    ratio = cold.compiled / cold.enumerated
    full = next(
        e
        for e in cold.evaluations
        if e.generation == 0 and e.point.config_label == "full"
    )

    # -- the explorer's contract -----------------------------------------
    assert cold.winner is not None
    assert cold.winner.fmax_mhz >= full.fmax_mhz, (
        cold.winner.fmax_mhz,
        full.fmax_mhz,
    )
    assert ratio <= MAX_COMPILE_RATIO, (
        f"{cold.compiled}/{cold.enumerated} = {ratio:.2f} compiles per "
        f"enumerated point exceeds {MAX_COMPILE_RATIO}"
    )
    assert warm.to_dict() == cold.to_dict(), "warm re-search diverged"
    assert warm_skipped > cold_skipped, (
        "warm re-search never hit the stage store",
        cold_skipped,
        warm_skipped,
    )
    assert warm_s < cold_s, (warm_s, cold_s)

    bench_extras["dse"] = {
        "design": DESIGN,
        "budget": BUDGET,
        "seed": SEED,
        "enumerated": cold.enumerated,
        "compiled": cold.compiled,
        "deduplicated": cold.deduplicated,
        "coalesced": cold.coalesced,
        "pruned": cold.pruned,
        "compile_ratio": round(ratio, 4),
        "cold_search_s": round(cold_s, 4),
        "warm_search_s": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 2),
        "warm_stages_skipped": warm_skipped,
        "winner_fmax_mhz": round(cold.winner.fmax_mhz, 2),
        "winner_digest": cold.winner.digest,
        "full_fmax_mhz": round(full.fmax_mhz, 2),
    }

    record(
        "bench_dse",
        cold.summary()
        + (
            f"\n\ncompile ratio: {cold.compiled}/{cold.enumerated} = "
            f"{ratio:.0%} (floor for naive enumeration: 100%)"
            f"\ncold search: {cold_s:.2f}s, warm re-search: {warm_s:.2f}s "
            f"({cold_s / warm_s:.1f}x, {warm_skipped:.0f} stages skipped)"
            f"\nhand-tuned full: {full.fmax_mhz:.0f} MHz -> winner "
            f"{cold.winner.fmax_mhz:.0f} MHz"
        ),
    )
