"""Figure 17 — stage widths of the (a·b)*c pipeline + min-area cuts."""

import pytest

from repro.experiments.fig17 import format_fig17, run_fig17


@pytest.fixture(scope="module")
def result(record):
    out = run_fig17(width=32)
    record("fig17_widths", format_fig17(out))
    return out


def test_fig17_width_profile(benchmark, result):
    benchmark.pedantic(run_fig17, kwargs={"width": 32}, rounds=1, iterations=1)
    assert result.width == 32
    test_spindle_shape(result)
    test_cut_at_waist_saves_multiples(result)
    test_min_plan_cut_sits_at_narrow_region(result)


def test_spindle_shape(result):
    """Wide at both ends, one-scalar waist in the middle (Fig. 17)."""
    profile = result.profile
    waist = result.waist_stage
    assert profile[0] >= 512
    assert profile[waist - 1] == 32
    assert profile[-1] >= 1024


def test_cut_at_waist_saves_multiples(result):
    assert result.saving_factor > 3.0  # paper: 8.0x for its stage counts


def test_min_plan_cut_sits_at_narrow_region(result):
    first_cut = result.min_plan.cuts[0]
    assert result.profile[first_cut - 1] == min(result.profile)


def test_scaling_to_512_wide(record):
    big = run_fig17(width=512)
    record("fig17_widths_512", format_fig17(big))
    assert min(big.profile) == 32
    assert max(big.profile) >= 16384
    assert big.saving_factor > 5.0
