"""Incremental sweep recompilation — warm-point reuse, measured.

The workload the incremental machinery is built for: re-running a
broadcast-factor sweep.  One pass compiles every point from scratch
(fresh flows, every reuse path disabled); a warm incremental flow then
runs the same points twice — the first pass seeds the per-loop
scheduling memos, the RTL tape, the placement trajectories and the
persistent stage overlay, and the second pass re-visits every point as
an unchanged sweep re-run.

Recorded into ``BENCH_flow.json`` under ``incremental_sweep``: per-pass
scratch and warm-revisit wall clock, and the speedup.  Asserted: every
warm result is bit-identical to its from-scratch twin (fingerprints and
result digests), and the warm revisit is at least ``MIN_SPEEDUP``×
faster per pass — the headline number of this optimization, so unlike
the other benches it *is* wall-clock-asserted, with a floor far enough
under the ~8-12× typical measurement to hold on loaded CI runners.

Measurement hygiene: only the ``flow.run`` calls are inside the timed
windows (fingerprinting, digesting and assertions are not), each pass is
repeated with the fastest time *per sweep point* kept (scheduler and
collector pauses only ever add time, so the per-point minimum is the
honest reading and one pause cannot spoil a whole pass), and results
are reduced to digests immediately so collector pressure from retained
netlists is not billed to either side.
"""

from __future__ import annotations

import gc
import time

from repro.designs import build_design
from repro.flow import Flow
from repro.opt import FULL
from repro.testing import synthetic_calibration

DESIGN = "genome"
PARAM = "unroll"
FACTORS = (8, 16, 32, 64)
MIN_SPEEDUP = 5.0
#: Repeats per pass; per-point minima are kept across them.
SCRATCH_REPS = 2
WARM_REPS = 3


def _digests(result):
    return (result.fingerprint(), result.result_digest())


def _timed_pass(run_point):
    """Run every sweep point, timing only the flow runs.

    Returns ``({factor: seconds}, {factor: (fingerprint, digest)},
    journals)``.
    """
    point_s = {}
    digests = {}
    journals = {}
    # Collector off inside the timed windows (both passes equally): in a
    # shared pytest session the live heap from other benches makes
    # allocation-triggered gen-2 collections expensive, and those fire
    # deterministically by allocation count — repetition minima cannot
    # remove them.
    gc.collect()
    gc.disable()
    try:
        for factor in FACTORS:
            design = build_design(DESIGN, **{PARAM: factor})
            start = time.perf_counter()
            result = run_point(design)
            point_s[factor] = time.perf_counter() - start
            digests[factor] = _digests(result)
            journals[factor] = result.journal
    finally:
        gc.enable()
    return point_s, digests, journals


def _min_per_point(best, latest):
    if best is None:
        return dict(latest)
    return {f: min(best[f], latest[f]) for f in latest}


def test_warm_sweep_revisit_is_fast_and_bit_identical(bench_extras):
    table = synthetic_calibration()

    def scratch_point(design):
        flow = Flow(calibration=table, stage_cache=False, incremental=False)
        return flow.run(design, FULL)

    scratch_points = None
    scratch = None
    for _rep in range(SCRATCH_REPS):
        gc.collect()  # keep collection of prior-pass garbage out of the clock
        point_s, digests, _journals = _timed_pass(scratch_point)
        scratch = digests
        scratch_points = _min_per_point(scratch_points, point_s)
    scratch_s = sum(scratch_points.values())

    inc = Flow(calibration=table, stage_cache=False, incremental=True)
    gc.collect()
    seed_points, seed, _journals = _timed_pass(lambda d: inc.run(d, FULL))
    seed_s = sum(seed_points.values())

    warm_points = None
    warm = journals = None
    for _rep in range(WARM_REPS):
        gc.collect()
        point_s, digests, journals = _timed_pass(lambda d: inc.run(d, FULL))
        warm = digests
        warm_points = _min_per_point(warm_points, point_s)
    warm_s = sum(warm_points.values())

    assert seed == scratch
    assert warm == scratch
    for factor in FACTORS:
        skipped = [e for e in journals[factor] if e["action"] == "skipped"]
        assert skipped and all(e["source"] == "overlay" for e in skipped)

    speedup = scratch_s / max(warm_s, 1e-9)
    bench_extras["incremental_sweep"] = {
        "design": DESIGN,
        "param": PARAM,
        "factors": list(FACTORS),
        "scratch_s": round(scratch_s, 3),
        "seed_pass_s": round(seed_s, 3),
        "warm_s": round(warm_s, 3),
        "warm_point_s": round(warm_s / len(FACTORS), 4),
        "speedup": round(speedup, 2),
    }
    assert speedup >= MIN_SPEEDUP, (
        f"warm sweep revisit only {speedup:.1f}x faster than scratch "
        f"(floor {MIN_SPEEDUP}x)"
    )
