"""Figures 14/15 — genome sequencing case study across unroll factors."""

import pytest

from repro.experiments.fig15 import format_fig15, run_fig15


@pytest.fixture(scope="module")
def result(record, engine):
    out = run_fig15(unrolls=(8, 16, 32, 64, 128), engine=engine)
    record("fig15_genome", format_fig15(out))
    return out


def test_fig15_genome_case_study(benchmark, result):
    benchmark.pedantic(format_fig15, args=(result,), rounds=1, iterations=1)
    assert len(result.points) == 5
    test_calibrated_estimate_tracks_actual_better(result)
    test_hls_estimate_insensitive_to_unroll(result)
    test_opt_beats_orig_at_every_unroll(result)
    test_orig_degrades_with_unroll_while_hls_estimate_flat(result)
    test_depth_overhead_small(result)


def test_calibrated_estimate_tracks_actual_better(result):
    """Fig 15a: our estimate grows with the broadcast factor; HLS's barely
    moves.  At large unroll the calibrated estimate must be much closer to
    the post-placement reality."""
    big = result.points[-1]
    hls_gap = abs(big.actual_ns - big.hls_estimate_ns)
    cal_gap = abs(big.actual_ns - big.calibrated_estimate_ns)
    assert cal_gap < hls_gap


def test_hls_estimate_insensitive_to_unroll(result):
    ests = [p.hls_estimate_ns for p in result.points]
    assert max(ests) - min(ests) < 0.7


def test_opt_beats_orig_at_every_unroll(result):
    for p in result.points:
        assert p.fmax_opt_mhz >= p.fmax_orig_mhz


def test_orig_degrades_with_unroll_while_hls_estimate_flat(result):
    """Fig 15b's real point: achieved frequency collapses as the broadcast
    factor grows, yet the HLS tool's own estimate barely moves — it cannot
    see the problem."""
    freqs = [p.fmax_orig_mhz for p in result.points]
    assert all(a >= b for a, b in zip(freqs, freqs[1:]))
    assert freqs[0] > 1.4 * freqs[-1]


def test_depth_overhead_small(result):
    """§5.2: ~one extra pipeline stage (9 -> 10 in the paper)."""
    for p in result.points:
        assert 0 <= p.depth_opt - p.depth_orig <= 4
