"""Figure 19 — stream buffer frequency vs buffer size, three variants."""

import pytest

from repro.experiments.fig19 import format_fig19, run_fig19


@pytest.fixture(scope="module")
def result(record, engine):
    out = run_fig19(engine=engine)
    record("fig19_streambuf", format_fig19(out))
    return out


def test_fig19_stream_buffer_sweep(benchmark, result):
    benchmark.pedantic(format_fig19, args=(result,), rounds=1, iterations=1)
    assert len(result.points) >= 4
    test_orig_degrades_with_size(result)
    test_full_opt_scales(result)
    test_full_beats_data_only_at_large_sizes(result)
    test_ordering_at_largest_size(result)


def test_orig_degrades_with_size(result):
    assert result.points[-1].fmax_orig_mhz < 0.75 * result.points[0].fmax_orig_mhz


def test_full_opt_scales(result):
    """'we need to optimize both the data broadcast and the control
    broadcast to achieve scalable performance' — the full-opt curve holds
    while orig collapses."""
    first, last = result.points[0], result.points[-1]
    orig_drop = first.fmax_orig_mhz / last.fmax_orig_mhz
    full_drop = first.fmax_full_mhz / last.fmax_full_mhz
    assert full_drop < orig_drop


def test_full_beats_data_only_at_large_sizes(result):
    big = result.points[-1]
    assert big.fmax_full_mhz > big.fmax_data_mhz


def test_ordering_at_largest_size(result):
    big = result.points[-1]
    assert big.fmax_full_mhz > big.fmax_data_mhz >= big.fmax_orig_mhz * 0.95
