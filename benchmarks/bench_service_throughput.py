"""Flow-compilation service — latency and coalesced throughput.

Three measurements, recorded under the ``service`` key of
``BENCH_flow.json``:

* ``cold_submit_s``: one ``--wait`` submission that actually compiles
  (queue admission + worker process + store write);
* ``warm_submit_s``: the identical submission again — a pure
  content-addressed store hit, no worker spawned;
* ``coalesced``: N concurrent clients submitting the identical request
  while it is in flight — wall clock of the whole burst plus the daemon's
  own counters proving exactly one compile happened.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from repro.service import ResultStore, ServiceClient, serve_in_thread

#: Concurrent clients in the coalescing burst.
BURST_CLIENTS = 8


def test_service_cold_warm_and_coalesced_throughput(bench_extras, tmp_path):
    store = ResultStore(str(tmp_path / "results"))
    with serve_in_thread(
        store=store,
        quarantine_dir=str(tmp_path / "quarantine"),
        workers=2,
        queue_limit=32,
    ) as server:
        client = ServiceClient(server.host, server.port)
        client.wait_ready()

        start = time.perf_counter()
        cold = client.submit("matmul", config="full", wait=True)
        cold_s = time.perf_counter() - start
        assert cold["state"] == "done"
        assert cold["served_from"] == "compile"

        start = time.perf_counter()
        warm = client.submit("matmul", config="full", wait=True)
        warm_s = time.perf_counter() - start
        assert warm["submitted_as"] == "store"
        assert warm["result_digest"] == cold["result_digest"]

        # A different design point, hit concurrently by N clients: the
        # first submission compiles, the rest coalesce onto it.
        def burst_submit(_i):
            burst_client = ServiceClient(server.host, server.port)
            return burst_client.submit(
                "face_detection", config="orig", wait=True, wait_timeout_s=600
            )

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=BURST_CLIENTS) as pool:
            records = list(pool.map(burst_submit, range(BURST_CLIENTS)))
        burst_s = time.perf_counter() - start

        digests = {record["result_digest"] for record in records}
        assert len(digests) == 1  # every client got the same result
        assert all(record["state"] == "done" for record in records)

        counters = client.status()["metrics"]["counters"]
        # matmul compiled once; face_detection compiled once; everything
        # else was a coalesce or a store hit.
        assert counters["service.compiles"] == 2

        bench_extras["service"] = {
            "cold_submit_s": round(cold_s, 3),
            "warm_submit_s": round(warm_s, 6),
            "warm_speedup": round(cold_s / max(warm_s, 1e-9), 1),
            "burst_clients": BURST_CLIENTS,
            "burst_wall_s": round(burst_s, 3),
            "compiles": counters["service.compiles"],
            "coalesced": counters.get("service.coalesced", 0),
            "result_hits": counters.get("service.result_hits", 0),
        }
        # A store hit must beat a real compile by a wide margin.
        assert warm_s < cold_s
