"""Parallel experiment engine — wall-clock accounting.

Two measurements, both recorded into ``BENCH_flow.json``:

* ``calibration``: cold §4.1 characterization (a fresh build) vs a warm
  load from the persistent disk cache.  The paper calls the skeleton
  statistics "reusable"; this is the reuse, measured (~14 s vs well under
  1 ms).
* ``speedup``: the same job list run through ``Engine(jobs=1)`` and
  ``Engine(jobs=N)``, with the results asserted identical.  On a 1-CPU
  runner the parallel run only adds pool overhead — the record keeps the
  honest number either way, which is the point of recording it.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.delay.cache import (
    load_calibration,
    resolve_calibration,
    save_calibration,
)
from repro.delay.calibration import build_default_calibration
from repro.engine import Engine, FlowJob
from repro.opt import BASELINE, FULL

#: A small but representative job mix: two designs × two configs.
SPEEDUP_JOBS = (
    FlowJob.make("matmul", BASELINE),
    FlowJob.make("matmul", FULL),
    FlowJob.make("face_detection", BASELINE),
    FlowJob.make("face_detection", FULL),
)


def test_calibration_cache_cold_vs_warm(bench_extras, tmp_path):
    # An off-default seed keeps the in-process memo cold, so this measures
    # a true from-scratch characterization.
    path = str(tmp_path / "cal.json")
    start = time.perf_counter()
    table = build_default_calibration("aws-f1", seed=2021)
    cold_s = time.perf_counter() - start
    save_calibration(table, path, device="aws-f1", seed=2021)
    start = time.perf_counter()
    loaded = load_calibration(path, device="aws-f1", seed=2021, smooth_passes=1)
    warm_s = time.perf_counter() - start
    assert loaded.to_dict() == table.to_dict()
    bench_extras["calibration"] = {
        "cold_build_s": round(cold_s, 3),
        "warm_load_s": round(warm_s, 6),
        "speedup": round(cold_s / max(warm_s, 1e-9), 1),
    }
    # The reuse must be at least an order of magnitude; in practice it is
    # four orders (~14 s build vs ~0.2 ms load).
    assert cold_s > 10 * warm_s


def test_parallel_engine_speedup(bench_extras):
    # Warm the calibration once so both modes measure engine overhead and
    # flow work, not one cold characterization landing on a random side.
    resolve_calibration("aws-f1", seed=2020)
    jobs = list(SPEEDUP_JOBS)

    start = time.perf_counter()
    sequential = Engine(jobs=1).run_flows(jobs)
    sequential_s = time.perf_counter() - start

    workers = min(4, os.cpu_count() or 1)
    start = time.perf_counter()
    parallel = Engine(jobs=max(2, workers)).run_flows(jobs)
    parallel_s = time.perf_counter() - start

    for seq, par in zip(sequential, parallel):
        assert seq.design == par.design
        assert seq.fmax_mhz == pytest.approx(par.fmax_mhz, abs=0)
    bench_extras["speedup"] = {
        "jobs": max(2, workers),
        "cpus": os.cpu_count(),
        "flow_jobs": len(jobs),
        "sequential_s": round(sequential_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(sequential_s / max(parallel_s, 1e-9), 2),
    }
