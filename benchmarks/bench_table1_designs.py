"""Table 1 — Orig vs Opt on all nine benchmark designs.

The headline reproduction: every design must gain frequency under the full
optimization set, with an average gain in the tens of percent (the paper
reports +53%).  Also covers the §5.3 HBM-stencil sync-pruning case study.
"""

import pytest

from repro.experiments.paper_data import TABLE1
from repro.experiments.table1 import average_gain, format_table1, run_table1


@pytest.fixture(scope="module")
def entries(record, trace_flows, engine):
    with trace_flows("table1"):
        result = run_table1(engine=engine)
    record("table1_designs", format_table1(result))
    return result


def test_table1_full_suite(benchmark, entries):
    # entries are computed once (module fixture); benchmark the formatting
    # path so the expensive flow runs aren't repeated by pedantic rounds.
    benchmark.pedantic(format_table1, args=(entries,), rounds=1, iterations=1)
    assert len(entries) == len(TABLE1)
    # Under --benchmark-only the granular tests are skipped, so the full
    # shape validation also runs here.
    test_every_design_gains(entries)
    test_average_gain_tens_of_percent(entries)
    test_gain_ranking_control_heavy_designs(entries)
    test_hbm_stencil_sync_pruning_case(entries)
    test_critical_class_shifts_or_improves(entries)


def test_every_design_gains(entries):
    for entry in entries:
        assert entry.opt.fmax_mhz > entry.orig.fmax_mhz, entry.design


def test_average_gain_tens_of_percent(entries):
    gain = average_gain(entries)
    assert 20.0 <= gain <= 120.0  # paper: 53%


def test_gain_ranking_control_heavy_designs(entries):
    """Control-broadcast designs gain the most at scale (paper: stencil
    +111%, stream buffer +82% top the table)."""
    by_name = {e.design: e.gain_pct for e in entries}
    data_only = [by_name["lstm"], by_name["face_detection"]]
    ctrl_heavy = [by_name["stencil"], by_name["hbm_stencil"]]
    assert max(ctrl_heavy) > max(data_only)


def test_hbm_stencil_sync_pruning_case(entries):
    """§5.3: splitting the fused HBM flows recovers a large fraction."""
    entry = next(e for e in entries if e.design == "hbm_stencil")
    assert entry.gain_pct >= 25.0


def test_critical_class_shifts_or_improves(entries):
    """Optimization either clears the broadcast class or speeds it up."""
    for entry in entries:
        orig_worst = entry.orig.timing.raw_period_ns
        opt_worst = entry.opt.timing.raw_period_ns
        assert opt_worst < orig_worst
