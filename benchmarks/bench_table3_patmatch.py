"""Table 3 — pattern matching: orig / data-only / data+ctrl."""

import pytest

from repro.experiments.table3 import format_table3, run_table3


@pytest.fixture(scope="module")
def result(record, engine):
    out = run_table3(engine=engine)
    record("table3_patmatch", format_table3(out))
    return out


def test_table3_pattern_matching(benchmark, result):
    benchmark.pedantic(format_table3, args=(result,), rounds=1, iterations=1)
    assert set(result.rows) == {"orig", "opt_data", "opt_data_ctrl"}
    test_data_only_helps(result)
    test_both_needed_for_full_gain(result)


def test_data_only_helps(result):
    assert result.rows["opt_data"].fmax_mhz > result.rows["orig"].fmax_mhz


def test_both_needed_for_full_gain(result):
    """Table 3: 187 -> 208 (data) -> 278 (data+ctrl): the control fix
    contributes the larger share."""
    orig = result.rows["orig"].fmax_mhz
    data = result.rows["opt_data"].fmax_mhz
    both = result.rows["opt_data_ctrl"].fmax_mhz
    assert both > data > orig
