"""Staged pipeline — stage-artifact reuse, measured.

Two measurements, recorded into ``BENCH_flow.json`` under
``pipeline_reuse``:

* ``compare``: ``Flow.compare`` (Orig + Opt on one design) run three ways —
  cold private store, warm store, cache disabled.  The cold run already
  reuses the shared front-end through the in-process overlay; the warm run
  skips every cacheable stage of both configs.
* ``sweep``: a 3-point × 2-config inline sweep, cold vs warm.  The warm
  sweep re-runs only the non-cacheable calibration stage per point.

Only result *equality* is asserted (digests, not timings): wall-clock
assertions flake on loaded CI runners, and the honest numbers in the
report are the deliverable.
"""

from __future__ import annotations

import time

from repro.designs import build_design
from repro.experiments.sweep import sweep
from repro.flow import Flow
from repro.opt import BASELINE, FULL
from repro.pipeline import StageArtifactStore
from repro.testing import synthetic_calibration

DESIGN = "matmul"
SWEEP_VALUES = (2048, 4096, 8192)


def _flow(stage_cache):
    return Flow(calibration=synthetic_calibration(), stage_cache=stage_cache)


def test_compare_prefix_reuse(bench_extras, tmp_path):
    store = StageArtifactStore(root=str(tmp_path / "stages"))

    start = time.perf_counter()
    cold = _flow(store).compare(build_design(DESIGN))
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = _flow(store).compare(build_design(DESIGN))
    warm_s = time.perf_counter() - start

    start = time.perf_counter()
    plain = _flow(False).compare(build_design(DESIGN))
    plain_s = time.perf_counter() - start

    for cached_run, plain_run in zip(warm, plain):
        assert cached_run.result_digest() == plain_run.result_digest()
    for cold_run, warm_run in zip(cold, warm):
        assert cold_run.result_digest() == warm_run.result_digest()

    def skipped(results):
        return sum(
            1
            for result in results
            for entry in result.journal
            if entry["action"] == "skipped"
        )

    extras = bench_extras.setdefault("pipeline_reuse", {})
    extras["compare"] = {
        "design": DESIGN,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "disabled_s": round(plain_s, 3),
        "cold_stages_skipped": skipped(cold),
        "warm_stages_skipped": skipped(warm),
        "warm_speedup": round(plain_s / max(warm_s, 1e-9), 2),
    }
    assert skipped(cold) > 0  # overlay front-end sharing inside compare
    assert skipped(warm) > skipped(cold)


def test_sweep_prefix_reuse(bench_extras, tmp_path):
    store = StageArtifactStore(root=str(tmp_path / "sweep-stages"))

    def run(stage_cache):
        return sweep(
            lambda depth: build_design("stream_buffer", depth=depth),
            "depth",
            list(SWEEP_VALUES),
            configs={"orig": BASELINE, "full": FULL},
            flow=_flow(stage_cache),
        )

    start = time.perf_counter()
    cold = run(store)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run(store)
    warm_s = time.perf_counter() - start

    for cold_row, warm_row in zip(cold.rows, warm.rows):
        for label in cold_row.results:
            assert (
                cold_row.results[label].result_digest()
                == warm_row.results[label].result_digest()
            )

    extras = bench_extras.setdefault("pipeline_reuse", {})
    extras["sweep"] = {
        "design": "stream_buffer",
        "points": len(SWEEP_VALUES),
        "configs": 2,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "warm_speedup": round(cold_s / max(warm_s, 1e-9), 2),
    }
