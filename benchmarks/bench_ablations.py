"""Ablations of the design choices DESIGN.md calls out.

Not in the paper's evaluation, but each isolates one mechanism the paper's
argument depends on:

* neighbor smoothing of calibration data (§4.1's noise suppression);
* backend register replication (the paper runs with "retiming and fan-out
  optimization enabled" — how much is it carrying?);
* movable-register retiming;
* skid read-gate policy (credit vs the paper's literal lagged gate);
* capping the number of skid buffers in the min-area DP.
"""

import statistics

import pytest

from repro.control.minarea import min_area_cuts
from repro.delay.calibration import characterize_operator
from repro.delay.calibrated import CalibrationTable
from repro.designs import build_design
from repro.flow import Flow
from repro.ir.ops import Opcode
from repro.ir.types import i32
from repro.opt import BASELINE, DATA_ONLY, FULL
from repro.physical.replication import ReplicationConfig
from repro.sim.harness import BackpressureSink
from repro.sim.pipeline import SkidPipeline, simulate


def _roughness(values):
    """Mean absolute second difference — noise metric for a curve."""
    seconds = [
        abs(values[i - 1] - 2 * values[i] + values[i + 1])
        for i in range(1, len(values) - 1)
    ]
    return statistics.mean(seconds)


def test_ablation_calibration_smoothing(benchmark, record):
    def run():
        factors = (1, 2, 4, 8, 16, 32, 64, 128, 256)
        points = characterize_operator(Opcode.ADD, i32, factors)
        table = CalibrationTable()
        for f, d in points:
            table.add("add_i32", f, d)
        raw = [d for _f, d in table.points("add_i32")]
        smooth = [d for _f, d in table.smoothed().points("add_i32")]
        return raw, smooth

    raw, smooth = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_smoothing",
        "raw:      " + " ".join(f"{v:.2f}" for v in raw)
        + "\nsmoothed: " + " ".join(f"{v:.2f}" for v in smooth)
        + f"\nroughness raw={_roughness(raw):.4f} smoothed={_roughness(smooth):.4f}",
    )
    assert _roughness(smooth) <= _roughness(raw) + 1e-9


def test_ablation_replication(benchmark, record):
    """Disabling backend fanout optimization hurts the broadcast design."""

    def run():
        design = build_design("genome", unroll=64)
        on = Flow().run(design, BASELINE)
        off = Flow(replication=ReplicationConfig(enabled=False)).run(design, BASELINE)
        return on.fmax_mhz, off.fmax_mhz

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_replication",
        f"replication on : {on:.0f} MHz\nreplication off: {off:.0f} MHz",
    )
    assert off <= on


def test_ablation_retiming(benchmark, record):
    def run():
        design = build_design("stream_buffer", depth=1 << 19)
        on = Flow().run(design, FULL)
        off = Flow(retime=False).run(design, FULL)
        return on.fmax_mhz, off.fmax_mhz

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_retiming", f"retiming on : {on:.0f} MHz\nretiming off: {off:.0f} MHz")
    assert off <= on * 1.05  # retiming never hurts materially


def test_ablation_skid_gate_policy(benchmark, record):
    """The paper's literal gate loses throughput after drain events; the
    credit gate matches stall-control cycles exactly."""

    def run():
        items = list(range(400))
        ready = BackpressureSink.duty(1, 3)
        _out1, cycles_credit = simulate(
            SkidPipeline(8, gate="credit"), items, ready
        )
        _out2, cycles_lagged = simulate(
            SkidPipeline(8, gate="lagged"), items, ready
        )
        return cycles_credit, cycles_lagged

    credit, lagged = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_skid_gate",
        f"credit gate: {credit} cycles\nlagged gate: {lagged} cycles",
    )
    assert credit <= lagged


def test_ablation_source_broadcast_tree(benchmark, record):
    """§4.1's rejected alternative: 'explicitly construct a broadcast tree
    in the source code'.  The paper argues backend duplication (plus
    calibrated scheduling) is better — we reproduce exactly that ordering:
    orig < source-tree < broadcast-aware."""

    def run():
        from repro.ir.broadcast_tree import build_broadcast_tree
        from repro.ir.passes import apply_pragmas

        flow = Flow()
        plain = build_design("genome", unroll=64)
        orig = flow.run(plain, BASELINE).fmax_mhz
        opt = flow.run(plain, DATA_ONLY).fmax_mhz
        treed = apply_pragmas(build_design("genome", unroll=64))
        loop = next(l for _k, l in treed.all_loops() if l.name == "back_search")
        for value in list(loop.body.inputs):
            if value.loop_invariant and value.fanout >= 16:
                build_broadcast_tree(loop.body, value, arity=8)
        tree = flow.run(treed, BASELINE).fmax_mhz
        return orig, tree, opt

    orig, tree, opt = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_source_tree",
        f"original           : {orig:.0f} MHz\n"
        f"source-level tree  : {tree:.0f} MHz\n"
        f"broadcast-aware opt: {opt:.0f} MHz",
    )
    assert tree > orig  # the tree does help...
    assert opt >= tree  # ...but §4.1 + backend duplication does better


def test_ablation_seed_robustness(benchmark, record):
    """The Table-1 conclusion must not hinge on one placement seed: the
    optimized design beats the baseline for every seed, and the gain's
    spread is small relative to its mean."""

    def run():
        rows = []
        for seed in (7, 2020, 31337, 424242):
            flow = Flow(seed=seed)
            design = build_design("face_detection")
            orig = flow.run(design, BASELINE).fmax_mhz
            opt = flow.run(design, FULL).fmax_mhz
            rows.append((seed, orig, opt))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    gains = [(opt / orig - 1) * 100 for _s, orig, opt in rows]
    record(
        "ablation_seed_robustness",
        "\n".join(
            f"seed {seed:>6d}: orig {orig:5.0f} MHz  opt {opt:5.0f} MHz "
            f"({(opt / orig - 1) * 100:+.0f}%)"
            for seed, orig, opt in rows
        )
        + f"\nmean gain {statistics.mean(gains):+.0f}% "
        f"(stdev {statistics.pstdev(gains):.1f} points)",
    )
    assert all(opt > orig for _s, orig, opt in rows)
    assert statistics.pstdev(gains) < max(12.0, statistics.mean(gains))


def test_ablation_minarea_buffer_cap(benchmark, record):
    widths = [1024] * 20 + [64] * 10 + [16] + [512] * 12 + [32] + [2048] * 8

    def run():
        return [min_area_cuts(widths, max_buffers=k).total_bits for k in (1, 2, 3, 0)]

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_minarea_cap",
        "\n".join(
            f"max_buffers={k or 'inf'}: {c} bits"
            for k, c in zip((1, 2, 3, "inf"), costs)
        ),
    )
    assert costs[0] >= costs[1] >= costs[2] >= costs[3]
