"""Figure 16 — Jacobi super-pipeline, stall vs skid across sizes."""

import pytest

from repro.experiments.fig16 import format_fig16, run_fig16
from repro.experiments.paper_data import FIG16_SKID_BUFFER_KB


@pytest.fixture(scope="module")
def result(record, engine):
    out = run_fig16(iterations=(1, 2, 4, 8), engine=engine)
    record("fig16_jacobi", format_fig16(out))
    return out


def test_fig16_jacobi_sweep(benchmark, result):
    benchmark.pedantic(format_fig16, args=(result,), rounds=1, iterations=1)
    assert [p.iterations for p in result.points] == [1, 2, 4, 8]
    test_skid_beats_stall_everywhere(result)
    test_stall_collapses_with_size(result)
    test_skid_holds_with_size(result)
    test_eight_iteration_pipeline_depth(result)
    test_skid_buffer_about_23kb(result)


def test_skid_beats_stall_everywhere(result):
    for p in result.points:
        assert p.fmax_skid_mhz > p.fmax_stall_mhz


def test_stall_collapses_with_size(result):
    assert result.points[-1].fmax_stall_mhz < 0.75 * result.points[0].fmax_stall_mhz


def test_skid_holds_with_size(result):
    """The paper's key contrast: skid frequency does not collapse."""
    first, last = result.points[0], result.points[-1]
    stall_drop = first.fmax_stall_mhz / last.fmax_stall_mhz
    skid_drop = first.fmax_skid_mhz / last.fmax_skid_mhz
    assert skid_drop < stall_drop


def test_eight_iteration_pipeline_depth(result):
    assert result.points[-1].stages >= 350  # paper: ~370 datapath stages


def test_skid_buffer_about_23kb(result):
    kb = result.points[-1].skid_buffer_bits / 8 / 1024
    assert kb == pytest.approx(FIG16_SKID_BUFFER_KB, rel=0.25)
