#!/usr/bin/env python3
"""Bench-regression sentinel: fresh BENCH_flow.json vs the committed baseline.

Compares the warm-path latency metrics of a freshly produced
``benchmarks/results/BENCH_flow.json`` against ``benchmarks/bench_baseline.json``
and exits nonzero when any tracked metric regressed beyond its tolerance —
the CI tripwire for "this PR made the warm path slower".

The baseline document pins, per metric (dotted path into the bench doc):

* ``value`` — the accepted reference measurement;
* ``tolerance`` — allowed relative regression before failing (default
  ``DEFAULT_TOLERANCE``, i.e. >25% slower fails).  Sub-millisecond metrics
  carry larger per-metric tolerances: on a loaded CI runner, scheduler
  jitter on a 0.2 ms file read dwarfs any plausible code regression.

Lower-is-better throughout (all tracked metrics are latencies in seconds).
A metric *missing* from the fresh document fails too — that means the
benchmark that produces it did not run, which is itself a regression of
the bench suite.

Usage::

    python benchmarks/check_bench_regression.py            # check
    python benchmarks/check_bench_regression.py --update   # re-pin baseline

``--update`` rewrites the baseline values from the fresh document (keeping
each metric's tolerance), for when a PR legitimately shifts the floor.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict, Optional

HERE = pathlib.Path(__file__).parent
DEFAULT_BENCH = HERE / "results" / "BENCH_flow.json"
DEFAULT_BASELINE = HERE / "bench_baseline.json"

BASELINE_SCHEMA = "repro-bench-baseline/1"

#: Allowed relative regression when a metric has no per-metric tolerance.
DEFAULT_TOLERANCE = 0.25


def lookup(document: Dict[str, Any], dotted: str) -> Optional[float]:
    """Resolve ``a.b.c`` into nested dicts; None when any hop is missing."""
    node: Any = document
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def check(
    bench: Dict[str, Any], baseline: Dict[str, Any]
) -> tuple[list[str], list[str]]:
    """Returns (failures, report_lines)."""
    failures: list[str] = []
    lines: list[str] = []
    default_tol = float(baseline.get("default_tolerance", DEFAULT_TOLERANCE))
    for name, spec in sorted(baseline.get("metrics", {}).items()):
        reference = float(spec["value"])
        tolerance = float(spec.get("tolerance", default_tol))
        ceiling = reference * (1.0 + tolerance)
        fresh = lookup(bench, name)
        if fresh is None:
            failures.append(f"{name}: missing from fresh bench document")
            lines.append(f"FAIL  {name:<36s} missing (benchmark did not run?)")
            continue
        ratio = fresh / reference if reference else float("inf")
        verdict = "ok"
        if fresh > ceiling:
            verdict = "FAIL"
            failures.append(
                f"{name}: {fresh:.6g}s vs baseline {reference:.6g}s "
                f"(+{(ratio - 1) * 100:.0f}%, tolerance +{tolerance * 100:.0f}%)"
            )
        elif fresh * (1.0 + tolerance) < reference:
            verdict = "fast"  # improved past the tolerance: worth re-pinning
        lines.append(
            f"{verdict:>4s}  {name:<36s} {fresh:>12.6f}s  "
            f"baseline {reference:.6f}s  ({ratio:.2f}x, tol +{tolerance * 100:.0f}%)"
        )
    return failures, lines


def update(bench: Dict[str, Any], baseline: Dict[str, Any]) -> Dict[str, Any]:
    """The baseline with every value re-pinned from the fresh document."""
    for name, spec in baseline.get("metrics", {}).items():
        fresh = lookup(bench, name)
        if fresh is not None:
            spec["value"] = round(fresh, 6)
    return baseline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", type=pathlib.Path, default=DEFAULT_BENCH)
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--update", action="store_true",
        help="re-pin baseline values from the fresh bench document",
    )
    args = parser.parse_args(argv)

    try:
        bench = json.loads(args.bench.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read bench document {args.bench}: {exc}")
        return 2
    try:
        baseline = json.loads(args.baseline.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read baseline {args.baseline}: {exc}")
        return 2
    if baseline.get("schema") != BASELINE_SCHEMA:
        print(f"error: {args.baseline} is not a {BASELINE_SCHEMA} document")
        return 2

    if args.update:
        args.baseline.write_text(
            json.dumps(update(bench, baseline), indent=2, sort_keys=True) + "\n"
        )
        print(f"re-pinned {len(baseline.get('metrics', {}))} baseline metrics "
              f"in {args.baseline}")
        return 0

    failures, lines = check(bench, baseline)
    print(f"bench regression check: {args.bench} vs {args.baseline}")
    for line in lines:
        print(f"  {line}")
    if failures:
        print(f"\n{len(failures)} warm-path regression(s):")
        for failure in failures:
            print(f"  - {failure}")
        print("\n(if this slowdown is intentional, re-pin with "
              "`python benchmarks/check_bench_regression.py --update`)")
        return 1
    print("\nall tracked warm-path metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
