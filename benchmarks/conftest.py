"""Benchmark-suite fixtures.

Each benchmark reproduces one table or figure of the paper, prints it next
to the paper's reported numbers, and writes the rendering to
``benchmarks/results/<name>.txt`` so results survive output capturing.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record(results_dir):
    """Write a reproduced table/figure to disk and echo it."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n(written to {path})")

    return _record
