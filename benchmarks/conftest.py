"""Benchmark-suite fixtures.

Each benchmark reproduces one table or figure of the paper, prints it next
to the paper's reported numbers, and writes the rendering to
``benchmarks/results/<name>.txt`` so results survive output capturing.

Benchmarks that execute full flows can additionally run them under a
:class:`repro.obs.Tracer` via the :func:`trace_flows` fixture; every traced
flow run (design, config, Fmax, per-stage durations, counters) is collected
and written to ``benchmarks/results/BENCH_flow.json`` at session end, so
the perf trajectory is machine-trackable across PRs.
"""

from __future__ import annotations

import json
import pathlib
from contextlib import contextmanager

import pytest

from repro import obs

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Schema tag of the BENCH_flow.json document.
BENCH_FLOW_SCHEMA = "repro-bench-flow/1"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record(results_dir):
    """Write a reproduced table/figure to disk and echo it."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n(written to {path})")

    return _record


@pytest.fixture(scope="session")
def flow_records(results_dir):
    """Session-wide collector of traced flow-run records.

    Teardown writes ``BENCH_flow.json`` next to the text results whenever
    at least one benchmark traced its flows.
    """
    records: list = []
    yield records
    if records:
        path = results_dir / "BENCH_flow.json"
        payload = {"schema": BENCH_FLOW_SCHEMA, "runs": records}
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {len(records)} traced flow run(s) to {path}")


@pytest.fixture(scope="session")
def trace_flows(flow_records):
    """``with trace_flows("table1"):`` — trace every flow run in the body.

    All runs executed inside the context are captured (design, config,
    Fmax, per-stage durations, counters) and tagged with the given bench
    label in the session's ``BENCH_flow.json``.
    """

    @contextmanager
    def _trace(bench: str):
        tracer = obs.Tracer()
        with obs.activate(tracer):
            yield tracer
        report = obs.run_report(tracer)
        for run in report["runs"]:
            run["bench"] = bench
        flow_records.extend(report["runs"])

    return _trace
