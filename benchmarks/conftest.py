"""Benchmark-suite fixtures.

Each benchmark reproduces one table or figure of the paper, prints it next
to the paper's reported numbers, and writes the rendering to
``benchmarks/results/<name>.txt`` so results survive output capturing.

Benchmarks that execute full flows can additionally run them under a
:class:`repro.obs.Tracer` via the :func:`trace_flows` fixture; every traced
flow run (design, config, Fmax, per-stage durations, counters) is collected
and written to ``benchmarks/results/BENCH_flow.json`` at session end, so
the perf trajectory is machine-trackable across PRs.
"""

from __future__ import annotations

import json
import os
import pathlib
from contextlib import contextmanager

import pytest

from repro import obs
from repro.engine import Engine

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Schema tag of the BENCH_flow.json document.
BENCH_FLOW_SCHEMA = "repro-bench-flow/2"

#: Environment knob: worker processes for the benchmark engine fixture.
BENCH_JOBS_ENV = "REPRO_BENCH_JOBS"


def bench_jobs() -> int:
    return int(os.environ.get(BENCH_JOBS_ENV, "1") or "1")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record(results_dir):
    """Write a reproduced table/figure to disk and echo it."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n(written to {path})")

    return _record


@pytest.fixture(scope="session")
def engine():
    """The experiment engine benchmarks run their flows through.

    Sequential by default (the legacy behavior); export
    ``REPRO_BENCH_JOBS=N`` to fan the design×config runs of each benchmark
    over N worker processes.
    """
    return Engine(jobs=bench_jobs())


@pytest.fixture(scope="session")
def _bench_flow_doc(results_dir):
    """The one ``BENCH_flow.json`` document of the session.

    Owns the teardown write, so the file appears whether benchmarks traced
    flow runs, recorded extra sections, or both — regardless of which of
    the collector fixtures below was actually instantiated.
    """
    doc: dict = {"runs": [], "extras": {}}
    yield doc
    if doc["runs"] or doc["extras"]:
        path = results_dir / "BENCH_flow.json"
        payload = {
            "schema": BENCH_FLOW_SCHEMA,
            "jobs": bench_jobs(),
            "runs": doc["runs"],
        }
        payload.update(doc["extras"])
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {len(doc['runs'])} traced flow run(s) to {path}")


@pytest.fixture(scope="session")
def bench_extras(_bench_flow_doc):
    """Extra top-level sections merged into ``BENCH_flow.json``.

    ``bench_engine_speedup`` records its cold-vs-warm calibration and
    sequential-vs-parallel wall-clock measurements here, so the perf
    trajectory of the engine itself is machine-trackable alongside the
    per-flow records.
    """
    return _bench_flow_doc["extras"]


@pytest.fixture(scope="session")
def flow_records(_bench_flow_doc):
    """Session-wide collector of traced flow-run records."""
    return _bench_flow_doc["runs"]


@pytest.fixture(scope="session")
def trace_flows(flow_records):
    """``with trace_flows("table1"):`` — trace every flow run in the body.

    All runs executed inside the context are captured (design, config,
    Fmax, per-stage durations, counters) and tagged with the given bench
    label in the session's ``BENCH_flow.json``.
    """

    @contextmanager
    def _trace(bench: str):
        tracer = obs.Tracer()
        with obs.activate(tracer):
            yield tracer
        report = obs.run_report(tracer)
        for run in report["runs"]:
            run["bench"] = bench
        flow_records.extend(report["runs"])

    return _trace
