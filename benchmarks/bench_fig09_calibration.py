"""Figure 9 — delay vs broadcast factor for add / BRAM access / float mul."""

import pytest

from repro.experiments import format_fig9, run_fig9


def test_fig9_calibration_curves(benchmark, record):
    panels = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    record("fig09_calibration", format_fig9(panels))
    # Shape assertions mirroring the paper's three panels:
    add = panels["add_i32"]
    assert add.measured[0] == pytest.approx(add.hls_predicted[0], abs=0.35)
    assert add.measured[-1] > 2 * add.hls_predicted[-1]
    mul = panels["mul_f32"]
    assert mul.measured[0] < mul.hls_predicted[0]  # conservative prediction
    assert mul.crossover_factor() > 1
    mem = panels["load_bram"]
    assert mem.measured[-1] > mem.measured[0]
