"""Cluster under load — Zipf burst latency, coalescing, peer fetch, failover.

A 3-node in-process cluster (thread mode: real daemons, real HTTP, one
shared stage store, per-node result stores) is driven through its router
with the workloads the design doc promises it handles:

* ``coalescing`` — a burst of concurrent *identical* submissions of a
  fresh digest: the ring sends them all to the same node, which compiles
  exactly once and coalesces the rest onto the in-flight job;
* ``zipf`` — ≥1000 requests whose design points follow a Zipf
  distribution (rank-``k`` weight ``1/k``), the canonical skewed-cache
  workload: the hot head exercises the router's hot-digest cache, the
  long tail exercises ring routing + node store hits.  Per-request wall
  clock is recorded and summarized as p50/p99;
* ``peer fetch`` — a digest compiled on its owner is then requested
  *directly* from a non-owner node, whose local miss must be served by
  downloading from the owner (``cluster.peer_hits``);
* ``failover`` — a node is taken offline and a digest it owned is
  re-submitted through the router, which must fail over to the backup
  replica (``failovers == 1``) and still answer.

Everything lands under the ``cluster`` key of ``BENCH_flow.json``.  The
gate: the router's warm p50 must beat a *single-node* warm submit (an
HTTP round-trip to a daemon store hit) — the hot-digest cache is the
whole point of fronting the fleet with a router.
"""

from __future__ import annotations

import random
import statistics
import time
from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.cluster import LocalCluster
from repro.service.client import ServiceClient

#: Zipf burst size (the ISSUE floor is 1000).
ZIPF_REQUESTS = 1000
#: Distinct design points in the Zipf universe.
ZIPF_RANKS = 8
#: Concurrent submitters during the bursts.
BURST_CLIENTS = 16
#: Identical concurrent submissions in the coalescing burst.
COALESCE_CLIENTS = 8
#: Samples for the single-node warm-submit baseline.
BASELINE_SAMPLES = 30


def _design_point(rank: int) -> dict:
    """Rank ``rank`` of the Zipf universe — distinct seeds give distinct
    digests while staying on the cheapest design in the registry."""
    return {"design": "vector_arith", "config": "orig", "seed": 3000 + rank}


def test_cluster_zipf_load(bench_extras, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    registry = obs.global_registry()
    peer_hits_before = registry.counter("cluster.peer_hits")

    with LocalCluster(
        nodes=3, base_dir=str(tmp_path / "cluster"), workers=2
    ) as cluster:
        cluster.wait_all_alive()
        router = cluster.router

        # --- cold fill: every rank compiles exactly once ----------------
        points = [_design_point(rank) for rank in range(ZIPF_RANKS)]
        start = time.perf_counter()
        cold_records = [router.submit(**point) for point in points]
        cold_fill_s = time.perf_counter() - start
        assert all(r["state"] == "done" for r in cold_records)
        digest_of = {
            rank: router.request_for(**points[rank]).digest()
            for rank in range(ZIPF_RANKS)
        }

        # --- coalescing: concurrent identical fresh submissions ---------
        fresh = {"design": "vector_arith", "config": "orig", "seed": 4242}
        with ThreadPoolExecutor(max_workers=COALESCE_CLIENTS) as pool:
            burst = list(
                pool.map(
                    lambda _i: router.submit(**fresh), range(COALESCE_CLIENTS)
                )
            )
        assert len({r["result_digest"] for r in burst}) == 1
        node_counters = [
            handle.client().status()["metrics"]["counters"]
            for handle in cluster.nodes
        ]
        compiles = sum(c.get("service.compiles", 0) for c in node_counters)
        coalesced = sum(c.get("service.coalesced", 0) for c in node_counters)
        # ranks + the fresh digest each compiled once, nothing else.
        assert compiles == ZIPF_RANKS + 1, (compiles, node_counters)

        # --- the Zipf burst ---------------------------------------------
        rng = random.Random(2020)
        weights = [1.0 / (rank + 1) for rank in range(ZIPF_RANKS)]
        schedule = rng.choices(range(ZIPF_RANKS), weights=weights, k=ZIPF_REQUESTS)

        def timed_submit(rank: int) -> float:
            begin = time.perf_counter()
            record = router.submit(**points[rank])
            elapsed = time.perf_counter() - begin
            assert record["result_digest"] == cold_records[rank]["result_digest"]
            return elapsed

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=BURST_CLIENTS) as pool:
            latencies = list(pool.map(timed_submit, schedule))
        zipf_wall_s = time.perf_counter() - start
        latencies.sort()
        p50 = latencies[len(latencies) // 2]
        p99 = latencies[int(len(latencies) * 0.99)]
        cache_hit_rate = router.cache_hits / max(router.requests, 1)

        # --- single-node warm baseline: HTTP round-trip to a store hit --
        owner = cluster.membership.owners(digest_of[0])[0]
        baseline_client = ServiceClient(owner.host, owner.port)
        samples = []
        for _ in range(BASELINE_SAMPLES):
            begin = time.perf_counter()
            record = baseline_client.submit(wait=True, **points[0])
            samples.append(time.perf_counter() - begin)
            assert record["result_digest"] == cold_records[0]["result_digest"]
        single_node_warm_p50 = statistics.median(samples)

        # --- peer fetch: a non-owner serves an owner's digest -----------
        non_owner = next(
            handle
            for handle in cluster.nodes
            if handle.node_id
            not in {info.node_id for info in cluster.membership.owners(digest_of[1])}
        )
        fetched = non_owner.client().submit(wait=True, **points[1])
        assert fetched["result_digest"] == cold_records[1]["result_digest"]
        peer_hits = registry.counter("cluster.peer_hits") - peer_hits_before
        assert peer_hits >= 1, "non-owner submit never consulted the owner"

        # --- failover: kill a primary, submit a fresh digest it owns ----
        # (a digest already answered is a router-cache hit and never
        # touches the fleet — the failover path needs uncached work)
        victim = cluster.nodes[0]
        fresh_for_victim = next(
            {"design": "vector_arith", "config": "orig", "seed": seed}
            for seed in range(5000, 5400)
            if cluster.membership.owners(
                router.request_for(
                    "vector_arith", config="orig", seed=seed
                ).digest()
            )[0].node_id
            == victim.node_id
        )
        cluster.membership.stop_heartbeat()  # keep the death ours to script
        cluster.stop_node(victim.node_id)
        failed_over = router.submit(**fresh_for_victim)
        assert failed_over["state"] == "done", failed_over
        assert failed_over["node"] != victim.node_id
        assert router.failovers == 1, router.failovers

        bench_extras["cluster"] = {
            "nodes": len(cluster.nodes),
            "replicas": cluster.membership.replicas,
            "zipf_requests": ZIPF_REQUESTS,
            "zipf_ranks": ZIPF_RANKS,
            "zipf_wall_s": round(zipf_wall_s, 3),
            "throughput_rps": round(ZIPF_REQUESTS / max(zipf_wall_s, 1e-9), 1),
            "p50_s": round(p50, 6),
            "p99_s": round(p99, 6),
            "cold_fill_s": round(cold_fill_s, 3),
            "single_node_warm_p50_s": round(single_node_warm_p50, 6),
            "router_cache_hit_rate": round(cache_hit_rate, 4),
            "compiles": compiles,
            "coalesced": coalesced,
            "coalesce_clients": COALESCE_CLIENTS,
            "peer_hits": peer_hits,
            "failovers": router.failovers,
        }

        # The gate: answering a hot digest from router memory must beat
        # the single-node warm path (HTTP round-trip + store read).
        assert p50 < single_node_warm_p50, (p50, single_node_warm_p50)
