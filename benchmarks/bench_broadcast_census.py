"""Broadcast census — §3's classification, quantified on every design.

Not a paper table, but the quantitative backbone of its §3 argument: the
baseline netlists contain large implicit broadcasts of the classes Table 1
names, and the optimized netlists demonstrably shrink the worst ones.
"""

import pytest

from repro.analysis.netstats import census, format_census
from repro.designs import build_design, design_names
from repro.flow import Flow
from repro.opt import BASELINE, FULL

CENSUS_DESIGNS = ("genome", "stream_buffer", "hbm_stencil", "stencil")


@pytest.fixture(scope="module")
def censuses(record):
    flow = Flow()
    out = {}
    blocks = []
    for name in CENSUS_DESIGNS:
        design = build_design(name)
        orig = flow.run(design, BASELINE)
        opt = flow.run(design, FULL)
        out[name] = (
            census(orig.gen.netlist, orig.placement),
            census(opt.gen.netlist, opt.placement),
        )
        blocks.append("ORIG " + format_census(out[name][0]))
        blocks.append("OPT  " + format_census(out[name][1]))
    record("broadcast_census", "\n\n".join(blocks))
    return out


def test_broadcast_census(benchmark, censuses):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    test_baselines_contain_big_broadcasts(censuses)
    test_control_broadcast_in_stall_designs(censuses)
    test_optimization_shrinks_worst_enable(censuses)


def test_baselines_contain_big_broadcasts(censuses):
    for name, (orig, _opt) in censuses.items():
        _cls, stats = orig.broadcastiest()
        assert stats.max_fanout >= 32, name


def test_control_broadcast_in_stall_designs(censuses):
    # The stall enable reaches everything: in the stream buffer it must be
    # one of the largest nets of the whole design.
    orig, _opt = censuses["stream_buffer"]
    assert orig.classes["enable"].max_fanout >= 1000


def test_optimization_shrinks_worst_enable(censuses):
    for name, (orig, opt) in censuses.items():
        before = orig.classes.get("enable")
        after = opt.classes.get("enable")
        if before is None or after is None:
            continue
        assert after.max_fanout <= before.max_fanout, name
