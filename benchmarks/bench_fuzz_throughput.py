"""Differential-fuzzing throughput — programs checked per second.

One fixed-seed campaign (generation + oracle + metamorphic pass checks)
timed end to end, recorded into ``BENCH_flow.json`` so the cost of a CI
fuzz budget stays machine-trackable: if a generator or interpreter change
makes programs 10x slower to check, the ``fuzz`` extras section shows it
on the next benchmark run.

The campaign must also come back clean — a divergence here is a real
miscompile and fails the benchmark loudly rather than skewing the rate.
"""

from __future__ import annotations

import time

from repro.fuzz import run_campaign

#: Enough programs to amortize per-campaign setup without dominating the
#: benchmark session (~10 s single-threaded).
CAMPAIGN_COUNT = 40

#: The compile/cache check is covered by its own benchmarks; here we time
#: the fuzz-specific machinery (generate, build, reference, sim, passes).
CAMPAIGN_CHECKS = ("oracle", "passes")


def test_fuzz_campaign_throughput(bench_extras, tmp_path):
    start = time.perf_counter()
    report = run_campaign(
        seed=2020,
        count=CAMPAIGN_COUNT,
        checks=CAMPAIGN_CHECKS,
        corpus_dir=str(tmp_path),
    )
    elapsed_s = time.perf_counter() - start

    assert report.ok, [d.summary() for d in report.divergences]
    assert report.programs == CAMPAIGN_COUNT
    bench_extras["fuzz"] = {
        "seed": report.seed,
        "checks": list(CAMPAIGN_CHECKS),
        "programs": report.programs,
        "elapsed_s": round(elapsed_s, 3),
        "programs_per_s": round(report.programs / max(elapsed_s, 1e-9), 2),
    }
