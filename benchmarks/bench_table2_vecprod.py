"""Table 2 — 512-wide vector product under three control schemes."""

import pytest

from repro.experiments.table2 import format_table2, run_table2


@pytest.fixture(scope="module")
def result(record, engine):
    out = run_table2(width=512, engine=engine)
    record("table2_vecprod", format_table2(out))
    return out


def test_table2_vector_product(benchmark, result):
    benchmark.pedantic(format_table2, args=(result,), rounds=1, iterations=1)
    assert set(result.rows) == {"stall", "skid", "skid_minarea"}
    test_skid_beats_stall(result)
    test_minarea_matches_skid_frequency(result)
    test_minarea_slashes_buffer_bits(result)
    test_naive_skid_buffer_costs_brams(result)


def test_skid_beats_stall(result):
    assert result.rows["skid"].fmax_mhz > result.rows["stall"].fmax_mhz


def test_minarea_matches_skid_frequency(result):
    """Table 2: 299 vs 301 MHz — splitting the buffer costs no speed."""
    skid = result.rows["skid"].fmax_mhz
    mina = result.rows["skid_minarea"].fmax_mhz
    assert mina >= 0.9 * skid


def test_minarea_slashes_buffer_bits(result):
    """Table 2's BRAM column: 12% naive vs 0.02% min-area."""
    assert result.skid_bits("skid_minarea") < result.skid_bits("skid") / 3


def test_naive_skid_buffer_costs_brams(result):
    naive_bram = result.rows["skid"].utilization["BRAM"]
    mina_bram = result.rows["skid_minarea"].utilization["BRAM"]
    assert naive_bram > mina_bram
