"""STA scaling — seed quadratic vs indexed linear vs incremental.

Sweeps the broadcast factor of a §4.1 arithmetic skeleton (one source
register fanning out to N adders, replication *disabled* so the broadcast
net keeps its full fanout) and measures, per factor:

* ``reference_s`` — the seed scan-based analyzer
  (:class:`repro.physical.reference.ReferenceTimingAnalyzer`), which
  re-scans ``net.sinks`` per sink pin: O(Σ fanout²);
* ``full_s`` — the production :class:`TimingAnalyzer` full analysis,
  O(pins) over the maintained pin index;
* ``incremental_s`` — ``TimingAnalyzer.update()`` after a one-cell
  placement nudge: proportional to the damaged cone, so it should stay
  flat while the others grow with N.

Every timed pair is also asserted *identical* (period, endpoints, hops) —
this doubles as the CI smoke check that incremental STA agrees with full
STA.  Results land in ``BENCH_flow.json`` under ``sta_scaling``.
"""

from __future__ import annotations

import time

from repro.delay.calibration import build_arith_skeleton
from repro.ir.ops import Opcode
from repro.ir.types import i32
from repro.physical.device import get_device
from repro.physical.fabric import Fabric
from repro.physical.placement import Placer
from repro.physical.reference import ReferenceTimingAnalyzer
from repro.physical.timing import TimingAnalyzer

#: Broadcast factors swept (Fig. 9's upper range, where the quadratic
#: bites, extended two doublings beyond the calibration sweep's maximum —
#: the seed's per-pin sink rescan grows ~4x per doubling, the indexed
#: engine ~2x, so the top factor is where the asymptote is unambiguous).
FACTORS = (64, 128, 256, 512, 1024, 2048, 4096)
#: Wall-clock floor asserted at the largest factor (ISSUE 3 acceptance).
MIN_SPEEDUP = 5.0


def _result_key(result):
    return (
        result.period_ns,
        result.fmax_mhz,
        result.raw_period_ns,
        result.startpoint,
        result.endpoint,
        result.path_class,
        result.class_periods,
        [(h.cell, h.net, h.incr_ns, h.arrival_ns) for h in result.critical_path],
    )


def _best_of(fn, repeats=3):
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_sta_scaling(record, bench_extras):
    fabric = Fabric(get_device("aws-f1"))
    rows = []
    for factor in FACTORS:
        netlist = build_arith_skeleton(Opcode.ADD, i32, factor)
        placement = Placer(fabric, seed=2020).place(netlist)

        reference_s, ref_result = _best_of(
            lambda: ReferenceTimingAnalyzer(netlist, placement).analyze()
        )
        full_s, full_result = _best_of(
            lambda: TimingAnalyzer(netlist, placement).analyze()
        )
        assert _result_key(full_result) == _result_key(ref_result)

        # Incremental: nudge one adder and re-time only its cone.  What a
        # retiming trial pays is update + worst-endpoint peek; the full
        # TimingResult (class attribution, hop trace) is reporting, built
        # once at the end of a flow.
        analyzer = TimingAnalyzer(netlist, placement)
        analyzer.propagate()
        victim = netlist.cells["op0"]

        def _nudge():
            x, y = placement.pos[victim.name]
            placement.put(victim, x + 0.5, y, placement.radius.get(victim.name, 0.0))
            analyzer.update(changed_cells=[victim.name])
            return analyzer.worst_endpoint()

        incremental_s, _worst = _best_of(_nudge)
        # Smoke check: incremental state == a from-scratch analysis of the
        # (nudged) netlist.  CI fails here if the cone update ever drifts.
        assert _result_key(analyzer.result()) == _result_key(
            TimingAnalyzer(netlist, placement).analyze()
        )

        rows.append(
            {
                "factor": factor,
                "cells": len(netlist.cells),
                "reference_s": round(reference_s, 5),
                "full_s": round(full_s, 5),
                "incremental_s": round(incremental_s, 6),
                "full_speedup": round(reference_s / max(full_s, 1e-9), 1),
                "incremental_speedup": round(
                    reference_s / max(incremental_s, 1e-9), 1
                ),
            }
        )

    lines = [
        f"{'factor':>7} {'cells':>7} {'seed STA':>10} {'full STA':>10} "
        f"{'incr STA':>10} {'full x':>7} {'incr x':>9}"
    ]
    for r in rows:
        lines.append(
            f"{r['factor']:>7} {r['cells']:>7} {r['reference_s']:>10.4f} "
            f"{r['full_s']:>10.4f} {r['incremental_s']:>10.6f} "
            f"{r['full_speedup']:>7.1f} {r['incremental_speedup']:>9.1f}"
        )
    record("sta_scaling", "\n".join(lines))
    bench_extras["sta_scaling"] = {"rows": rows, "min_speedup": MIN_SPEEDUP}

    largest = rows[-1]
    assert largest["full_speedup"] >= MIN_SPEEDUP, (
        f"full STA only {largest['full_speedup']}x faster than seed at "
        f"factor {largest['factor']}"
    )
    # Cone-local means the incremental cost must not scale with design
    # size: the largest design's update should cost no more than a few
    # multiples of the smallest design's, while full STA grows ~linearly
    # and the seed analyzer quadratically.
    assert largest["incremental_s"] <= 5 * rows[0]["incremental_s"] + 0.002, (
        "incremental update cost scales with netlist size"
    )
