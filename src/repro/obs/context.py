"""Cross-process trace context: trace ids and span ids.

One compilation request traverses three processes — client, daemon, forked
worker (possibly several worker attempts).  A :class:`TraceContext` is the
tiny identity that rides along: a 16-hex-char ``trace_id`` naming the whole
request, and the ``parent_span_id`` of whichever span caused this hop.

The ids are W3C-traceparent-shaped but deliberately minimal: there is no
sampling flag (everything is traced) and no vendor state.  Spans referenced
across a process boundary get an explicit ``span_id`` attribute; in-process
parentage stays structural (``Span.parent``/``Span.children``).

Ids come from ``os.urandom`` — uniqueness matters, cryptographic strength
does not, and ``uuid`` would drag in host identity for no benefit.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Optional


def new_trace_id() -> str:
    """A fresh 64-bit trace id, 16 lowercase hex chars."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 32-bit span id, 8 lowercase hex chars."""
    return os.urandom(4).hex()


@dataclass(frozen=True)
class TraceContext:
    """The identity a request hop carries: trace + causal parent span."""

    trace_id: str
    parent_span_id: Optional[str] = None

    @classmethod
    def mint(cls) -> "TraceContext":
        """A new root context (fresh trace, no parent)."""
        return cls(trace_id=new_trace_id())

    def child(self, span_id: str) -> "TraceContext":
        """The context to hand the next hop, parented at ``span_id``."""
        return TraceContext(trace_id=self.trace_id, parent_span_id=span_id)

    def to_dict(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id, "parent_span_id": self.parent_span_id}

    @classmethod
    def from_dict(cls, payload: Any) -> Optional["TraceContext"]:
        """Parse a wire dict; ``None`` for missing/malformed payloads (an
        untraced caller must not fail the request)."""
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        parent = payload.get("parent_span_id")
        return cls(
            trace_id=trace_id,
            parent_span_id=parent if isinstance(parent, str) and parent else None,
        )
