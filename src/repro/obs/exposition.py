"""Prometheus-style text exposition of a :class:`MetricsRegistry`.

Renders the daemon's live metrics as the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ (version
0.0.4) so ``GET /metrics`` is scrapeable by any off-the-shelf collector —
while staying zero-dependency, like everything in :mod:`repro.obs`.

Mapping:

* counters → ``# TYPE x counter`` with the conventional ``_total`` suffix;
* gauges → ``# TYPE x gauge``;
* histograms → ``# TYPE x summary``: ``{quantile="0.5"}`` /
  ``{quantile="0.9"}`` / ``{quantile="0.99"}`` series over the reservoir,
  plus exact ``x_count`` / ``x_sum`` and auxiliary ``x_min`` / ``x_max``
  gauges.

Metric names are sanitized (``service.queue_depth`` →
``repro_service_queue_depth``); label values are escaped per the format
(backslash, double quote, newline).  :func:`parse_exposition` is the
inverse used by tests and the CLI — every line the renderer emits must
round-trip through it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, Number

#: Content-Type of the rendered document (what Prometheus scrapers expect).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Quantiles exported per histogram.
QUANTILES = (0.5, 0.9, 0.99)

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: ``name{labels} value`` — labels parsed separately by :func:`_parse_labels`.
_LINE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$")


def metric_name(raw: str, prefix: str = "repro") -> str:
    """Sanitize a dotted internal name into a legal exposition name."""
    name = _SANITIZE.sub("_", raw)
    if prefix:
        name = f"{prefix}_{name}"
    if not _NAME_OK.match(name):
        name = f"_{name}"
    return name


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def format_value(value: Number) -> str:
    """Render a sample value (ints stay ints; floats use repr)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


@dataclass
class Sample:
    """One series sample: name, labels, value."""

    name: str
    value: Number
    labels: Tuple[Tuple[str, str], ...] = ()

    def render(self) -> str:
        if self.labels:
            inner = ",".join(
                f'{k}="{escape_label_value(str(v))}"' for k, v in self.labels
            )
            return f"{self.name}{{{inner}}} {format_value(self.value)}"
        return f"{self.name} {format_value(self.value)}"


@dataclass
class Family:
    """One metric family: a TYPE (and optional HELP) plus its samples."""

    name: str
    kind: str  # counter | gauge | summary | untyped
    samples: List[Sample] = field(default_factory=list)
    help: Optional[str] = None

    def render(self) -> List[str]:
        lines: List[str] = []
        if self.help:
            text = self.help.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {self.name} {text}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        lines.extend(sample.render() for sample in self.samples)
        return lines


def registry_families(
    registry: MetricsRegistry, prefix: str = "repro"
) -> List[Family]:
    """Map one registry onto exposition families, sorted by name."""
    families: List[Family] = []
    for raw, counter in sorted(registry.counters.items()):
        name = metric_name(raw, prefix)
        families.append(
            Family(
                name=f"{name}_total",
                kind="counter",
                samples=[Sample(f"{name}_total", counter.value)],
            )
        )
    for raw, gauge in sorted(registry.gauges.items()):
        name = metric_name(raw, prefix)
        families.append(
            Family(name=name, kind="gauge", samples=[Sample(name, gauge.value)])
        )
    for raw, hist in sorted(registry.histograms.items()):
        name = metric_name(raw, prefix)
        summary = Family(name=name, kind="summary")
        for q in QUANTILES:
            summary.samples.append(
                Sample(
                    name,
                    hist.percentile(q * 100.0),
                    labels=(("quantile", format(q, "g")),),
                )
            )
        summary.samples.append(Sample(f"{name}_count", hist.count))
        summary.samples.append(Sample(f"{name}_sum", hist.total))
        families.append(summary)
        if hist.count:
            families.append(
                Family(
                    name=f"{name}_min",
                    kind="gauge",
                    samples=[Sample(f"{name}_min", hist.min_value)],
                )
            )
            families.append(
                Family(
                    name=f"{name}_max",
                    kind="gauge",
                    samples=[Sample(f"{name}_max", hist.max_value)],
                )
            )
    return families


def render_exposition(
    registry: MetricsRegistry,
    extra_families: Iterable[Family] = (),
    prefix: str = "repro",
) -> str:
    """The full exposition document for one registry (plus extra families,
    e.g. the daemon's labeled per-lane queue depths).  Ends in a newline —
    the format requires the final line to be terminated."""
    lines: List[str] = []
    for family in list(registry_families(registry, prefix)) + list(extra_families):
        lines.extend(family.render())
    return "\n".join(lines) + "\n" if lines else "\n"


# ---------------------------------------------------------------------------
# Parsing (tests, CLI, and any scraper of our own)
# ---------------------------------------------------------------------------
class ExpositionParseError(ValueError):
    """A line of exposition text did not match the format."""


def _parse_labels(body: str) -> Tuple[Tuple[str, str], ...]:
    """Parse ``{k="v",...}`` (the braces included) with escape handling."""
    inner = body[1:-1].strip()
    labels: List[Tuple[str, str]] = []
    i = 0
    while i < len(inner):
        eq = inner.index("=", i)
        key = inner[i:eq].strip().lstrip(",").strip()
        if inner[eq + 1] != '"':
            raise ExpositionParseError(f"unquoted label value in {body!r}")
        j = eq + 2
        raw: List[str] = []
        while j < len(inner):
            ch = inner[j]
            if ch == "\\" and j + 1 < len(inner):
                raw.append(inner[j : j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ExpositionParseError(f"unterminated label value in {body!r}")
        labels.append((key, _unescape_label_value("".join(raw))))
        i = j + 1
        while i < len(inner) and inner[i] in ", ":
            i += 1
    return tuple(labels)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)


@dataclass
class ParsedExposition:
    """The parsed document: sample values plus family types."""

    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = field(
        default_factory=dict
    )
    types: Dict[str, str] = field(default_factory=dict)

    def value(
        self, name: str, labels: Tuple[Tuple[str, str], ...] = ()
    ) -> Optional[float]:
        return self.samples.get((name, tuple(labels)))

    def names(self) -> List[str]:
        return sorted({name for name, _labels in self.samples})


def parse_exposition(text: str) -> ParsedExposition:
    """Parse a whole exposition document; raises
    :class:`ExpositionParseError` on any malformed non-comment line."""
    doc = ParsedExposition()
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            parts = stripped.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                doc.types[parts[2]] = parts[3]
            continue
        match = _LINE.match(stripped)
        if not match:
            raise ExpositionParseError(f"line {lineno}: bad sample {line!r}")
        name, labels_body, value_text = match.groups()
        labels = _parse_labels(labels_body) if labels_body else ()
        try:
            value = _parse_value(value_text)
        except ValueError as exc:
            raise ExpositionParseError(
                f"line {lineno}: bad value {value_text!r}"
            ) from exc
        doc.samples[(name, labels)] = value
    return doc
