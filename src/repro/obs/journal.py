"""Append-only structured event journal (JSONL, ``repro-event/1``).

The service daemon and its forked workers write one JSON object per line
describing lifecycle events: job accepted / coalesced / started / retried /
quarantined / completed, stage cache hit / miss, calibration builds, daemon
startup and shutdown.  The journal is the service's *only* log — there is
deliberately no freeform stderr logging; everything is a queryable record.

Design constraints:

* **Multi-process safe.**  Writers open the file with ``O_APPEND`` and emit
  each record as a single ``write()`` of one ``\\n``-terminated line.  POSIX
  guarantees the append offset is atomic per write, so daemon and worker
  lines interleave but never interleave *within* a line (records are far
  below ``PIPE_BUF``).
* **Bounded.**  Size-based rotation: when the file would exceed
  ``max_bytes`` the writer renames ``events.jsonl`` → ``events.jsonl.1``
  (shifting older generations up to ``keep`` files) and starts fresh.
* **Corruption tolerant.**  Replay (:func:`read_events`) skips torn or
  truncated lines — a SIGKILL'd writer must not poison the log for readers.

An ambient journal mirrors the ambient tracer: components call
:func:`emit_event` without threading a handle through every signature;
:func:`activate_journal` installs one for the process.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

EVENT_SCHEMA = "repro-event/1"

#: Default rotation threshold (bytes) and number of rotated generations.
DEFAULT_MAX_BYTES = 4 * 1024 * 1024
DEFAULT_KEEP = 3


class EventJournal:
    """One JSONL event log with size-based rotation."""

    def __init__(
        self,
        path: Path,
        max_bytes: int = DEFAULT_MAX_BYTES,
        keep: int = DEFAULT_KEEP,
        source: Optional[str] = None,
    ) -> None:
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.keep = int(keep)
        #: Stamped onto every record as ``source`` (e.g. ``daemon`` or
        #: ``worker``); ``pid`` is always stamped.
        self.source = source

    # -- write side ------------------------------------------------------
    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one ``repro-event/1`` record; returns the record."""
        record: Dict[str, Any] = {
            "schema": EVENT_SCHEMA,
            "ts": time.time(),
            "event": event,
            "pid": os.getpid(),
        }
        if self.source:
            record["source"] = self.source
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        self._rotate_if_needed(len(line))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        return record

    def _rotate_if_needed(self, incoming: int) -> None:
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size + incoming <= self.max_bytes:
            return
        # Shift generations: .{keep-1} -> .{keep}, ..., base -> .1.  Best
        # effort — a concurrent rotator losing the race is harmless, the
        # journal is advisory telemetry.
        try:
            oldest = self.path.with_name(f"{self.path.name}.{self.keep}")
            if oldest.exists():
                oldest.unlink()
            for gen in range(self.keep - 1, 0, -1):
                src = self.path.with_name(f"{self.path.name}.{gen}")
                if src.exists():
                    os.replace(src, self.path.with_name(f"{self.path.name}.{gen + 1}"))
            os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        except OSError:
            pass

    # -- read side -------------------------------------------------------
    def generations(self) -> List[Path]:
        """All journal files, oldest generation first."""
        files: List[Path] = []
        for gen in range(self.keep, 0, -1):
            candidate = self.path.with_name(f"{self.path.name}.{gen}")
            if candidate.exists():
                files.append(candidate)
        if self.path.exists():
            files.append(self.path)
        return files

    def read(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        return read_events(self.path, keep=self.keep, limit=limit)


def _iter_records(path: Path) -> Iterator[Dict[str, Any]]:
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn/truncated write — skip, don't fail
                if isinstance(record, dict):
                    yield record
    except OSError:
        return


def read_events(
    path: Path,
    keep: int = DEFAULT_KEEP,
    limit: Optional[int] = None,
    grep: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Replay the journal at ``path`` (rotated generations first), skipping
    corrupt lines.  ``grep`` substring-filters against the JSON rendering of
    each record; ``limit`` keeps the most recent N matches."""
    path = Path(path)
    journal = EventJournal(path, keep=keep)
    records: List[Dict[str, Any]] = []
    for generation in journal.generations():
        records.extend(_iter_records(generation))
    if grep:
        needle = grep.lower()
        records = [
            r for r in records if needle in json.dumps(r, sort_keys=True).lower()
        ]
    if limit is not None and limit >= 0:
        records = records[-limit:]
    return records


def follow_events(
    path: Path,
    poll_s: float = 0.2,
    stop: Optional[Callable[[], bool]] = None,
) -> Iterator[Dict[str, Any]]:
    """Tail the journal: yield existing records, then new ones as they are
    appended (surviving rotation by reopening when the inode shrinks).
    Runs until ``stop()`` returns true (forever without one)."""
    path = Path(path)
    offset = 0
    while True:
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        if size < offset:  # rotated underneath us
            offset = 0
        if size > offset:
            with open(path, "r", encoding="utf-8", errors="replace") as handle:
                handle.seek(offset)
                for line in handle:
                    if not line.endswith("\n"):
                        break  # partial trailing line; re-read next poll
                    offset += len(line.encode("utf-8"))
                    stripped = line.strip()
                    if not stripped:
                        continue
                    try:
                        record = json.loads(stripped)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(record, dict):
                        yield record
        if stop is not None and stop():
            return
        time.sleep(poll_s)


# ---------------------------------------------------------------------------
# Ambient journal (mirrors the ambient tracer in repro.obs.tracer)
# ---------------------------------------------------------------------------
_ACTIVE: List[Optional[EventJournal]] = [None]


def activate_journal(journal: Optional[EventJournal]) -> Optional[EventJournal]:
    """Install ``journal`` as the process-ambient journal; returns the
    previous one so callers can restore it."""
    previous = _ACTIVE[0]
    _ACTIVE[0] = journal
    return previous


def current_journal() -> Optional[EventJournal]:
    return _ACTIVE[0]


def emit_event(event: str, **fields: Any) -> Optional[Dict[str, Any]]:
    """Emit through the ambient journal; a silent no-op when none is active
    (library code calls this unconditionally)."""
    journal = _ACTIVE[0]
    if journal is None:
        return None
    try:
        return journal.emit(event, **fields)
    except OSError:
        return None  # telemetry must never fail the flow
