"""Nestable-span tracer — the core of the observability layer.

Design goals, in order:

1. **Always-on instrumentation, zero-cost when idle.**  Flow code calls the
   module-level helpers (:func:`span`, :func:`add`, :func:`observe`,
   :func:`set_gauge`) unconditionally; when no tracer is active they hit
   the :data:`NULL_TRACER` singleton and do nothing.  No caller threads a
   tracer handle through ten layers of APIs.
2. **Zero dependencies.**  Pure stdlib (``time.perf_counter``), matching
   the repository's no-runtime-deps rule.
3. **Structured, not textual.**  A completed trace is a forest of
   :class:`Span` objects carrying wall-clock, free-form attributes, and a
   per-span :class:`~repro.obs.metrics.MetricsRegistry`; exporters in
   :mod:`repro.obs.report` turn it into Chrome ``trace_event`` JSON, a flat
   run report, or a console tree.

The ambient-tracer stack is a plain module global: the flow is
single-threaded (like the HLS tools it models), and keeping activation a
list push/pop makes nested activations (a benchmark tracing a flow that
itself activates nothing) behave sanely.

Usage::

    tracer = Tracer()
    with activate(tracer):
        with span("placement", cells=1234) as sp:
            ...
            sp.set("refine_moves", moved)
        add("physical.nets_replicated", 3)
    tracer.roots[0].duration_ms
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.obs.metrics import MetricsRegistry, Number


@dataclass
class Span:
    """One timed, attributed region of the flow.

    Attributes:
        name: Stage name (``"placement"``, ``"flow"``, ...).
        attrs: Free-form key/value annotations (input sizes, outcomes).
        start_s: Start time, seconds since the owning tracer's epoch.
        end_s: End time, or ``None`` while the span is open.
        children: Sub-spans, in start order.
        metrics: Counters/gauges/histograms recorded *while this span was
            the innermost active one*.
    """

    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0
    end_s: Optional[float] = None
    parent: Optional["Span"] = None
    children: List["Span"] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def duration_ms(self) -> float:
        end = self.end_s if self.end_s is not None else self.start_s
        return (end - self.start_s) * 1e3

    def set(self, key: str, value: Any) -> None:
        """Annotate the span (chainable shorthand for ``attrs[key] = v``)."""
        self.attrs[key] = value

    def walk(self) -> Iterator["Span"]:
        """Pre-order iteration over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in this subtree (pre-order), or None."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def find_all(self, name: str) -> List["Span"]:
        return [node for node in self.walk() if node.name == name]

    def aggregate_metrics(self) -> MetricsRegistry:
        """Metrics of this span's whole subtree, folded into one registry."""
        return MetricsRegistry.merged(node.metrics for node in self.walk())


class _NullSpan:
    """Inert stand-in yielded by :class:`NullTracer` — accepts everything."""

    name = ""
    attrs: Dict[str, Any] = {}
    children: List[Span] = []
    duration_ms = 0.0

    def set(self, key: str, value: Any) -> None:
        pass

    def walk(self):
        return iter(())

    def find(self, name: str) -> None:
        return None

    def find_all(self, name: str) -> List[Span]:
        return []

    def aggregate_metrics(self) -> MetricsRegistry:
        return MetricsRegistry()


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a forest of spans plus out-of-span metrics.

    All times are relative to the tracer's construction (its *epoch*), in
    seconds; exporters convert as needed.
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self.roots: List[Span] = []
        #: Metrics recorded while no span was open.
        self.metrics = MetricsRegistry()
        self._stack: List[Span] = []

    # -- clock -----------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    # -- span lifecycle --------------------------------------------------
    @property
    def active_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a span; nests under the currently active one."""
        node = Span(name=name, attrs=dict(attrs), start_s=self._now())
        parent = self.active_span
        if parent is not None:
            node.parent = parent
            parent.children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        try:
            yield node
        finally:
            node.end_s = self._now()
            self._stack.pop()

    # -- metrics routed to the innermost span ----------------------------
    def _sink(self) -> MetricsRegistry:
        active = self.active_span
        return active.metrics if active is not None else self.metrics

    def add(self, name: str, amount: Number = 1) -> None:
        self._sink().add(name, amount)

    def set_gauge(self, name: str, value: Number) -> None:
        self._sink().set_gauge(name, value)

    def observe(self, name: str, value: Number) -> None:
        self._sink().observe(name, value)

    # -- aggregate views -------------------------------------------------
    def all_spans(self) -> List[Span]:
        return [node for root in self.roots for node in root.walk()]

    def aggregate_metrics(self) -> MetricsRegistry:
        registries = [self.metrics]
        registries.extend(node.metrics for node in self.all_spans())
        return MetricsRegistry.merged(registries)


class NullTracer:
    """The inert tracer returned when nothing is activated."""

    roots: List[Span] = []
    metrics = MetricsRegistry()

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[_NullSpan]:
        yield NULL_SPAN

    def add(self, name: str, amount: Number = 1) -> None:
        pass

    def set_gauge(self, name: str, value: Number) -> None:
        pass

    def observe(self, name: str, value: Number) -> None:
        pass

    def all_spans(self) -> List[Span]:
        return []

    def aggregate_metrics(self) -> MetricsRegistry:
        return MetricsRegistry()


NULL_TRACER = NullTracer()

#: Activation stack; the flow reads the top via :func:`current_tracer`.
_ACTIVE: List[Tracer] = []

AnyTracer = Union[Tracer, NullTracer]


def current_tracer() -> AnyTracer:
    """The innermost activated tracer, or :data:`NULL_TRACER`."""
    return _ACTIVE[-1] if _ACTIVE else NULL_TRACER


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` the ambient tracer within the ``with`` body."""
    _ACTIVE.append(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.pop()


# -- module-level conveniences (forward to the ambient tracer) -----------
def span(name: str, **attrs: Any):
    """``with span("stage", k=v) as sp:`` on whatever tracer is active."""
    return current_tracer().span(name, **attrs)


def add(name: str, amount: Number = 1) -> None:
    current_tracer().add(name, amount)


def set_gauge(name: str, value: Number) -> None:
    current_tracer().set_gauge(name, value)


def observe(name: str, value: Number) -> None:
    current_tracer().observe(name, value)
