"""repro.obs — flow-wide tracing, metrics, and run reports.

The observability layer every flow stage reports into:

* :mod:`repro.obs.tracer` — nestable spans with an ambient-tracer stack so
  instrumentation is always on and free when no tracer is activated;
* :mod:`repro.obs.metrics` — counters, gauges, histograms scoped per span;
* :mod:`repro.obs.report` — Chrome ``trace_event`` export, a versioned JSON
  run report, and a console tree renderer.

Typical use::

    from repro import obs

    tracer = obs.Tracer()
    with obs.activate(tracer):
        result = Flow().run(design, FULL)
    obs.write_chrome_trace("trace.json", tracer)
    report = obs.run_report(tracer, [result])

Flow code instruments itself with the module-level helpers::

    with obs.span("placement", cells=n) as sp:
        ...
        sp.set("refine_moves", moved)
    obs.add("physical.nets_replicated", 1)
"""

from repro.obs.context import TraceContext, new_span_id, new_trace_id
from repro.obs.exposition import (
    CONTENT_TYPE as EXPOSITION_CONTENT_TYPE,
    Family,
    Sample,
    parse_exposition,
    render_exposition,
)
from repro.obs.journal import (
    EVENT_SCHEMA,
    EventJournal,
    activate_journal,
    current_journal,
    emit_event,
    follow_events,
    read_events,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from repro.obs.profiler import (
    PROFILE_SCHEMA,
    SUPERLINEAR_SLOPE,
    fit_power_law,
    profile_reports,
    render_profile,
)
from repro.obs.snapshot import (
    rebuild_span,
    replay_metrics,
    replay_span,
    snapshot_metrics,
    snapshot_span,
)
from repro.obs.report import (
    FLOW_SPAN,
    RUN_REPORT_SCHEMA,
    chrome_trace,
    chrome_trace_events,
    flow_record,
    render_console,
    run_report,
    stage_record,
    write_chrome_trace,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    activate,
    add,
    current_tracer,
    observe,
    set_gauge,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "activate",
    "current_tracer",
    "span",
    "add",
    "observe",
    "set_gauge",
    "global_registry",
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "EXPOSITION_CONTENT_TYPE",
    "Family",
    "Sample",
    "render_exposition",
    "parse_exposition",
    "EVENT_SCHEMA",
    "EventJournal",
    "activate_journal",
    "current_journal",
    "emit_event",
    "read_events",
    "follow_events",
    "PROFILE_SCHEMA",
    "SUPERLINEAR_SLOPE",
    "profile_reports",
    "render_profile",
    "fit_power_law",
    "snapshot_span",
    "snapshot_metrics",
    "replay_span",
    "replay_metrics",
    "rebuild_span",
    "FLOW_SPAN",
    "RUN_REPORT_SCHEMA",
    "run_report",
    "flow_record",
    "stage_record",
    "chrome_trace",
    "chrome_trace_events",
    "write_chrome_trace",
    "render_console",
]
