"""Exporters: structured run reports, Chrome traces, console trees.

Three views over one :class:`~repro.obs.tracer.Tracer`:

* :func:`run_report` — flat, machine-readable JSON document (one record per
  ``flow`` span: per-stage durations, counters, gauges, histograms).  This
  is the substrate perf PRs measure themselves against; its schema is
  versioned via the ``schema`` key.
* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome ``trace_event``
  JSON loadable in ``chrome://tracing`` or https://ui.perfetto.dev.
* :func:`render_console` — indented human tree for ``--verbose`` output.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Union

from repro.obs.tracer import NullTracer, Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (flow imports obs)
    from repro.flow import FlowResult

#: Version tag of the run-report document layout.
RUN_REPORT_SCHEMA = "repro-run-report/1"
#: Name of the span the flow driver opens around one complete run.
FLOW_SPAN = "flow"


def _json_safe(value: Any) -> Any:
    """Coerce attribute values to JSON-representable types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


def _safe_attrs(span: Span) -> Dict[str, Any]:
    return {key: _json_safe(val) for key, val in span.attrs.items()}


# ---------------------------------------------------------------------------
# Run report
# ---------------------------------------------------------------------------
def stage_record(span: Span) -> Dict[str, Any]:
    """One stage's record: duration, annotations, subtree metrics.

    Nested spans (e.g. the ``calibration`` span under ``scheduling``)
    appear recursively under ``children``, so cache-effectiveness attrs
    like ``cached``/``source`` are reachable from the JSON report.
    """
    metrics = span.aggregate_metrics()
    record: Dict[str, Any] = {
        "name": span.name,
        "duration_ms": round(span.duration_ms, 3),
        "attrs": _safe_attrs(span),
    }
    if span.children:
        record["children"] = [stage_record(child) for child in span.children]
    if metrics:
        record["metrics"] = metrics.to_dict()
    return record


def flow_record(
    span: Span, result: Optional["FlowResult"] = None
) -> Dict[str, Any]:
    """The report record of one ``flow`` span (optionally enriched with the
    :class:`~repro.flow.FlowResult` the run returned)."""
    metrics = span.aggregate_metrics()
    record: Dict[str, Any] = {
        "design": span.attrs.get("design"),
        "config": span.attrs.get("config"),
        "duration_ms": round(span.duration_ms, 3),
        "fmax_mhz": _json_safe(span.attrs.get("fmax_mhz")),
        "clock_target_mhz": _json_safe(span.attrs.get("clock_target_mhz")),
        "critical_path_class": _json_safe(span.attrs.get("critical_path_class")),
        "stages": [stage_record(child) for child in span.children],
    }
    metric_view = metrics.to_dict()
    record["counters"] = metric_view["counters"]
    record["gauges"] = metric_view["gauges"]
    record["histograms"] = metric_view["histograms"]
    if result is not None:
        record["period_ns"] = round(result.period_ns, 4)
        record["utilization"] = {
            kind: round(pct, 2) for kind, pct in sorted(result.utilization.items())
        }
        record["ii_by_loop"] = dict(result.ii_by_loop)
        record["schedule_edits"] = list(result.schedule_edits)
    return record


def run_report(
    tracer: Union[Tracer, NullTracer],
    results: Iterable["FlowResult"] = (),
) -> Dict[str, Any]:
    """Assemble the machine-readable report for every flow run a tracer saw.

    ``results`` may supply the :class:`~repro.flow.FlowResult` objects the
    runs returned; they are matched to spans through their ``trace`` field,
    so passing any subset (or none, e.g. when reporting on ``repro all``)
    is fine.
    """
    by_span = {id(r.trace): r for r in results if r.trace is not None}
    runs: List[Dict[str, Any]] = []
    for root in tracer.roots:
        for span in root.walk():
            if span.name == FLOW_SPAN:
                runs.append(flow_record(span, by_span.get(id(span))))
    return {"schema": RUN_REPORT_SCHEMA, "runs": runs}


# ---------------------------------------------------------------------------
# Chrome trace_event export
# ---------------------------------------------------------------------------
def chrome_trace_events(tracer: Union[Tracer, NullTracer]) -> List[Dict[str, Any]]:
    """All spans as Chrome "complete" (``ph: X``) events, µs timestamps.

    Span forests grafted from engine workers carry a ``worker`` attribute
    on their roots (the worker PID); it becomes the ``tid`` lane of the
    whole subtree, so parallel runs render as per-worker swimlanes.
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": "repro flow"},
        }
    ]
    for root in tracer.roots:
        tid = root.attrs.get("worker", 1)
        if not isinstance(tid, int):
            tid = 1
        for span in root.walk():
            args = _safe_attrs(span)
            metrics = span.metrics
            if metrics:
                args["metrics"] = metrics.to_dict()
            events.append(
                {
                    "name": span.name,
                    "cat": "flow",
                    "ph": "X",
                    "ts": round(span.start_s * 1e6, 3),
                    "dur": round(span.duration_ms * 1e3, 3),
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                }
            )
    return events


def chrome_trace(tracer: Union[Tracer, NullTracer]) -> Dict[str, Any]:
    """The full Chrome ``trace_event`` document (JSON-object flavour)."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "schema": "trace_event"},
    }


def write_chrome_trace(path: str, tracer: Union[Tracer, NullTracer]) -> None:
    """Serialize :func:`chrome_trace` to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer), handle, indent=1)
        handle.write("\n")


# ---------------------------------------------------------------------------
# Console rendering
# ---------------------------------------------------------------------------
def _render_span(span: Span, depth: int, lines: List[str]) -> None:
    attrs = ", ".join(
        f"{k}={_json_safe(v)}" for k, v in span.attrs.items()
    )
    suffix = f"  [{attrs}]" if attrs else ""
    lines.append(f"{'  ' * depth}{span.name:<24s} {span.duration_ms:9.2f} ms{suffix}")
    counters = span.metrics.counters
    if counters:
        joined = ", ".join(f"{n}={c.value}" for n, c in sorted(counters.items()))
        lines.append(f"{'  ' * (depth + 1)}· {joined}")
    for child in span.children:
        _render_span(child, depth + 1, lines)


def render_console(source: Union[Tracer, NullTracer, Span]) -> str:
    """Human-readable span tree with durations and per-span counters."""
    lines: List[str] = []
    roots = [source] if isinstance(source, Span) else source.roots
    for root in roots:
        _render_span(root, 0, lines)
    return "\n".join(lines)
