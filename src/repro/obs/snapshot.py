"""Span-subtree snapshots: freeze a traced stage, replay it on cache hits.

The staged pass pipeline (:mod:`repro.pipeline`) stores, next to each
stage's artifact, a JSON-safe snapshot of everything the stage reported
into the observability layer while it ran: span attributes, counters,
gauges, raw histogram samples, and the full child-span subtree (e.g. the
``baseline-schedule``/``chain-audit``/``reschedule`` spans the
broadcast-aware scheduler opens, or the per-loop spans of RTL generation).

When a later run skips the stage because its input digest matched, the
pass manager replays the snapshot into the live stage span.  The replay is
*exact* for everything except wall clock: counters land with their
original values, histograms with their original samples (so percentile
summaries are bit-identical), and child spans reappear with their original
attributes.  Replayed children carry zero duration — the work did not
happen this run — with the original cost preserved as the
``cached_duration_ms`` attribute.

This is what makes a warm trace structurally identical to a cold one: a
report consumer asserting ``scheduling.registers_inserted >= 1`` cannot
tell (and should not care) whether the scheduler ran or was replayed.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracer import Span


def _json_safe(value: Any) -> Any:
    """Coerce attribute values to JSON-representable types (the same
    policy as the run report's attribute export)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


def snapshot_metrics(metrics: MetricsRegistry) -> Dict[str, Any]:
    """JSON-safe, *lossless* view of one registry.

    Unlike :meth:`MetricsRegistry.to_dict` this keeps the full histogram
    state (reservoir samples plus the exact count/sum/min/max), not
    summaries — replay must reproduce the state bit-for-bit so any
    downstream percentile computation matches the original run.
    """
    return {
        "counters": {n: c.value for n, c in sorted(metrics.counters.items())},
        "gauges": {n: g.value for n, g in sorted(metrics.gauges.items())},
        "histograms": {
            n: h.state_dict() for n, h in sorted(metrics.histograms.items())
        },
    }


def replay_metrics(metrics: MetricsRegistry, snapshot: Dict[str, Any]) -> None:
    """Re-emit a :func:`snapshot_metrics` capture into ``metrics``.

    Accepts both the current histogram encoding (a state dict with exact
    aggregates) and the legacy one (a bare sample list, from sidecars
    written before reservoir bounding).
    """
    for name, value in (snapshot.get("counters") or {}).items():
        metrics.add(name, value)
    for name, value in (snapshot.get("gauges") or {}).items():
        metrics.set_gauge(name, value)
    for name, payload in (snapshot.get("histograms") or {}).items():
        target = metrics.histograms.setdefault(name, Histogram())
        if isinstance(payload, dict):
            target.merge_from(Histogram.from_state(payload))
        else:
            for sample in payload:
                target.observe(sample)


def snapshot_span(span: Span) -> Dict[str, Any]:
    """Freeze ``span``'s attrs, metrics, and child subtree (JSON-safe).

    The span may still be open (the pipeline snapshots a stage from inside
    its ``with`` block); only the children's durations are meaningful then,
    which is all replay uses.  Returns ``{}`` for null spans (no tracer
    active) so callers can store the snapshot unconditionally.
    """
    if not isinstance(span, Span):
        return {}
    return {
        "name": span.name,
        "attrs": {str(k): _json_safe(v) for k, v in span.attrs.items()},
        "start_s": round(span.start_s, 6),
        "duration_ms": round(span.duration_ms, 3),
        "metrics": snapshot_metrics(span.metrics),
        "children": [snapshot_span(child) for child in span.children],
    }


def _rebuild_child(snapshot: Dict[str, Any], parent: Span) -> Span:
    attrs = dict(snapshot.get("attrs") or {})
    attrs["cached_duration_ms"] = snapshot.get("duration_ms", 0.0)
    node = Span(
        name=snapshot.get("name", "span"),
        attrs=attrs,
        start_s=parent.start_s,
        end_s=parent.start_s,
        parent=parent,
    )
    replay_metrics(node.metrics, snapshot.get("metrics") or {})
    for child_snapshot in snapshot.get("children") or ():
        node.children.append(_rebuild_child(child_snapshot, node))
    return node


def replay_span(span: Any, snapshot: Dict[str, Any]) -> None:
    """Replay a :func:`snapshot_span` capture into the live ``span``.

    Top-level attrs and metrics are merged onto ``span`` itself (which
    keeps its own, real timestamps); children are rebuilt as zero-duration
    spans.  A no-op for null spans (no tracer active) or empty snapshots.
    """
    if not isinstance(span, Span) or not snapshot:
        return
    for key, value in (snapshot.get("attrs") or {}).items():
        span.set(key, value)
    replay_metrics(span.metrics, snapshot.get("metrics") or {})
    for child_snapshot in snapshot.get("children") or ():
        span.children.append(_rebuild_child(child_snapshot, span))


def rebuild_span(
    snapshot: Dict[str, Any], parent: Optional[Span] = None
) -> Optional[Span]:
    """Reconstruct a full :class:`Span` tree from a :func:`snapshot_span`
    capture, durations and timestamps included.

    This is the *faithful* inverse of :func:`snapshot_span`, used by the
    service's merged-trace store to rehydrate per-request traces (daemon
    span + every worker attempt's spans, partial ones included) for
    ``repro trace --request`` and Chrome export.  Contrast with
    :func:`replay_span`, which deliberately rebuilds children with zero
    duration for cache-hit replay.

    Returns ``None`` for an empty snapshot.
    """
    if not snapshot:
        return None
    start_s = float(snapshot.get("start_s") or 0.0)
    duration_ms = float(snapshot.get("duration_ms") or 0.0)
    node = Span(
        name=snapshot.get("name", "span"),
        attrs=dict(snapshot.get("attrs") or {}),
        start_s=start_s,
        end_s=start_s + duration_ms / 1e3,
        parent=parent,
    )
    replay_metrics(node.metrics, snapshot.get("metrics") or {})
    for child_snapshot in snapshot.get("children") or ():
        child = rebuild_span(child_snapshot, node)
        if child is not None:
            node.children.append(child)
    return node
