"""Metric primitives for the observability layer.

Three classic instrument kinds, all zero-dependency and cheap enough to
leave enabled in the hot flow paths:

* :class:`Counter` — monotonically increasing totals ("registers inserted",
  "nets replicated");
* :class:`Gauge` — last-written value ("fmax_mhz" of the run);
* :class:`Histogram` — bounded-reservoir sample bag with *exact*
  count/sum/min/max ("fanout of every net the replication pass split").

A :class:`MetricsRegistry` owns one namespace of named instruments.  Every
:class:`~repro.obs.tracer.Span` carries its own registry, so metrics are
scoped to the span subtree that produced them; :meth:`MetricsRegistry.merge`
folds child registries into aggregate views for reports.

Histograms are bounded: a long-running daemon observes compile latencies
for every job it ever serves, so an unbounded sample list is a slow memory
leak.  Each histogram keeps at most :data:`RESERVOIR_SIZE` samples via
deterministic reservoir sampling (a fixed-seed per-instance RNG, so two
identical observation sequences always produce identical reservoirs —
cached trace replay depends on this), while ``count``/``sum``/``min``/
``max`` stay exact forever.  Percentiles are computed over the reservoir:
exact below the bound, an unbiased estimate above it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

Number = Union[int, float]

#: Per-histogram sample bound.  Below it everything is exact; above it the
#: reservoir is a uniform sample of the stream.
RESERVOIR_SIZE = 1024

#: Fixed seed of every histogram's private RNG — determinism over entropy:
#: replayed and re-run observation sequences must build identical state.
RESERVOIR_SEED = 0x5EED


@dataclass
class Counter:
    """A monotonically increasing total."""

    value: Number = 0

    def add(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (got {amount})")
        self.value += amount


@dataclass
class Gauge:
    """A last-write-wins measurement."""

    value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


@dataclass
class Histogram:
    """A bounded reservoir of samples with exact summary statistics.

    ``samples`` holds at most ``limit`` values; ``count``/``total``/
    ``min_value``/``max_value`` track the full stream exactly no matter how
    many observations arrive.
    """

    samples: List[Number] = field(default_factory=list)
    count: int = 0
    total: Number = 0
    min_value: Optional[Number] = None
    max_value: Optional[Number] = None
    limit: int = RESERVOIR_SIZE
    _rng: random.Random = field(
        default_factory=lambda: random.Random(RESERVOIR_SEED),
        repr=False,
        compare=False,
    )

    def __post_init__(self) -> None:
        # Tolerate legacy construction Histogram(samples=[...]): adopt the
        # given samples as the full (exact) stream.
        if self.samples and self.count == 0:
            adopted = list(self.samples)
            self.samples = []
            for value in adopted:
                self.observe(value)

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if len(self.samples) < self.limit:
            self.samples.append(value)
        else:
            # Vitter's algorithm R: keep each of the N seen samples with
            # probability limit/N.
            slot = self._rng.randrange(self.count)
            if slot < self.limit:
                self.samples[slot] = value

    def merge_from(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram.

        Count/sum/min/max combine exactly.  The reservoirs concatenate;
        past the bound the union is downsampled deterministically (evenly
        spaced picks from the sorted union), preserving the distribution
        without consuming RNG state.
        """
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        if self.min_value is None or (
            other.min_value is not None and other.min_value < self.min_value
        ):
            self.min_value = other.min_value
        if self.max_value is None or (
            other.max_value is not None and other.max_value > self.max_value
        ):
            self.max_value = other.max_value
        combined = self.samples + list(other.samples)
        if len(combined) <= self.limit:
            self.samples = combined
        else:
            ordered = sorted(combined)
            step = len(ordered) / self.limit
            self.samples = [ordered[int(i * step)] for i in range(self.limit)]

    def percentile(self, q: float) -> Number:
        """Nearest-rank percentile over the reservoir; ``q`` in [0, 100]."""
        if not self.samples:
            return 0
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def summary(self) -> Dict[str, Number]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "mean": self.total / self.count,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
        }

    # -- lossless state (snapshot/replay; see repro.obs.snapshot) --------
    def state_dict(self) -> Dict[str, object]:
        """JSON-safe exact state: reservoir plus the exact aggregates."""
        return {
            "samples": list(self.samples),
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "Histogram":
        hist = cls()
        hist.samples = list(state.get("samples") or [])
        hist.count = int(state.get("count") or len(hist.samples))
        hist.total = state.get("sum", sum(hist.samples))
        hist.min_value = state.get("min")
        hist.max_value = state.get("max")
        if hist.samples and hist.min_value is None:
            hist.min_value = min(hist.samples)
        if hist.samples and hist.max_value is None:
            hist.max_value = max(hist.samples)
        return hist


class MetricsRegistry:
    """One namespace of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- write side ------------------------------------------------------
    def add(self, name: str, amount: Number = 1) -> None:
        self.counters.setdefault(name, Counter()).add(amount)

    def set_gauge(self, name: str, value: Number) -> None:
        self.gauges.setdefault(name, Gauge()).set(value)

    def observe(self, name: str, value: Number) -> None:
        self.histograms.setdefault(name, Histogram()).observe(value)

    # -- read side -------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)

    def counter(self, name: str) -> Number:
        """Current value of counter ``name`` (0 when never incremented)."""
        entry = self.counters.get(name)
        return entry.value if entry is not None else 0

    def gauge(self, name: str) -> Number:
        """Current value of gauge ``name`` (0 when never written)."""
        entry = self.gauges.get(name)
        return entry.value if entry is not None else 0

    def merge(self, others: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """Fold ``others`` into this registry (in place); returns self.

        Counters sum, histograms fold exactly (see
        :meth:`Histogram.merge_from`), gauges keep the value written *last*
        in iteration order (parents first, then children — so a child's
        more specific reading wins).
        """
        for other in others:
            for name, counter in other.counters.items():
                self.add(name, counter.value)
            for name, gauge in other.gauges.items():
                self.set_gauge(name, gauge.value)
            for name, hist in other.histograms.items():
                self.histograms.setdefault(name, Histogram()).merge_from(hist)
        return self

    @classmethod
    def merged(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """A fresh registry holding the fold of ``registries``."""
        return cls().merge(registries)

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready view: plain numbers for counters/gauges, summaries
        for histograms."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }


#: The process-wide registry: long-lived components (the service daemon,
#: the HTTP server) record fleet-level metrics here so one ``/metrics``
#: exposition can cover the whole process regardless of which tracer was
#: ambient when the metric was written.
_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` singleton."""
    return _GLOBAL_REGISTRY
