"""Metric primitives for the observability layer.

Three classic instrument kinds, all zero-dependency and cheap enough to
leave enabled in the hot flow paths:

* :class:`Counter` — monotonically increasing totals ("registers inserted",
  "nets replicated");
* :class:`Gauge` — last-written value ("fmax_mhz" of the run);
* :class:`Histogram` — raw sample list with summary statistics ("fanout of
  every net the replication pass split").

A :class:`MetricsRegistry` owns one namespace of named instruments.  Every
:class:`~repro.obs.tracer.Span` carries its own registry, so metrics are
scoped to the span subtree that produced them; :meth:`MetricsRegistry.merge`
folds child registries into aggregate views for reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Union

Number = Union[int, float]


@dataclass
class Counter:
    """A monotonically increasing total."""

    value: Number = 0

    def add(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (got {amount})")
        self.value += amount


@dataclass
class Gauge:
    """A last-write-wins measurement."""

    value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


@dataclass
class Histogram:
    """A bag of samples with summary statistics."""

    samples: List[Number] = field(default_factory=list)

    def observe(self, value: Number) -> None:
        self.samples.append(value)

    def percentile(self, q: float) -> Number:
        """Nearest-rank percentile; ``q`` in [0, 100]."""
        if not self.samples:
            return 0
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def summary(self) -> Dict[str, Number]:
        if not self.samples:
            return {"count": 0}
        return {
            "count": len(self.samples),
            "sum": sum(self.samples),
            "min": min(self.samples),
            "max": max(self.samples),
            "mean": sum(self.samples) / len(self.samples),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
        }


class MetricsRegistry:
    """One namespace of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- write side ------------------------------------------------------
    def add(self, name: str, amount: Number = 1) -> None:
        self.counters.setdefault(name, Counter()).add(amount)

    def set_gauge(self, name: str, value: Number) -> None:
        self.gauges.setdefault(name, Gauge()).set(value)

    def observe(self, name: str, value: Number) -> None:
        self.histograms.setdefault(name, Histogram()).observe(value)

    # -- read side -------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)

    def counter(self, name: str) -> Number:
        """Current value of counter ``name`` (0 when never incremented)."""
        entry = self.counters.get(name)
        return entry.value if entry is not None else 0

    def merge(self, others: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """Fold ``others`` into this registry (in place); returns self.

        Counters sum, histogram samples concatenate, gauges keep the value
        written *last* in iteration order (parents first, then children —
        so a child's more specific reading wins).
        """
        for other in others:
            for name, counter in other.counters.items():
                self.add(name, counter.value)
            for name, gauge in other.gauges.items():
                self.set_gauge(name, gauge.value)
            for name, hist in other.histograms.items():
                for sample in hist.samples:
                    self.observe(name, sample)
        return self

    @classmethod
    def merged(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """A fresh registry holding the fold of ``registries``."""
        return cls().merge(registries)

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready view: plain numbers for counters/gauges, summaries
        for histograms."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }
