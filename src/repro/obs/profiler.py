"""Span-driven hot-path profiler: where does flow time actually go?

Works over run-report documents (``repro-run-report/1``, see
:mod:`repro.obs.report`): for every stage span it computes **self time**
(duration minus the sum of its children — the time spent in the stage's own
code, not delegated to sub-stages), aggregates it by span *path*
(``scheduling/calibration``), and ranks the top-k hot spots.

Given a *sweep* — the same design compiled at several broadcast factors, the
measurement axis of the source DAC paper — it additionally fits each path's
self time against the factor as a power law (least squares in log-log
space).  A fitted exponent near 1 means the stage scales linearly with
broadcast width; paths whose exponent exceeds
:data:`SUPERLINEAR_SLOPE` *and* whose signal has outgrown the noise floor
(:data:`SUPERLINEAR_MIN_SIGNAL_MS`) are flagged super-linear — these are
the O(n²) loops ROADMAP item 3 wants found and flattened.

The output document (``repro-profile/1``) is what ``repro profile`` prints
and what ``BENCH_flow.json`` records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

PROFILE_SCHEMA = "repro-profile/1"

#: Fitted scaling exponents above this are flagged super-linear.  Slightly
#: above 1 to leave headroom for timer noise on genuinely linear stages.
SUPERLINEAR_SLOPE = 1.15

#: Self-times below this are excluded from the log-log fit (censored, like
#: readings below a detection limit).  A power law fitted through
#: millisecond-scale points is fitting the timer, not the stage: at that
#: scale allocator pauses and scheduler noise dominate (±0.5 ms per span
#: is routine on a busy runner), and a 0.7 ms → 3 ms transition reports a
#: wildly super-linear exponent for a stage that merely crossed from
#: unmeasurable to measurable.  Exclusion cannot mask a super-linear
#: stage that matters — such a stage's large-factor points are far above
#: the floor and dominate the fit; if fewer than two points survive, the
#: stage is too fast to profile at all.
NOISE_FLOOR_MS = 2.0

#: A super-linear *flag* additionally requires the path's largest-factor
#: reading to clear this (4x the censoring floor).  Near the floor every
#: surviving point carries ±15-20 % relative noise, and with one or two
#: points censored the fit degenerates to a single noisy ratio — a
#: genuinely linear 3 ms stage can fit a slope of 1.3.  A real O(n²)
#: loop cannot hide under this bar: growing quadratically, it clears 4x
#: the floor within a factor doubling of becoming measurable at all
#: (the placement-refine regression this guards against read 9 ms at the
#: top factor while still only ~0.7 ms at the smallest).  Sub-signal
#: paths still *report* their fitted slope; they just cannot fail a run.
SUPERLINEAR_MIN_SIGNAL_MS = 4 * NOISE_FLOOR_MS

#: Synthetic path for time inside the flow span but outside any stage.
FLOW_OVERHEAD_PATH = "(flow overhead)"


def _children_ms(record: Dict[str, Any]) -> float:
    return sum(
        float(child.get("duration_ms") or 0.0)
        for child in record.get("children") or ()
    )


def stage_self_times(
    record: Dict[str, Any], prefix: str = ""
) -> Iterable[Tuple[str, float, float]]:
    """Walk one stage record tree yielding ``(path, self_ms, total_ms)``.

    Replayed (cache-hit) children carry zero live duration; their original
    cost is in ``cached_duration_ms`` and deliberately *not* counted — the
    profiler measures where this run's wall clock went.
    """
    name = str(record.get("name") or "stage")
    path = f"{prefix}/{name}" if prefix else name
    total = float(record.get("duration_ms") or 0.0)
    self_ms = max(0.0, total - _children_ms(record))
    yield path, self_ms, total
    for child in record.get("children") or ():
        yield from stage_self_times(child, path)


@dataclass
class PathStats:
    """Accumulated self-time of one span path across runs."""

    path: str
    self_ms: float = 0.0
    total_ms: float = 0.0
    calls: int = 0
    #: ``factor -> summed self_ms at that factor`` (sweep mode only).
    by_factor: Dict[float, float] = field(default_factory=dict)

    def record(self, self_ms: float, total_ms: float, factor: Optional[float]) -> None:
        self.self_ms += self_ms
        self.total_ms += total_ms
        self.calls += 1
        if factor is not None:
            self.by_factor[factor] = self.by_factor.get(factor, 0.0) + self_ms


def fit_power_law(
    points: Sequence[Tuple[float, float]],
    floor: float = NOISE_FLOOR_MS,
) -> Optional[float]:
    """Least-squares exponent of ``y ≈ c·x^k`` in log-log space.

    ``y`` values below ``floor`` are excluded from the fit (see
    :data:`NOISE_FLOOR_MS`).  Returns ``None`` when the fit is undefined:
    fewer than two distinct positive-x points survive censoring (a stage
    too fast to measure).
    """
    usable = [
        (math.log(x), math.log(y))
        for x, y in points
        if x > 0 and y >= max(floor, 1e-9)
    ]
    if len({x for x, _y in usable}) < 2:
        return None
    n = len(usable)
    mean_x = sum(x for x, _y in usable) / n
    mean_y = sum(y for _x, y in usable) / n
    var_x = sum((x - mean_x) ** 2 for x, _y in usable)
    if var_x == 0:
        return None
    cov = sum((x - mean_x) * (y - mean_y) for x, y in usable)
    return cov / var_x


def _report_path_totals(
    report: Dict[str, Any],
) -> Dict[str, Tuple[float, float, int]]:
    """Per-path ``(self_ms, total_ms, calls)`` totals of one run report."""
    totals: Dict[str, Tuple[float, float, int]] = {}

    def add(path: str, self_ms: float, total_ms: float) -> None:
        prev_self, prev_total, prev_calls = totals.get(path, (0.0, 0.0, 0))
        totals[path] = (prev_self + self_ms, prev_total + total_ms, prev_calls + 1)

    for run in report.get("runs") or ():
        run_total = float(run.get("duration_ms") or 0.0)
        stage_total = 0.0
        for stage in run.get("stages") or ():
            stage_total += float(stage.get("duration_ms") or 0.0)
            for path, self_ms, total_ms in stage_self_times(stage):
                add(path, self_ms, total_ms)
        add(FLOW_OVERHEAD_PATH, max(0.0, run_total - stage_total), run_total)
    return totals


def _collect(
    report: Dict[str, Any],
    stats: Dict[str, PathStats],
    factor: Optional[float],
) -> None:
    for path, (self_ms, total_ms, calls) in _report_path_totals(report).items():
        entry = stats.setdefault(path, PathStats(path))
        entry.self_ms += self_ms
        entry.total_ms += total_ms
        entry.calls += calls
        if factor is not None:
            entry.by_factor[factor] = entry.by_factor.get(factor, 0.0) + self_ms


def profile_reports(
    reports: Iterable[Tuple[Optional[float], Dict[str, Any]]],
    top: int = 10,
    slope_threshold: float = SUPERLINEAR_SLOPE,
    repeat_reduce: str = "sum",
) -> Dict[str, Any]:
    """Profile a set of ``(broadcast_factor, run_report)`` pairs.

    ``broadcast_factor`` may be ``None`` for a plain (non-sweep) profile;
    scaling slopes are fitted only across pairs with a factor.  Returns the
    ``repro-profile/1`` document: top-k hot paths by summed self time, each
    with calls, self/total milliseconds, share of all self time, and — in
    sweep mode — the fitted exponent and a super-linear flag.

    ``repeat_reduce`` governs how several reports *at the same factor*
    combine into that factor's data point: ``"sum"`` (legacy — one report
    per factor) adds them; ``"min"`` keeps, per path, the fastest reading
    — the right estimator when the same measurement is repeated N times,
    since scheduler and collector pauses only ever add time.  With
    ``"min"``, each path's headline self time is the sum of its per-factor
    minima (best-case time, coherent with the fitted points).
    """
    if repeat_reduce not in ("sum", "min"):
        raise ValueError(f"unknown repeat_reduce {repeat_reduce!r}")
    stats: Dict[str, PathStats] = {}
    factors: List[float] = []
    for factor, report in reports:
        if factor is not None:
            factors.append(float(factor))
        if repeat_reduce == "min" and factor is not None:
            for path, (self_ms, total_ms, calls) in _report_path_totals(
                report
            ).items():
                entry = stats.setdefault(path, PathStats(path))
                entry.total_ms += total_ms
                entry.calls += calls
                prev = entry.by_factor.get(float(factor))
                entry.by_factor[float(factor)] = (
                    self_ms if prev is None else min(prev, self_ms)
                )
        else:
            _collect(report, stats, None if factor is None else float(factor))
    if repeat_reduce == "min":
        for entry in stats.values():
            if entry.by_factor:
                entry.self_ms = sum(entry.by_factor.values())
    grand_self = sum(entry.self_ms for entry in stats.values()) or 1.0
    ranked = sorted(stats.values(), key=lambda e: e.self_ms, reverse=True)
    hotspots: List[Dict[str, Any]] = []
    for entry in ranked[: max(1, top)]:
        spot: Dict[str, Any] = {
            "path": entry.path,
            "self_ms": round(entry.self_ms, 3),
            "total_ms": round(entry.total_ms, 3),
            "calls": entry.calls,
            "share": round(entry.self_ms / grand_self, 4),
        }
        if entry.by_factor:
            slope = fit_power_law(sorted(entry.by_factor.items()))
            spot["by_factor"] = {
                format(f, "g"): round(ms, 3)
                for f, ms in sorted(entry.by_factor.items())
            }
            if slope is not None:
                spot["slope"] = round(slope, 3)
                spot["superlinear"] = (
                    slope > slope_threshold
                    and max(entry.by_factor.values()) >= SUPERLINEAR_MIN_SIGNAL_MS
                )
        hotspots.append(spot)
    doc: Dict[str, Any] = {
        "schema": PROFILE_SCHEMA,
        "slope_threshold": slope_threshold,
        "total_self_ms": round(grand_self, 3),
        "hotspots": hotspots,
    }
    if factors:
        doc["factors"] = sorted(set(factors))
        doc["superlinear_paths"] = [
            spot["path"] for spot in hotspots if spot.get("superlinear")
        ]
    return doc


def render_profile(doc: Dict[str, Any]) -> str:
    """Console table of a ``repro-profile/1`` document."""
    lines: List[str] = []
    factors = doc.get("factors")
    if factors:
        lines.append(
            "hot paths by self-time (sweep over factors "
            + ", ".join(format(f, "g") for f in factors)
            + ")"
        )
    else:
        lines.append("hot paths by self-time")
    header = f"{'path':<42s} {'self ms':>10s} {'share':>7s} {'calls':>6s}"
    if factors:
        header += f" {'slope':>7s}  scaling"
    lines.append(header)
    lines.append("-" * len(header))
    for spot in doc.get("hotspots") or ():
        row = (
            f"{spot['path']:<42s} {spot['self_ms']:>10.2f}"
            f" {spot['share'] * 100:>6.1f}% {spot['calls']:>6d}"
        )
        if factors:
            slope = spot.get("slope")
            if slope is None:
                row += f" {'-':>7s}"
            else:
                tag = "SUPER-LINEAR" if spot.get("superlinear") else "ok"
                row += f" {slope:>7.2f}  {tag}"
        lines.append(row)
    superlinear = doc.get("superlinear_paths")
    if superlinear:
        lines.append("")
        lines.append(
            "super-linear stages (candidate O(n^2) hot loops): "
            + ", ".join(superlinear)
        )
    return "\n".join(lines)
