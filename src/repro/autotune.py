"""Automatic optimization: diagnose, fix, repeat.

The paper applies its three techniques by hand per design ("In many
real-world cases, we must combine these two aforementioned approaches",
§5.5).  :func:`auto_optimize` closes that loop mechanically:

1. run the flow;
2. read the critical path's broadcast class;
3. enable the §4 technique that targets it (data/mem → broadcast-aware
   scheduling; enable/status → skid control; sync → pruning);
4. repeat until the critical class has no untried fix or Fmax stops
   improving.

Returns the best result plus the decision log, so the user sees *why*
each knob was turned — the feedback HLS tools don't give.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.control.styles import ControlStyle
from repro.flow import Flow, FlowResult
from repro.ir.program import Design
from repro.opt import BASELINE, OptimizationConfig
from repro.rtl.netlist import NetKind


@dataclass
class AutoTuneStep:
    """One iteration of the loop."""

    config: OptimizationConfig
    fmax_mhz: float
    critical_class: str
    action: str


@dataclass
class AutoTuneResult:
    """Final outcome plus the full decision log."""

    best: FlowResult
    steps: List[AutoTuneStep] = field(default_factory=list)

    @property
    def final_config(self) -> OptimizationConfig:
        return self.steps[-1].config if self.steps else BASELINE

    def log(self) -> str:
        lines = []
        for i, step in enumerate(self.steps):
            lines.append(
                f"step {i}: [{step.config.label}] {step.fmax_mhz:.0f} MHz, "
                f"critical={step.critical_class} -> {step.action}"
            )
        return "\n".join(lines)


def _next_config(
    config: OptimizationConfig, critical: NetKind
) -> Tuple[Optional[OptimizationConfig], str]:
    """The technique addressing ``critical``, or None if exhausted."""
    if critical in (NetKind.DATA, NetKind.MEM) and not config.broadcast_aware:
        return (
            OptimizationConfig(
                broadcast_aware=True,
                sync_pruning=config.sync_pruning,
                control=config.control,
            ),
            "enable broadcast-aware scheduling (§4.1)",
        )
    if critical in (NetKind.ENABLE, NetKind.STATUS) and not config.control.uses_skid:
        return (
            OptimizationConfig(
                broadcast_aware=config.broadcast_aware,
                sync_pruning=config.sync_pruning,
                control=ControlStyle.SKID_MINAREA,
            ),
            "switch to min-area skid-buffer control (§4.3)",
        )
    if critical is NetKind.SYNC and not config.sync_pruning:
        return (
            OptimizationConfig(
                broadcast_aware=config.broadcast_aware,
                sync_pruning=True,
                control=config.control,
            ),
            "prune redundant synchronization (§4.2)",
        )
    # §5.5: "we must combine these approaches to truly resolve the timing
    # degradation" — broadcasts entangle (e.g. the write-enable tree only
    # deepens once §4.1 pipelines the data distribution), so when the
    # preferred technique is already on, turn on the next untried one.
    if not config.broadcast_aware:
        return (
            OptimizationConfig(
                broadcast_aware=True,
                sync_pruning=config.sync_pruning,
                control=config.control,
            ),
            f"{critical.value} persists: also enable broadcast-aware "
            "scheduling (§4.1, combined per §5.5)",
        )
    if not config.control.uses_skid:
        return (
            OptimizationConfig(
                broadcast_aware=True,
                sync_pruning=config.sync_pruning,
                control=ControlStyle.SKID_MINAREA,
            ),
            f"{critical.value} persists: also adopt skid-buffer control "
            "(§4.3, combined per §5.5)",
        )
    if not config.sync_pruning:
        return (
            OptimizationConfig(
                broadcast_aware=True,
                sync_pruning=True,
                control=config.control,
            ),
            f"{critical.value} persists: also prune synchronization "
            "(§4.2, combined per §5.5)",
        )
    return None, f"all techniques applied; {critical.value} is the floor"


def auto_optimize(
    design: Design,
    flow: Optional[Flow] = None,
    max_steps: int = 6,
) -> AutoTuneResult:
    """Iteratively apply the paper's techniques until converged."""
    flow = flow or Flow()
    config = BASELINE
    best = flow.run(design, config)
    steps = [
        AutoTuneStep(
            config=config,
            fmax_mhz=best.fmax_mhz,
            critical_class=best.timing.path_class.value,
            action="baseline",
        )
    ]
    current = best
    for _ in range(max_steps):
        nxt, action = _next_config(config, current.timing.path_class)
        if nxt is None:
            # Terminal verdict: annotate the step we stopped *at* without
            # discarding the action that produced it.  (A former version
            # overwrote ``steps[-1].action`` unconditionally each
            # iteration, attributing every decision to the step before the
            # one it created — the log lost "baseline" and shifted every
            # action up by one.)
            steps[-1].action = f"{steps[-1].action}; {action}"
            break
        candidate = flow.run(design, nxt)
        config = nxt
        steps.append(
            AutoTuneStep(
                config=config,
                fmax_mhz=candidate.fmax_mhz,
                critical_class=candidate.timing.path_class.value,
                action=action,
            )
        )
        current = candidate
        if candidate.fmax_mhz > best.fmax_mhz:
            best = candidate
    else:
        steps[-1].action = f"{steps[-1].action}; stopped: step budget exhausted"
    return AutoTuneResult(best=best, steps=steps)
