"""Control-style selection shared by the RTL generator and the flow."""

from __future__ import annotations

import enum


class ControlStyle(enum.Enum):
    """How a pipelined loop's flow control is implemented.

    STALL — broadcast empty/full-derived enable to every pipeline element
    (the production-HLS default, §3.3).

    SKID — always-flowing pipeline with valid bits and one skid FIFO of
    width w_out at the end (§4.3, Fig. 11).

    SKID_MINAREA — skid control with the buffer split at stage-width waists
    chosen by dynamic programming (§4.3, Fig. 12).
    """

    STALL = "stall"
    SKID = "skid"
    SKID_MINAREA = "skid_minarea"

    @property
    def uses_skid(self) -> bool:
        return self in (ControlStyle.SKID, ControlStyle.SKID_MINAREA)
