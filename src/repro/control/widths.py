"""Stage-width profile extraction (Fig. 17).

The paper: "To obtain the data width between stages, we parse the schedule
report and collect the definition location and usage location for each
variable, thus obtaining the total data width passed between stages."

:func:`width_profile_from_report` does literally that — it works from
report text plus the DFG, not from scheduler internals — while
:func:`width_profile` is the direct in-memory shortcut.
"""

from __future__ import annotations

from typing import List

from repro.ir.dfg import DFG
from repro.scheduling.report import parse_report
from repro.scheduling.schedule import Schedule


def width_profile(schedule: Schedule) -> List[int]:
    """Bits crossing each stage boundary of a scheduled pipeline."""
    return schedule.width_profile()


def skid_width_profile(schedule: Schedule) -> List[int]:
    """Width profile for skid-buffer sizing (§4.3).

    Identical to :func:`width_profile` except the final boundary carries at
    least the pipeline's *output* width — the elements the end buffer must
    hold are the produced results, even though they "exit" at the last
    stage rather than crossing its boundary.
    """
    profile = schedule.width_profile()
    if not profile:
        return profile
    out_bits = 0
    for entry in schedule.entries.values():
        if entry.op.opcode.value == "fifo_write":
            out_bits += entry.op.operands[0].type.bits
    profile[-1] = max(profile[-1], out_bits)
    return profile


def width_profile_from_report(report_text: str, dfg: DFG) -> List[int]:
    """Recover the stage-width profile from schedule report text.

    For every value, its definition stage is the producer's finish cycle
    and its last-use stage is the max consumer cycle; the value occupies
    every boundary in between.
    """
    schedule = parse_report(report_text, dfg)
    return schedule.width_profile()
