"""Skid-buffer sizing and FIFO implementation costs (§4.3).

A skid buffer protecting ``L`` pipeline stages needs depth ``L + 1``: when
the downstream stalls, every in-flight element must land in the buffer, and
the producer only notices one cycle after the buffer's empty flag deasserts
(the paper's "+1").  Simulation property tests in ``tests/test_sim_*``
verify both directions: depth L+1 never overflows, depth L can.

FIFO area follows FPGA practice: shallow FIFOs map to shift-register LUTs
(SRL32: one LUT per bit), deep ones to BRAM36 blocks shaped
``ceil(width/72) * ceil(depth/512)``.  That shaping is why the naive
end-of-pipeline buffer for a wide-output pipeline is expensive (Table 2's
12% BRAM) while the min-area plan is nearly free (0.02%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.control.minarea import CutPlan

#: FIFOs up to this depth use SRL/register implementation instead of BRAM.
SRL_MAX_DEPTH = 32


def fifo_area(depth: int, width: int) -> Tuple[int, int, int]:
    """Implementation cost of one FIFO as ``(luts, ffs, brams)``."""
    if depth <= 0 or width <= 0:
        return (0, 0, 0)
    if depth <= SRL_MAX_DEPTH:
        # One SRL32 LUT per bit plus a sliver of pointer logic; output reg.
        return (width + 8, width, 0)
    brams = math.ceil(width / 72) * math.ceil(depth / 512)
    return (24, width, brams)


@dataclass(frozen=True)
class SkidBufferSpec:
    """One physical skid FIFO to instantiate.

    Attributes:
        after_stage: 1-based pipeline stage the buffer follows.
        depth: FIFO capacity in elements (protected stages + 1).
        width: Element width in bits.
        luts / ffs / brams: Implementation cost.
    """

    after_stage: int
    depth: int
    width: int
    luts: int
    ffs: int
    brams: int

    @property
    def bits(self) -> int:
        return self.depth * self.width


def skid_buffer_specs(plan: CutPlan) -> List[SkidBufferSpec]:
    """Materialize a :class:`CutPlan` into per-FIFO specs."""
    specs: List[SkidBufferSpec] = []
    for cut, (depth, width) in zip(plan.cuts, plan.segments):
        luts, ffs, brams = fifo_area(depth, width)
        specs.append(
            SkidBufferSpec(
                after_stage=cut,
                depth=depth,
                width=width,
                luts=luts,
                ffs=ffs,
                brams=brams,
            )
        )
    return specs
