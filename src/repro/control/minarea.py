"""Min-area skid-buffer placement by dynamic programming (§4.3).

For a depth-``N`` pipeline with stage output widths ``w_1..w_N`` the skid
capacity protecting stages ``j+1..i`` must hold ``i - j + 1`` elements of
width ``w_i`` (the +1 because a FIFO's empty flag deasserts one cycle after
the first push).  Choosing cut points ``0 = c_0 < c_1 < ... < c_k = N`` to
minimize total bits is the paper's "easily solved using dynamic
programming" problem:

    dp[i] = min over j < i of  dp[j] + (i - j + 1) * w_i,   dp[0] = 0

which is O(N²).  The paper's Fig. 17 example — widths narrowing to one
scalar at stage 56 of 61 — reproduces exactly: a cut at the waist gives
(56+1)*32 + (5+1)*1024 = 7968 bits vs 63488 for the end-only buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ControlError


@dataclass(frozen=True)
class CutPlan:
    """A skid-buffer placement.

    Attributes:
        cuts: Stage indices (1-based) after which a buffer sits; the last
            cut is always the pipeline end ``N``.
        segments: Per buffer: ``(depth, width_bits)`` — depth counts the
            protected stages plus one.
        total_bits: Sum of ``depth * width`` over all buffers.
    """

    cuts: Tuple[int, ...]
    segments: Tuple[Tuple[int, int], ...]
    total_bits: int

    @property
    def num_buffers(self) -> int:
        return len(self.cuts)


def _plan_from_cuts(widths: Sequence[int], cuts: Sequence[int]) -> CutPlan:
    segments: List[Tuple[int, int]] = []
    total = 0
    prev = 0
    for cut in cuts:
        depth = cut - prev + 1
        width = widths[cut - 1]
        segments.append((depth, width))
        total += depth * width
        prev = cut
    return CutPlan(cuts=tuple(cuts), segments=tuple(segments), total_bits=total)


def end_buffer_plan(widths: Sequence[int]) -> CutPlan:
    """The naive Fig. 11 plan: one (N+1)-deep buffer of the output width."""
    if not widths:
        raise ControlError("cannot plan a skid buffer for an empty pipeline")
    return _plan_from_cuts(widths, [len(widths)])


def min_area_cuts(widths: Sequence[int], max_buffers: int = 0) -> CutPlan:
    """Optimal cut placement minimizing total buffered bits.

    Args:
        widths: ``w_1..w_N`` — bits crossing the boundary after each stage.
        max_buffers: Optional cap on the number of buffers (0 = unlimited);
            practical deployments may bound the number of FIFOs.

    Returns the optimal :class:`CutPlan`; falls back to the end-only plan
    for length-1 pipelines.
    """
    n = len(widths)
    if n == 0:
        raise ControlError("cannot plan a skid buffer for an empty pipeline")
    if any(w < 0 for w in widths):
        raise ControlError("stage widths must be non-negative")
    # dp[i][k] when capped, else dp[i]; j ranges over previous cut points.
    if max_buffers <= 0:
        dp = [0] + [0] * n
        choice = [0] * (n + 1)
        for i in range(1, n + 1):
            best, best_j = None, 0
            for j in range(i):
                cost = dp[j] + (i - j + 1) * widths[i - 1]
                if best is None or cost < best:
                    best, best_j = cost, j
            dp[i] = best
            choice[i] = best_j
        cuts: List[int] = []
        i = n
        while i > 0:
            cuts.append(i)
            i = choice[i]
        cuts.reverse()
        return _plan_from_cuts(widths, cuts)

    INF = float("inf")
    dp2 = [[INF] * (max_buffers + 1) for _ in range(n + 1)]
    choice2 = [[0] * (max_buffers + 1) for _ in range(n + 1)]
    dp2[0][0] = 0
    for i in range(1, n + 1):
        for k in range(1, max_buffers + 1):
            for j in range(i):
                if dp2[j][k - 1] == INF:
                    continue
                cost = dp2[j][k - 1] + (i - j + 1) * widths[i - 1]
                if cost < dp2[i][k]:
                    dp2[i][k] = cost
                    choice2[i][k] = j
    best_k = min(range(1, max_buffers + 1), key=lambda k: dp2[n][k])
    cuts = []
    i, k = n, best_k
    while i > 0:
        cuts.append(i)
        i, k = choice2[i][k], k - 1
    cuts.reverse()
    return _plan_from_cuts(widths, cuts)
