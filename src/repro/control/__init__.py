"""Pipeline flow-control styles.

* :mod:`repro.control.stall` — the baseline broadcast stall/enable control
  HLS tools emit (§3.3);
* :mod:`repro.control.skid` — skid-buffer-based always-flowing control
  (§4.3), with depth N+1 buffers;
* :mod:`repro.control.minarea` — the O(N²) dynamic program that splits the
  skid buffer at narrow waists of the stage-width profile (Fig. 12/17).
"""

from repro.control.styles import ControlStyle
from repro.control.minarea import CutPlan, end_buffer_plan, min_area_cuts
from repro.control.skid import SkidBufferSpec, skid_buffer_specs, fifo_area

__all__ = [
    "ControlStyle",
    "CutPlan",
    "min_area_cuts",
    "end_buffer_plan",
    "SkidBufferSpec",
    "skid_buffer_specs",
    "fifo_area",
]
