"""Staged pass pipeline: content-addressed stages with partial re-execution.

The pipeline decomposes the flow into eleven :class:`Stage` steps executed
by a :class:`PassManager` over a shared context dict.  Each stage carries a
content digest chained from the design structure, its parameters, and its
producers' digests; a matching artifact in the :class:`StageArtifactStore`
(``$REPRO_CACHE_DIR/stages/``) or a :class:`MemoryStageStore` overlay lets
the manager skip the stage and replay its recorded trace instead.

See ``DESIGN.md`` §7 for the DAG, digest propagation, and invalidation
semantics.
"""

from repro.pipeline.digest import (
    DESIGN_DIGEST_SCHEMA,
    TABLE_DIGEST_SCHEMA,
    design_digest,
    table_digest,
)
from repro.pipeline.incremental import (
    INCREMENTAL_ENV,
    IncrementalState,
    coerce_incremental,
    incremental_enabled_default,
)
from repro.pipeline.manager import ACTION_RUN, ACTION_SKIPPED, PassManager
from repro.pipeline.stage import STAGE_DIGEST_SCHEMA, Stage
from repro.pipeline.stages import (
    CalibrationStage,
    IIAnalysisStage,
    PlacementStage,
    PragmasStage,
    ReplicationStage,
    RetimingStage,
    RtlGenStage,
    SchedulingStage,
    SpreadingStage,
    SyncPruningStage,
    TimingStage,
    build_stages,
)
from repro.pipeline.store import (
    DEFAULT_MAX_ENTRIES,
    STAGE_CACHE_ENV,
    STAGE_STORE_SCHEMA,
    MemoryStageStore,
    StageArtifactStore,
    StoredStage,
    decode_outputs,
    default_stage_dir,
    encode_outputs,
    stage_cache_enabled,
)

__all__ = [
    "ACTION_RUN",
    "ACTION_SKIPPED",
    "CalibrationStage",
    "DEFAULT_MAX_ENTRIES",
    "DESIGN_DIGEST_SCHEMA",
    "IIAnalysisStage",
    "INCREMENTAL_ENV",
    "IncrementalState",
    "MemoryStageStore",
    "PassManager",
    "PlacementStage",
    "PragmasStage",
    "ReplicationStage",
    "RetimingStage",
    "RtlGenStage",
    "STAGE_CACHE_ENV",
    "STAGE_DIGEST_SCHEMA",
    "STAGE_STORE_SCHEMA",
    "SchedulingStage",
    "SpreadingStage",
    "Stage",
    "StageArtifactStore",
    "StoredStage",
    "SyncPruningStage",
    "TABLE_DIGEST_SCHEMA",
    "TimingStage",
    "build_stages",
    "coerce_incremental",
    "decode_outputs",
    "default_stage_dir",
    "design_digest",
    "encode_outputs",
    "incremental_enabled_default",
    "stage_cache_enabled",
    "table_digest",
]
