"""In-process incremental-recompilation state (sweep damage cones).

A parameter sweep re-runs the flow with one knob changed — the clock
target, the calibration table, a single pragma.  The stage-digest chain
(:mod:`repro.pipeline.digest`) already skips stages whose *inputs* are
byte-identical; this module holds the finer-grained memos that shrink the
work of the stages that **do** re-run:

* ``sched`` — per-loop scheduling decisions keyed by (loop content, clock,
  calibration).  A single-pragma flip re-chains only the flipped loop; all
  other loops replay their previous :class:`~repro.scheduling.schedule.Schedule`.
* ``rtl`` — per-loop emission tapes keyed by (loop content, schedule
  decisions, control style).  A loop whose schedule slice is unchanged is
  re-emitted by replaying its recorded cell/net tape instead of re-running
  the emitter logic.
* ``place`` — the previous run's greedy-placement trajectory.  Cells whose
  neighborhood state is unchanged re-take their recorded tile chunks
  (skipping the spiral free-capacity search); the first divergence falls
  back to fresh allocation for the rest of the order.
* ``overlay`` — a persistent in-process
  :class:`~repro.pipeline.store.MemoryStageStore` shared by every run of
  the owning flow.  It is what turns the stage-digest chain into a *sweep*
  damage cone: a re-run point whose stage inputs are byte-identical skips
  the stage outright (the overlay hands back a fresh unpickled copy of the
  previous outputs), so only the stages inside the dirty cone execute.

All three memos are *exact*: every replay reproduces bit-identical state
(tests/test_incremental_flow.py proves fingerprint equality against
from-scratch runs, and the ``incremental`` fuzz check does the same over
random programs).  The state lives on the :class:`~repro.flow.Flow`
instance and works even with the stage-artifact store disabled.

Persistence: each memo write-throughs to an on-disk :class:`MemoSpill`
under ``$REPRO_CACHE_DIR/memos`` (keyed by the content digest of the memo
key), so a *fresh* ``Flow`` — a recycled service worker, a new sweep
process — warms up from the previous owner's entries instead of starting
cold.  Disk hits count into the same ``incremental.<name>_hits`` counters
(plus ``incremental.<name>_spill_hits``); a memo key or value that cannot
be canonicalized/pickled simply stays memory-only.

Escape hatches: ``Flow(incremental=False)``, ``--incremental off``, or
``REPRO_INCREMENTAL=off`` in the environment; ``REPRO_MEMO_SPILL=off``
keeps incremental on but memory-only.
"""

from __future__ import annotations

import os
import pickle
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro import obs
from repro.hashing import content_digest
from repro.pipeline.store import MemoryStageStore

#: Environment escape hatch: set to ``off`` to disable incremental
#: recompilation everywhere (mirrors ``$REPRO_STAGE_CACHE``).
INCREMENTAL_ENV = "REPRO_INCREMENTAL"

#: Environment escape hatch: set to ``off`` to keep the incremental memos
#: memory-only (no ``$REPRO_CACHE_DIR/memos`` spill).
MEMO_SPILL_ENV = "REPRO_MEMO_SPILL"

#: Values of :data:`INCREMENTAL_ENV` (or ``Flow(incremental=...)`` strings)
#: that mean "disabled".
_OFF_VALUES = ("off", "0", "no", "false")


def incremental_enabled_default() -> bool:
    """Whether incremental recompilation is on absent an explicit setting."""
    return os.environ.get(INCREMENTAL_ENV, "").strip().lower() not in _OFF_VALUES


def memo_spill_enabled_default() -> bool:
    """Whether the memos spill to disk absent an explicit setting."""
    return os.environ.get(MEMO_SPILL_ENV, "").strip().lower() not in _OFF_VALUES


def default_memo_dir() -> str:
    """``$REPRO_CACHE_DIR/memos`` (next to ``stages/`` and ``results/``)."""
    from repro.delay.cache import default_cache_dir

    return os.path.join(default_cache_dir(), "memos")


def coerce_incremental(setting: Any) -> bool:
    """Normalize a ``Flow(incremental=...)`` value to a boolean policy."""
    if setting is None:
        return incremental_enabled_default()
    if isinstance(setting, str):
        return setting.strip().lower() not in _OFF_VALUES
    return bool(setting)


#: On-disk payload format marker (checked on load; a mismatch is a miss).
SPILL_SCHEMA = "repro-memo-spill/1"


class MemoSpill:
    """The shared on-disk side of the incremental memos.

    One flat directory of pickle files, each holding a single memo entry
    named ``<memo>-<sha256(key)>.pkl``.  Keys are canonical-JSON content
    digests (the same recipe as the flow service), so every process —
    and every *future* process — derives identical file names for
    identical memo keys without coordination.

    Robustness over completeness: a key that cannot be canonicalized or a
    value that cannot be pickled is silently skipped (that entry stays
    memory-only), a torn/corrupt file is a miss, and all filesystem
    errors degrade to cache-off behavior.  Writes are atomic
    (temp + ``os.replace``) so concurrent workers never observe partial
    payloads.  The directory is bounded by an mtime LRU: loads refresh
    mtime, and every :data:`PRUNE_EVERY` saves the oldest entries beyond
    ``max_entries`` are deleted.
    """

    PRUNE_EVERY = 64

    def __init__(
        self, root: Optional[str] = None, max_entries: int = 4096
    ) -> None:
        self.root = root if root is not None else default_memo_dir()
        self.max_entries = max_entries
        self.saves = 0
        self.loads = 0
        self.errors = 0

    def _path(self, name: str, key_digest: str) -> str:
        return os.path.join(self.root, f"{name}-{key_digest}.pkl")

    def _key_digest(self, name: str, key: Hashable) -> Optional[str]:
        try:
            return content_digest(
                {"schema": SPILL_SCHEMA, "memo": name, "key": key}
            )
        except (TypeError, ValueError):
            return None  # non-JSONable key: memory-only entry

    def load(self, name: str, key: Hashable) -> Optional[Any]:
        """The spilled value for ``(name, key)``, or ``None`` on a miss."""
        key_digest = self._key_digest(name, key)
        if key_digest is None:
            return None
        path = self._path(name, key_digest)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                TypeError, AttributeError, ImportError, IndexError):
            return None  # torn/corrupt/foreign file: a miss, not an error
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != SPILL_SCHEMA
            or payload.get("memo") != name
        ):
            return None
        try:
            os.utime(path, None)  # refresh the LRU clock
        except OSError:
            pass
        self.loads += 1
        return payload.get("value")

    def save(self, name: str, key: Hashable, value: Any) -> None:
        """Write-through ``(name, key) → value``; best-effort."""
        key_digest = self._key_digest(name, key)
        if key_digest is None:
            return
        try:
            blob = pickle.dumps(
                {"schema": SPILL_SCHEMA, "memo": name, "value": value},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except (TypeError, AttributeError, pickle.PicklingError):
            self.errors += 1
            return  # unpicklable value: memory-only entry
        path = self._path(name, key_digest)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            os.makedirs(self.root, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:
            self.errors += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self.saves += 1
        if self.saves % self.PRUNE_EVERY == 0:
            self.prune()

    def prune(self) -> int:
        """Delete the oldest entries beyond ``max_entries``; returns the
        number removed."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        entries: List[Tuple[float, str]] = []
        for filename in names:
            if not filename.endswith(".pkl"):
                continue
            path = os.path.join(self.root, filename)
            try:
                entries.append((os.path.getmtime(path), path))
            except OSError:
                continue  # concurrently pruned
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return 0
        entries.sort()
        removed = 0
        for _, path in entries[:excess]:
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed


class _LruMemo:
    """A bounded insertion-refreshed memo with hit/miss counters.

    With a :class:`MemoSpill` attached, an in-memory miss consults disk
    before declaring a real miss, and every put write-throughs — so the
    memo's warm state outlives this process.
    """

    def __init__(
        self,
        name: str,
        max_entries: int,
        spill: Optional[MemoSpill] = None,
    ) -> None:
        self.name = name
        self.max_entries = max_entries
        self.spill = spill
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.spill_hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        hit = self._entries.get(key)
        if hit is None and self.spill is not None:
            hit = self.spill.load(self.name, key)
            if hit is not None:
                self._entries[key] = hit
                self._trim()
                self.spill_hits += 1
                obs.add(f"incremental.{self.name}_spill_hits")
        if hit is None:
            self.misses += 1
            obs.add(f"incremental.{self.name}_misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        obs.add(f"incremental.{self.name}_hits")
        return hit

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        self._trim()
        if self.spill is not None:
            self.spill.save(self.name, key, value)

    def _trim(self) -> None:
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)


class IncrementalState:
    """Per-:class:`~repro.flow.Flow` workspace of incremental memos.

    Bounded so week-long sweep processes cannot grow without limit; the
    bounds are generous relative to real sweeps (a 9-design × 2-config ×
    10-point campaign touches well under 1k loops).
    """

    MAX_SCHED_ENTRIES = 1024
    MAX_RTL_ENTRIES = 1024
    MAX_PLACE_ENTRIES = 64
    #: ~12 warm sweep points (a full run writes ~11 stage bundles).
    MAX_OVERLAY_ENTRIES = 128

    def __init__(self, spill: Optional[MemoSpill] = None) -> None:
        self.spill = spill
        self.sched = _LruMemo("sched", self.MAX_SCHED_ENTRIES, spill=spill)
        self.rtl = _LruMemo("rtl", self.MAX_RTL_ENTRIES, spill=spill)
        self.place = _LruMemo("place", self.MAX_PLACE_ENTRIES, spill=spill)
        #: Stage outputs shared across this flow's runs (hits unpickle
        #: fresh copies, so cross-run mutation cannot alias).  Not spilled:
        #: the stage-artifact store (``$REPRO_CACHE_DIR/stages``) already
        #: persists the same bundles content-addressed on disk.
        self.overlay = MemoryStageStore(max_entries=self.MAX_OVERLAY_ENTRIES)

    def stats(self) -> Dict[str, Dict[str, int]]:
        return {
            memo.name: {
                "entries": len(memo),
                "hits": memo.hits,
                "misses": memo.misses,
                "spill_hits": memo.spill_hits,
            }
            for memo in (self.sched, self.rtl, self.place)
        }


@contextmanager
def ensure_traced():
    """Guarantee a real :class:`~repro.obs.Tracer` is active.

    Memo entries bundle a span snapshot (replayed on hits so warm runs
    report the producer's counters — ``scheduling.registers_inserted``
    and friends).  An untraced producer run would snapshot nothing and
    starve every later traced replay, so mirror the
    :class:`~repro.pipeline.manager.PassManager` trick: activate a private
    shadow tracer for the duration when none is active.
    """
    tracer = obs.current_tracer()
    if isinstance(tracer, obs.Tracer):
        yield
    else:
        with obs.activate(obs.Tracer()):
            yield
