"""In-process incremental-recompilation state (sweep damage cones).

A parameter sweep re-runs the flow with one knob changed — the clock
target, the calibration table, a single pragma.  The stage-digest chain
(:mod:`repro.pipeline.digest`) already skips stages whose *inputs* are
byte-identical; this module holds the finer-grained memos that shrink the
work of the stages that **do** re-run:

* ``sched`` — per-loop scheduling decisions keyed by (loop content, clock,
  calibration).  A single-pragma flip re-chains only the flipped loop; all
  other loops replay their previous :class:`~repro.scheduling.schedule.Schedule`.
* ``rtl`` — per-loop emission tapes keyed by (loop content, schedule
  decisions, control style).  A loop whose schedule slice is unchanged is
  re-emitted by replaying its recorded cell/net tape instead of re-running
  the emitter logic.
* ``place`` — the previous run's greedy-placement trajectory.  Cells whose
  neighborhood state is unchanged re-take their recorded tile chunks
  (skipping the spiral free-capacity search); the first divergence falls
  back to fresh allocation for the rest of the order.
* ``overlay`` — a persistent in-process
  :class:`~repro.pipeline.store.MemoryStageStore` shared by every run of
  the owning flow.  It is what turns the stage-digest chain into a *sweep*
  damage cone: a re-run point whose stage inputs are byte-identical skips
  the stage outright (the overlay hands back a fresh unpickled copy of the
  previous outputs), so only the stages inside the dirty cone execute.

All three memos are *exact*: every replay reproduces bit-identical state
(tests/test_incremental_flow.py proves fingerprint equality against
from-scratch runs, and the ``incremental`` fuzz check does the same over
random programs).  The state lives on the :class:`~repro.flow.Flow`
instance — nothing is persisted — and works even with the stage-artifact
store disabled.

Escape hatches: ``Flow(incremental=False)``, ``--incremental off``, or
``REPRO_INCREMENTAL=off`` in the environment.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Hashable, Optional

from repro import obs
from repro.pipeline.store import MemoryStageStore

#: Environment escape hatch: set to ``off`` to disable incremental
#: recompilation everywhere (mirrors ``$REPRO_STAGE_CACHE``).
INCREMENTAL_ENV = "REPRO_INCREMENTAL"

#: Values of :data:`INCREMENTAL_ENV` (or ``Flow(incremental=...)`` strings)
#: that mean "disabled".
_OFF_VALUES = ("off", "0", "no", "false")


def incremental_enabled_default() -> bool:
    """Whether incremental recompilation is on absent an explicit setting."""
    return os.environ.get(INCREMENTAL_ENV, "").strip().lower() not in _OFF_VALUES


def coerce_incremental(setting: Any) -> bool:
    """Normalize a ``Flow(incremental=...)`` value to a boolean policy."""
    if setting is None:
        return incremental_enabled_default()
    if isinstance(setting, str):
        return setting.strip().lower() not in _OFF_VALUES
    return bool(setting)


class _LruMemo:
    """A bounded insertion-refreshed memo with hit/miss counters."""

    def __init__(self, name: str, max_entries: int) -> None:
        self.name = name
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        hit = self._entries.get(key)
        if hit is None:
            self.misses += 1
            obs.add(f"incremental.{self.name}_misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        obs.add(f"incremental.{self.name}_hits")
        return hit

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)


class IncrementalState:
    """Per-:class:`~repro.flow.Flow` workspace of incremental memos.

    Bounded so week-long sweep processes cannot grow without limit; the
    bounds are generous relative to real sweeps (a 9-design × 2-config ×
    10-point campaign touches well under 1k loops).
    """

    MAX_SCHED_ENTRIES = 1024
    MAX_RTL_ENTRIES = 1024
    MAX_PLACE_ENTRIES = 64
    #: ~12 warm sweep points (a full run writes ~11 stage bundles).
    MAX_OVERLAY_ENTRIES = 128

    def __init__(self) -> None:
        self.sched = _LruMemo("sched", self.MAX_SCHED_ENTRIES)
        self.rtl = _LruMemo("rtl", self.MAX_RTL_ENTRIES)
        self.place = _LruMemo("place", self.MAX_PLACE_ENTRIES)
        #: Stage outputs shared across this flow's runs (hits unpickle
        #: fresh copies, so cross-run mutation cannot alias).
        self.overlay = MemoryStageStore(max_entries=self.MAX_OVERLAY_ENTRIES)

    def stats(self) -> Dict[str, Dict[str, int]]:
        return {
            memo.name: {
                "entries": len(memo),
                "hits": memo.hits,
                "misses": memo.misses,
            }
            for memo in (self.sched, self.rtl, self.place)
        }


@contextmanager
def ensure_traced():
    """Guarantee a real :class:`~repro.obs.Tracer` is active.

    Memo entries bundle a span snapshot (replayed on hits so warm runs
    report the producer's counters — ``scheduling.registers_inserted``
    and friends).  An untraced producer run would snapshot nothing and
    starve every later traced replay, so mirror the
    :class:`~repro.pipeline.manager.PassManager` trick: activate a private
    shadow tracer for the duration when none is active.
    """
    tracer = obs.current_tracer()
    if isinstance(tracer, obs.Tracer):
        yield
    else:
        with obs.activate(obs.Tracer()):
            yield
