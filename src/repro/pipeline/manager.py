"""The pass manager: executes the stage DAG with content-addressed skips.

For every stage, in order:

1. open the stage's observability span (so every entry point — CLI,
   engine, service — gets the identical trace skeleton);
2. compute the stage's params and chain its input digest from the digests
   of the keys it consumes;
3. look the digest up — memory overlay first (:class:`MemoryStageStore`,
   shared across the runs of one ``Flow.compare``/sweep), then the on-disk
   :class:`StageArtifactStore` (shared across processes and sessions);
4. on a hit: unpickle a fresh copy of the stored outputs, replay the
   stored span snapshot (attrs, counters, gauges, histogram samples, child
   spans — see :mod:`repro.obs.snapshot`), mark the span ``cached`` and
   count ``pipeline.stages_skipped``;
5. on a miss: run the stage, snapshot its span, and store the pickled
   output bundle *immediately* — before any later stage can mutate the
   live objects in place — counting ``pipeline.stages_run``.

Every output key then inherits the stage's digest, which is how a change
invalidates exactly the downstream stages that transitively consume it.

The manager also keeps a journal — one record per stage with its digest,
whether it ran or was skipped, and where the hit came from.  The journal
rides on :attr:`FlowResult.journal <repro.flow.FlowResult.journal>`; the
service surfaces it per job, which is how the resume smoke proves a
retried worker picked up from its dead predecessor's checkpoints.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.pipeline.digest import design_digest
from repro.pipeline.stage import Stage
from repro.pipeline.store import (
    STAGE_STORE_SCHEMA,
    MemoryStageStore,
    StageArtifactStore,
    encode_outputs,
)

#: Journal ``action`` values.
ACTION_RUN = "run"
ACTION_SKIPPED = "skipped"


class _LazyContext(dict):
    """Context dict that materializes skipped-stage outputs on first read.

    A store hit used to unpickle its output bundle immediately; on a warm
    re-run where most stages skip, most of those bundles are superseded by
    a later stage's bundle before anyone reads them (three stages bundle
    ``lowered``, four bundle ``gen``).  Deferring the unpickle to the first
    actual read makes a fully-warm run pay only for the *final* producer of
    each key it consumes.

    ``defer`` registers a store entry as the pending producer of a set of
    keys; any read of such a key loads the bundle once and materializes
    every key still pending on that entry.  A later write (a stage that
    ran, or a newer skipped producer) simply supersedes the pending entry.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._pending: Dict[str, Any] = {}

    def defer(self, keys: Sequence[str], entry: Any) -> None:
        for key in keys:
            super().pop(key, None)
            self._pending[key] = entry

    def _materialize(self, key: str) -> None:
        entry = self._pending.get(key)
        if entry is None:
            return
        outputs = entry.load()
        for name, value in outputs.items():
            if self._pending.get(name) is entry:
                del self._pending[name]
                super().__setitem__(name, value)

    def _materialize_all(self) -> None:
        for key in list(self._pending):
            self._materialize(key)

    def __getitem__(self, key: str) -> Any:
        self._materialize(key)
        return super().__getitem__(key)

    def get(self, key: str, default: Any = None) -> Any:
        self._materialize(key)
        return super().get(key, default)

    def __contains__(self, key: object) -> bool:
        return super().__contains__(key) or key in self._pending

    def __setitem__(self, key: str, value: Any) -> None:
        self._pending.pop(key, None)
        super().__setitem__(key, value)

    def update(self, *args: Any, **kwargs: Any) -> None:  # type: ignore[override]
        for key, value in dict(*args, **kwargs).items():
            self[key] = value

    # Whole-dict views must see pending values too.
    def keys(self):  # type: ignore[override]
        self._materialize_all()
        return super().keys()

    def values(self):  # type: ignore[override]
        self._materialize_all()
        return super().values()

    def items(self):  # type: ignore[override]
        self._materialize_all()
        return super().items()


class PassManager:
    """Executes a stage list over a shared context dict.

    Args:
        stages: The stages, in DAG order (see
            :func:`repro.pipeline.stages.build_stages`).
        store: On-disk artifact store, or ``None`` to disable persistence.
        overlay: In-process store consulted before ``store`` and written
            alongside it; ``Flow.compare`` shares one across its two runs.
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        store: Optional[StageArtifactStore] = None,
        overlay: Optional[MemoryStageStore] = None,
    ) -> None:
        self.stages = list(stages)
        self.store = store
        self.overlay = overlay

    def _lookup(self, digest: str) -> Tuple[Optional[Any], Optional[str]]:
        if self.overlay is not None:
            hit = self.overlay.get(digest)
            if hit is not None:
                return hit, "overlay"
        if self.store is not None:
            hit = self.store.get(digest)
            if hit is not None:
                return hit, "disk"
        return None, None

    def execute(
        self, flow, config, ctx: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
        """Run the pipeline; returns ``(ctx, journal)``.

        ``ctx`` must hold the ``design`` (and any flow-level scalars stages
        parameterize on, e.g. ``clock_ns``); it is updated in place with
        every stage's outputs.
        """
        tracer = obs.current_tracer()
        caching = self.store is not None or self.overlay is not None
        if caching and not isinstance(tracer, obs.Tracer):
            # Untraced run that will store artifacts: activate a private
            # tracer so every artifact still carries a replayable span
            # snapshot (stage internals report through the *active*
            # tracer) — a later, traced warm run replays the producer's
            # attrs and counters from it.
            with obs.activate(obs.Tracer()) as shadow:
                return self._execute(shadow, flow, config, ctx, caching)
        return self._execute(tracer, flow, config, ctx, caching)

    def _execute(
        self, tracer, flow, config, ctx: Dict[str, Any], caching: bool
    ) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
        journal: List[Dict[str, Any]] = []
        key_digests: Dict[str, str] = {"design": design_digest(ctx["design"])}
        incremental = bool(getattr(flow, "incremental_enabled", False))
        if not isinstance(ctx, _LazyContext):
            ctx = _LazyContext(ctx)
        for stage in self.stages:
            started = time.perf_counter()
            with tracer.span(stage.name) as span:
                params = stage.params(flow, config, ctx)
                digest = stage.input_digest(params, key_digests)
                hit = source = None
                if stage.cacheable and caching:
                    hit, source = self._lookup(digest)
                if hit is not None:
                    # Defer the unpickle: a later skipped stage often
                    # supersedes these keys before anyone reads them, in
                    # which case this bundle is never loaded at all.
                    ctx.defer(stage.outputs, hit)
                    content: Dict[str, str] = (
                        dict(hit.meta.get("content") or {}) if incremental else {}
                    )
                    obs.replay_span(span, hit.meta.get("span") or {})
                    span.set("cached", True)
                    tracer.add("pipeline.stages_skipped")
                    action = ACTION_SKIPPED
                else:
                    outputs = dict(stage.run(flow, config, ctx, span) or {})
                    ctx.update(outputs)
                    # Early cutoff (incremental mode): chain each output
                    # key from its *content* digest where the stage can
                    # provide one, so a re-run that reproduced identical
                    # outputs invalidates nothing downstream.  Computed now
                    # — before any later stage mutates the live objects in
                    # place — and stored in the artifact sidecar so a skip
                    # can chain the same digests without loading outputs.
                    content = {}
                    if incremental:
                        content = (
                            stage.content_digests(flow, config, ctx, outputs)
                            or {}
                        )
                    if stage.cacheable and caching:
                        # Snapshot and pickle *now*: later stages mutate
                        # these objects in place (scheduling edits loop
                        # bodies, replication rewrites the netlist), and
                        # the stored artifact must be this stage's view.
                        payload = encode_outputs(stage.name, outputs)
                        meta = {
                            "schema": STAGE_STORE_SCHEMA,
                            "stage": stage.name,
                            "span": obs.snapshot_span(span),
                            "content": content,
                        }
                        if self.overlay is not None:
                            self.overlay.put(digest, payload, meta)
                        if self.store is not None:
                            self.store.put(digest, payload, meta)
                    tracer.add("pipeline.stages_run")
                    action = ACTION_RUN
            for key in stage.outputs:
                key_digests[key] = content.get(key, digest)
            duration_ms = round((time.perf_counter() - started) * 1e3, 3)
            journal.append(
                {
                    "stage": stage.name,
                    "digest": digest,
                    "action": action,
                    "source": source,
                    "cacheable": stage.cacheable,
                    "duration_ms": duration_ms,
                    "content_keys": sorted(content),
                }
            )
            if stage.cacheable and caching:
                obs.emit_event(
                    "stage.hit" if action == ACTION_SKIPPED else "stage.miss",
                    stage=stage.name,
                    digest=digest,
                    cache=source,  # "memory"/"disk" ("source" names the emitter)
                    duration_ms=duration_ms,
                )
        return ctx, journal
