"""The eleven concrete stages of the flow pipeline.

Execution order (the DAG is a chain with explicit data edges)::

    pragmas ──▶ sync-pruning ──▶ calibration ──▶ scheduling ──▶ ii-analysis
                                                      │
                                                      ▼
                 placement ◀────────────────────── rtl-gen
                     │
                     ▼
                 spreading ──▶ replication ──▶ retiming ──▶ timing

Stage bodies are the former ``Flow.run`` blocks, moved verbatim; the span
attribute names and counter/histogram emissions are unchanged, so traces
of a cold run are byte-compatible with the monolithic flow's.

Artifact-bundling rules (why some outputs re-bind their inputs):

* ``scheduling`` re-binds ``lowered`` — broadcast-aware scheduling inserts
  register ops into loop bodies in place, and each
  :class:`~repro.scheduling.schedule.Schedule` holds references to those
  :class:`~repro.ir.ops.Operation` objects.  Storing them in one bundle
  preserves the identity linkage across a pickle round trip.
* ``replication`` and ``retiming`` re-bind both ``gen`` and ``placement``
  for the same reason: they rewrite the netlist and the placement as one
  consistent unit.
* ``placement``/``spreading`` output only ``placement`` — a
  :class:`~repro.physical.placement.Placement` is keyed by cell *name*, so
  it stays coherent against any unpickled copy of the same netlist.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.delay.calibrated import CalibratedDelayModel
from repro.delay.hls_model import HlsDelayModel
from repro.hashing import content_digest
from repro.ir.passes import apply_pragmas
from repro.physical.device import get_device
from repro.physical.fabric import Fabric
from repro.physical.placement import Placer
from repro.physical.replication import replicate_high_fanout
from repro.physical.retiming import retime_movable
from repro.physical.spreading import spread_movable_chains
from repro.physical.timing import TimingAnalyzer
from repro.pipeline.digest import (
    design_digest,
    loop_digest,
    schedules_digest,
    table_digest,
)
from repro.pipeline.incremental import ensure_traced
from repro.pipeline.stage import Stage
from repro.rtl.generator import GenOptions, generate_netlist
from repro.scheduling.broadcast_aware import broadcast_aware_schedule
from repro.scheduling.chaining import ChainingScheduler
from repro.scheduling.ii import analyze_ii
from repro.scheduling.schedule import Schedule, ScheduledOp, Violation
from repro.sync.pruning import prune_synchronization

#: ``cal_table`` content-digest placeholder when no table is resolved
#: (baseline configs schedule with the uncalibrated HLS model).
_NO_TABLE_DIGEST = "cal-table:none"


class PragmasStage(Stage):
    """Apply the transform plan (if any), verify the design and lower
    pragmas (loop unrolling — where data broadcasts are born)."""

    name = "pragmas"
    inputs = ("design",)
    outputs = ("lowered",)

    def params(self, flow, config, ctx):
        # The plan rewrites the design before lowering, so its digest is
        # part of this stage's identity.  Plan-free runs return the same
        # empty params as before plans existed — their stored artifacts
        # stay valid.
        plan = ctx.get("plan")
        if plan is None or not len(plan):
            return {}
        return {"plan": plan.digest()}

    def run(self, flow, config, ctx, span):
        design = ctx["design"]
        plan = ctx.get("plan")
        if plan is not None and len(plan):
            span.set("plan_transforms", len(plan))
            design = plan.apply(design)
        design.verify()
        lowered = apply_pragmas(design)
        span.set("kernels", len(lowered.kernels))
        span.set("loops", sum(1 for _ in lowered.all_loops()))
        span.set("ops", sum(len(l.body.ops) for _, l in lowered.all_loops()))
        return {"lowered": lowered}

    def content_digests(self, flow, config, ctx, outputs):
        return {"lowered": design_digest(outputs["lowered"])}


class SyncPruningStage(Stage):
    """Optional §4.2 synchronization pruning.  Always present in the DAG so
    every trace has the same stage skeleton (attr ``enabled`` tells which)."""

    name = "sync-pruning"
    inputs = ("lowered",)
    outputs = ("lowered", "sync_report")

    def params(self, flow, config, ctx):
        return {"enabled": bool(config.sync_pruning)}

    def run(self, flow, config, ctx, span):
        span.set("enabled", bool(config.sync_pruning))
        lowered = ctx["lowered"]
        sync_report = None
        if config.sync_pruning:
            lowered, sync_report = prune_synchronization(lowered)
            span.set("split_loops", len(sync_report.split_loops))
            span.set("flows_created", sync_report.flows_created)
            span.set("call_syncs_pruned", len(sync_report.call_syncs_pruned))
        return {"lowered": lowered, "sync_report": sync_report}

    def content_digests(self, flow, config, ctx, outputs):
        # ``sync_report`` is report-layer output no downstream stage
        # consumes; it keeps provenance chaining.
        return {"lowered": design_digest(outputs["lowered"])}


class CalibrationStage(Stage):
    """Resolve the §4.1 characterization table (injected → memo → disk →
    built).

    Not cacheable: resolution *is* a cache lookup already, and its result
    depends on the environment (injected tables, cache toggles, explicit
    paths).  It still chains a digest — of the actual table *content* — so
    downstream scheduling artifacts can never alias two different tables
    that happen to share provenance (e.g. a synthetic test table saved
    under the default seed).
    """

    name = "calibration"
    inputs = ("lowered",)
    outputs = ("cal_table",)
    cacheable = False

    @staticmethod
    def _table(flow, config, ctx) -> Tuple[Optional[Any], Optional[str]]:
        if not config.broadcast_aware:
            return None, None
        if flow.calibration is not None:
            return flow.calibration, "injected"
        return flow._resolve_calibration(ctx["lowered"].device)

    def params(self, flow, config, ctx):
        table, _source = self._table(flow, config, ctx)
        return {
            "enabled": bool(config.broadcast_aware),
            "table": table_digest(table) if table is not None else None,
        }

    def run(self, flow, config, ctx, span):
        # The characterization itself runs placements; it gets its own
        # stage so its cost isn't blamed on scheduling.
        table, source = self._table(flow, config, ctx)
        span.set("enabled", bool(config.broadcast_aware))
        if table is not None:
            span.set("source", source)
            span.set("cached", source != "built")
        return {"cal_table": table}

    def content_digests(self, flow, config, ctx, outputs):
        table = outputs["cal_table"]
        return {
            "cal_table": table_digest(table)
            if table is not None
            else _NO_TABLE_DIGEST
        }


class SchedulingStage(Stage):
    """Schedule every loop body — baseline HLS model, or §4.1
    broadcast-aware (which edits the lowered design in place).

    With incremental recompilation on, each loop's decisions are memoized
    on the flow instance keyed by (loop content, clock, model, table
    content).  A sweep point that flips one pragma then re-schedules only
    the flipped loop; every other loop replays its memo — the stored
    ``extra_latency`` attribute edits are re-applied to this run's op
    objects and the :class:`~repro.scheduling.schedule.Schedule` is rebuilt
    around them, so the replay is indistinguishable from a re-run.
    """

    name = "scheduling"
    inputs = ("lowered", "cal_table")
    outputs = ("lowered", "schedules", "schedule_edits")

    def params(self, flow, config, ctx):
        return {
            "clock_ns": ctx["clock_ns"],
            "broadcast_aware": bool(config.broadcast_aware),
        }

    def run(self, flow, config, ctx, span):
        lowered = ctx["lowered"]
        clock_ns = ctx["clock_ns"]
        span.set("broadcast_aware", bool(config.broadcast_aware))
        schedules: Dict[Tuple[str, str], Schedule] = {}
        edits: List[str] = []
        cal_model: Optional[CalibratedDelayModel] = None
        table = ctx["cal_table"]
        if config.broadcast_aware:
            cal_model = CalibratedDelayModel(table)
        hls_model = HlsDelayModel()
        memo = table_key = None
        if getattr(flow, "incremental_enabled", False):
            memo = flow._incremental_state().sched
            table_key = (
                table_digest(table) if table is not None else _NO_TABLE_DIGEST
            )
        for kernel, loop in lowered.all_loops():
            key = None
            if memo is not None:
                key = (
                    loop_digest(kernel.name, loop),
                    clock_ns,
                    bool(config.broadcast_aware),
                    table_key,
                )
                hit = memo.get(key)
                if hit is not None:
                    schedule = self._replay_loop(kernel, loop, hit)
                    schedules[(kernel.name, loop.name)] = schedule
                    edits.extend(
                        f"{kernel.name}/{loop.name}: {edit}"
                        for edit in hit["edits"]
                    )
                    continue
            schedule, loop_edits, snapshot = self._schedule_loop(
                kernel, loop, clock_ns, cal_model, hls_model, memo is not None
            )
            schedules[(kernel.name, loop.name)] = schedule
            edits.extend(
                f"{kernel.name}/{loop.name}: {edit}" for edit in loop_edits
            )
            if memo is not None:
                memo.put(key, self._record_loop(loop, schedule, loop_edits, snapshot))
        span.set("loops", len(schedules))
        span.set("edits", len(edits))
        span.set("max_depth", max((s.depth for s in schedules.values()), default=0))
        return {"lowered": lowered, "schedules": schedules, "schedule_edits": edits}

    @staticmethod
    def _schedule_loop(kernel, loop, clock_ns, cal_model, hls_model, record):
        """Schedule one loop; optionally under a snapshot-able span."""
        if not record:
            if cal_model is not None:
                result = broadcast_aware_schedule(loop.body, clock_ns, cal_model)
                return result.schedule, result.edits, None
            schedule = ChainingScheduler(hls_model, clock_ns).schedule(loop.body)
            return schedule, [], None
        # Memoizing: wrap the work in a ``schedule-loop`` span (under a
        # shadow tracer when none is active) so the memo carries a
        # replayable snapshot — warm replays then report the producer's
        # counters (``scheduling.registers_inserted`` etc.) exactly like
        # stage-artifact hits do.
        with ensure_traced():
            with obs.span(
                "schedule-loop", kernel=kernel.name, loop=loop.name
            ) as lspan:
                if cal_model is not None:
                    result = broadcast_aware_schedule(loop.body, clock_ns, cal_model)
                    schedule, loop_edits = result.schedule, result.edits
                else:
                    schedule = ChainingScheduler(hls_model, clock_ns).schedule(
                        loop.body
                    )
                    loop_edits = []
            return schedule, loop_edits, obs.snapshot_span(lspan)

    @staticmethod
    def _record_loop(loop, schedule, loop_edits, snapshot):
        """Freeze one loop's scheduling decisions into a memo payload.

        Everything is stored by *name* — replay re-binds against the next
        run's op objects (same content, fresh identities after pragma
        lowering).  ``extra_latency`` holds the in-place attribute edits
        broadcast-aware scheduling made, so replay reproduces the mutated
        design too.
        """
        return {
            "model": schedule.model_name,
            "entries": [
                (name, e.cycle, e.start_ns, e.end_ns, e.finish_cycle, e.delay_ns)
                for name, e in schedule.entries.items()
            ],
            "violations": [
                (v.op.name, v.cycle, v.arrival_ns, v.budget_ns, v.reason)
                for v in schedule.violations
            ],
            "clock_ns": schedule.clock_ns,
            "extra_latency": {
                op.name: int(op.attrs["extra_latency"])
                for op in loop.body.ops
                if "extra_latency" in op.attrs
            },
            "edits": list(loop_edits),
            "span": snapshot,
        }

    @staticmethod
    def _replay_loop(kernel, loop, hit) -> Schedule:
        """Rebuild one loop's schedule from its memo payload."""
        with obs.span(
            "schedule-loop", kernel=kernel.name, loop=loop.name
        ) as lspan:
            obs.replay_span(lspan, hit["span"])
            lspan.set("cached", True)
        ops_by_name = {op.name: op for op in loop.body.ops}
        for name, extra in hit["extra_latency"].items():
            ops_by_name[name].attrs["extra_latency"] = extra
        entries = {
            name: ScheduledOp(ops_by_name[name], cycle, start, end, finish, delay)
            for name, cycle, start, end, finish, delay in hit["entries"]
        }
        violations = [
            Violation(ops_by_name[name], cycle, arrival, budget, reason)
            for name, cycle, arrival, budget, reason in hit["violations"]
        ]
        return Schedule(
            dfg=loop.body,
            clock_ns=hit["clock_ns"],
            model_name=hit["model"],
            entries=entries,
            violations=violations,
        )

    def content_digests(self, flow, config, ctx, outputs):
        return {
            "lowered": design_digest(outputs["lowered"]),
            "schedules": schedules_digest(outputs["schedules"]),
            "schedule_edits": content_digest(list(outputs["schedule_edits"])),
        }


class IIAnalysisStage(Stage):
    """Initiation-interval analysis per loop."""

    name = "ii-analysis"
    inputs = ("lowered", "schedules")
    outputs = ("ii_by_loop",)

    def run(self, flow, config, ctx, span):
        lowered, schedules = ctx["lowered"], ctx["schedules"]
        ii_by_loop = {
            f"{kernel.name}/{loop.name}": analyze_ii(
                loop, schedules[(kernel.name, loop.name)]
            ).ii
            for kernel, loop in lowered.all_loops()
        }
        span.set("worst_ii", max(ii_by_loop.values(), default=1))
        return {"ii_by_loop": ii_by_loop}


class RtlGenStage(Stage):
    """Generate the netlist with the selected §3.3/§4.3 control style."""

    name = "rtl-gen"
    inputs = ("lowered", "schedules")
    outputs = ("gen",)

    def params(self, flow, config, ctx):
        return {"control": config.control.value}

    def run(self, flow, config, ctx, span):
        span.set("control", config.control.value)
        memo = None
        if getattr(flow, "incremental_enabled", False):
            memo = flow._incremental_state().rtl
        gen = generate_netlist(
            ctx["lowered"],
            ctx["schedules"],
            GenOptions(control=config.control),
            incremental=memo,
        )
        span.set("cells", len(gen.netlist.cells))
        span.set("nets", len(gen.netlist.nets))
        return {"gen": gen}


class PlacementStage(Stage):
    """Seeded greedy placement on the target device's fabric."""

    name = "placement"
    inputs = ("lowered", "gen")
    outputs = ("placement",)

    def params(self, flow, config, ctx):
        return {"seed": flow.seed}

    def run(self, flow, config, ctx, span):
        gen = ctx["gen"]
        span.set("cells", len(gen.netlist.cells))
        lowered = ctx["lowered"]
        fabric = Fabric(get_device(lowered.device))
        placer = Placer(fabric, seed=flow.seed)
        memo = key = None
        if getattr(flow, "incremental_enabled", False):
            memo = flow._incremental_state().place
            key = (lowered.device, flow.seed, gen.anchor, config.label, lowered.name)
        placement = placer.place(
            gen.netlist,
            anchor=gen.anchor,
            reuse=memo.get(key) if memo is not None else None,
            record=memo is not None,
        )
        if memo is not None and placer.trajectory is not None:
            memo.put(key, placer.trajectory)
        return {"placement": placement}


class SpreadingStage(Stage):
    """Re-position movable register chains evenly along their routes."""

    name = "spreading"
    inputs = ("gen", "placement")
    outputs = ("placement",)

    def run(self, flow, config, ctx, span):
        moved = spread_movable_chains(ctx["gen"].netlist, ctx["placement"])
        span.set("registers_moved", moved)
        return {"placement": ctx["placement"]}


class ReplicationStage(Stage):
    """Backend register replication for high-fanout nets (rewrites netlist
    and placement as one unit)."""

    name = "replication"
    inputs = ("gen", "placement")
    outputs = ("gen", "placement")

    def params(self, flow, config, ctx):
        rep = flow.replication
        return {
            "enabled": bool(rep.enabled),
            "max_fanout": rep.max_fanout,
            "max_replicas": rep.max_replicas,
        }

    def run(self, flow, config, ctx, span):
        gen, placement = ctx["gen"], ctx["placement"]
        replicas = replicate_high_fanout(gen.netlist, placement, flow.replication)
        span.set("replicas_created", replicas)
        return {"gen": gen, "placement": placement}


class RetimingStage(Stage):
    """Movable-register retiming; leaves the final netlist on ``gen`` so
    downstream analysis (census, verilog) sees what gets timed."""

    name = "retiming"
    inputs = ("gen", "placement")
    outputs = ("gen", "placement")

    def params(self, flow, config, ctx):
        return {"enabled": bool(flow.retime)}

    def run(self, flow, config, ctx, span):
        gen, placement = ctx["gen"], ctx["placement"]
        span.set("enabled", flow.retime)
        netlist = gen.netlist
        if flow.retime:
            netlist, placement, moves = retime_movable(netlist, placement)
            span.set("moves", moves)
        gen.netlist = netlist
        return {"gen": gen, "placement": placement}


class TimingStage(Stage):
    """Static timing analysis → Fmax + critical-path attribution."""

    name = "timing"
    inputs = ("gen", "placement")
    outputs = ("timing",)

    def run(self, flow, config, ctx, span):
        timing = TimingAnalyzer(ctx["gen"].netlist, ctx["placement"]).analyze()
        span.set("fmax_mhz", round(timing.fmax_mhz, 3))
        span.set("period_ns", round(timing.period_ns, 4))
        span.set("critical_path_class", timing.path_class.value)
        return {"timing": timing}


def build_stages() -> List[Stage]:
    """The flow's stage list, in DAG order."""
    return [
        PragmasStage(),
        SyncPruningStage(),
        CalibrationStage(),
        SchedulingStage(),
        IIAnalysisStage(),
        RtlGenStage(),
        PlacementStage(),
        SpreadingStage(),
        ReplicationStage(),
        RetimingStage(),
        TimingStage(),
    ]
