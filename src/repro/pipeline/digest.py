"""Content digests for the staged pass pipeline.

Every pipeline stage is identified by a digest over *everything that can
change its outputs*: the stage's name and version, its parameters, and the
digests of the context keys it consumes.  The chain starts from
:func:`design_digest` — a canonical structural encoding of the input
:class:`~repro.ir.program.Design` — and propagates through
:meth:`~repro.pipeline.stage.Stage.input_digest`, so a change anywhere
(one more op in a loop body, a different placement seed, a different
calibration table) invalidates exactly the stages downstream of it.

Encoding policy: the digest must be *complete* (two designs that schedule
differently must never collide) but only needs to be *stable* for real
designs.  Unknown attribute values fall back to ``str()`` — if that ever
turns out to be unstable between runs the failure mode is a spurious cache
miss, never a false hit.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List

from repro.hashing import content_digest
from repro.ir.dfg import DFG
from repro.ir.program import Buffer, Design, Fifo
from repro.ir.types import DataType

#: Version tag of the design encoding; bump to invalidate all stored stages.
DESIGN_DIGEST_SCHEMA = "repro-design-digest/1"

#: Version tag of calibration-table content digests.
TABLE_DIGEST_SCHEMA = "repro-calibration-table-digest/1"

#: Version tag of per-loop structural digests (incremental memo keys).
LOOP_DIGEST_SCHEMA = "repro-loop-digest/1"

#: Version tag of schedule-decision content digests.
SCHEDULE_DIGEST_SCHEMA = "repro-schedule-digest/1"


def _encode_value(value: Any) -> Any:
    """Tolerant canonicalization of free-form attribute/meta values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Buffer):
        return ["buffer", value.name]
    if isinstance(value, Fifo):
        return ["fifo", value.name]
    if isinstance(value, DataType):
        return ["type", value.kind, value.width]
    if isinstance(value, enum.Enum):
        return ["enum", type(value).__name__, _encode_value(value.value)]
    if isinstance(value, dict):
        return {str(k): _encode_value(v) for k, v in sorted(
            value.items(), key=lambda kv: str(kv[0])
        )}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    return str(value)


def _encode_type(dtype: DataType) -> List[Any]:
    return [dtype.kind, dtype.width]


def _encode_dfg(dfg: DFG) -> Dict[str, Any]:
    """Structural encoding of one loop-body DFG.

    Values in declaration order, ops in (topological) construction order —
    both deterministic for a given builder program — with operand/result
    linkage by value name.
    """
    return {
        "values": [
            [
                value.name,
                _encode_type(value.type),
                _encode_value(value.const),
                1 if value.loop_invariant else 0,
            ]
            for value in dfg.values.values()
        ],
        "ops": [
            [
                op.opcode.value,
                [operand.name for operand in op.operands],
                op.result.name if op.result is not None else None,
                {
                    str(k): _encode_value(v)
                    for k, v in sorted(op.attrs.items(), key=lambda kv: str(kv[0]))
                },
            ]
            for op in dfg.ops
        ],
    }


def design_digest(design: Design) -> str:
    """Canonical digest of a design's complete structure.

    Covers everything the flow reads: name, device, dataflow flag, meta
    (the clock target lives there), buffers/fifos with their pragmas, and
    every kernel/loop/DFG down to individual operations.
    """
    return content_digest(
        {
            "schema": DESIGN_DIGEST_SCHEMA,
            "name": design.name,
            "device": design.device,
            "dataflow": bool(design.dataflow),
            "meta": _encode_value(design.meta),
            "buffers": {
                name: [_encode_type(b.elem_type), b.depth, b.partition]
                for name, b in sorted(design.buffers.items())
            },
            "fifos": {
                name: [_encode_type(f.elem_type), f.depth, bool(f.external)]
                for name, f in sorted(design.fifos.items())
            },
            "kernels": [
                [
                    kernel.name,
                    [
                        [
                            loop.name,
                            loop.trip_count,
                            bool(loop.pipeline),
                            loop.ii,
                            loop.unroll,
                            _encode_dfg(loop.body),
                        ]
                        for loop in kernel.loops
                    ],
                ]
                for kernel in design.kernels
            ],
        }
    )


def loop_digest(kernel_name: str, loop: Any) -> str:
    """Content digest of one kernel loop (body, pragmas, op attributes).

    The incremental memo key for per-loop scheduling and RTL emission:
    because :func:`_encode_dfg` covers every op attribute (including
    ``extra_latency``), two loops alias only when a scheduler/emitter run
    over them is guaranteed to make identical decisions.
    """
    return content_digest(
        {
            "schema": LOOP_DIGEST_SCHEMA,
            "kernel": kernel_name,
            "name": loop.name,
            "trip_count": loop.trip_count,
            "pipeline": bool(loop.pipeline),
            "ii": loop.ii,
            "unroll": loop.unroll,
            "body": _encode_dfg(loop.body),
        }
    )


def _encode_schedule_decisions(schedule: Any) -> Dict[str, Any]:
    """Canonical encoding of a schedule's *decisions*.

    Deliberately excludes ``clock_ns`` and the violation list: no pipeline
    stage downstream of scheduling reads either (ii-analysis and rtl-gen
    consume entries/attrs only; violations are report-layer output whose
    ``budget_ns`` varies with the clock).  Excluding them is what lets a
    clock bump that changes no chaining decision cut off the entire
    backend (rtl-gen → placement → … → timing all replay).
    """
    return {
        "model": schedule.model_name,
        "entries": [
            [name, e.cycle, e.start_ns, e.end_ns, e.finish_cycle, e.delay_ns]
            for name, e in schedule.entries.items()
        ],
    }


def schedule_decisions_digest(schedule: Any) -> str:
    """Content digest of one loop's schedule decisions."""
    return content_digest(
        {"schema": SCHEDULE_DIGEST_SCHEMA, **_encode_schedule_decisions(schedule)}
    )


def schedules_digest(schedules: Dict[Any, Any]) -> str:
    """Content digest of a full ``(kernel, loop) -> Schedule`` map."""
    return content_digest(
        {
            "schema": SCHEDULE_DIGEST_SCHEMA,
            "loops": [
                [kernel, loop, _encode_schedule_decisions(schedule)]
                for (kernel, loop), schedule in schedules.items()
            ],
        }
    )


def table_digest(table: Any) -> str:
    """Content digest of a calibration table (via its stable dict form).

    Hashing the *content* rather than the provenance means an injected
    synthetic table and a built default table with the same provenance
    can never alias each other's scheduling artifacts.
    """
    return content_digest(
        {"schema": TABLE_DIGEST_SCHEMA, "curves": table.to_dict()}
    )
