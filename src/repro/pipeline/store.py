"""The stage artifact store: ``$REPRO_CACHE_DIR/stages/``.

Content-addressed persistence for individual pipeline stages, one level
below the whole-flow :class:`~repro.service.store.ResultStore`.  Every
entry is the bundled outputs of one stage execution, keyed by the stage's
input digest (see :mod:`repro.pipeline.digest`).  Two files per entry:

* ``<digest>.pkl`` — the pickled output bundle (e.g. scheduling stores
  ``{lowered, schedules, schedule_edits}`` *together* so object identity
  between a schedule entry and the DFG operation it points at survives a
  round trip);
* ``<digest>.json`` — a metadata sidecar holding the stage name plus the
  observability snapshot (span attrs, counters, raw histogram samples,
  child spans) replayed when the stage is skipped.

The mechanics are the result store's, deliberately: atomic temp+rename
writes, payload-first/sidecar-last ordering so a visible sidecar implies a
complete payload, mtime-LRU eviction with ``get`` refreshing recency, and
a missing/corrupt file always reads as a miss, never an error.

:class:`MemoryStageStore` is the in-process overlay :meth:`Flow.compare
<repro.flow.Flow.compare>` shares between its two runs: same interface,
but entries live as pickled bytes in a dict.  Hits still unpickle fresh
copies — downstream stages mutate their inputs in place, so handing out a
shared live object would let one run corrupt another's artifacts.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.delay.cache import default_cache_dir
from repro.errors import ReproError

#: Version tag of the on-disk stage entry layout.
STAGE_STORE_SCHEMA = "repro-stage-store/1"

#: Environment toggle mirroring ``REPRO_CALIBRATION_CACHE``: set to
#: ``off``/``0``/``no`` to disable the on-disk stage cache.
STAGE_CACHE_ENV = "REPRO_STAGE_CACHE"

#: Default LRU bound.  Stage bundles are smaller than whole-flow results
#: and a full run writes ~10 of them, so the bound is set to cover several
#: sweeps' worth of distinct stage points.
DEFAULT_MAX_ENTRIES = 512


def stage_cache_enabled() -> bool:
    """False when ``$REPRO_STAGE_CACHE`` is ``off``/``0``/``no``."""
    flag = os.environ.get(STAGE_CACHE_ENV, "on").strip().lower()
    return flag not in ("off", "0", "no", "false")


def default_stage_dir() -> str:
    """``$REPRO_CACHE_DIR/stages`` (see :func:`default_cache_dir`)."""
    return os.path.join(default_cache_dir(), "stages")


def encode_outputs(stage: str, outputs: Dict[str, Any]) -> bytes:
    """Pickle one stage's output bundle (deep DFG graphs need headroom)."""
    # Imported lazily: engine.pool imports repro.flow, which imports this
    # package — a module-level import here would close the cycle.
    from repro.engine.pool import ensure_pickle_depth

    ensure_pickle_depth()
    return pickle.dumps(
        {"schema": STAGE_STORE_SCHEMA, "stage": stage, "outputs": outputs},
        protocol=4,
    )


def decode_outputs(data: bytes) -> Dict[str, Any]:
    """Unpickle a bundle written by :func:`encode_outputs`."""
    from repro.engine.pool import ensure_pickle_depth

    ensure_pickle_depth()
    payload = pickle.loads(data)
    if payload.get("schema") != STAGE_STORE_SCHEMA:
        raise ReproError(
            f"stage-store entry has schema {payload.get('schema')!r}, "
            f"expected {STAGE_STORE_SCHEMA!r}"
        )
    return payload["outputs"]


@dataclass
class StoredStage:
    """One store hit: sidecar metadata plus a lazy output loader."""

    digest: str
    meta: Dict[str, Any]
    path: str

    @property
    def stage(self) -> str:
        return self.meta.get("stage", "")

    def load(self) -> Dict[str, Any]:
        """Unpickle the output bundle — always a fresh object graph."""
        with open(self.path, "rb") as handle:
            return decode_outputs(handle.read())


class _MemoryEntry:
    """Overlay hit: same duck type as :class:`StoredStage`, bytes-backed."""

    __slots__ = ("digest", "meta", "_data")

    def __init__(self, digest: str, meta: Dict[str, Any], data: bytes) -> None:
        self.digest = digest
        self.meta = meta
        self._data = data

    @property
    def stage(self) -> str:
        return self.meta.get("stage", "")

    def load(self) -> Dict[str, Any]:
        return decode_outputs(self._data)


class MemoryStageStore:
    """In-process stage store: the overlay ``Flow.compare`` and sweeps can
    share across runs without touching disk.

    ``max_entries`` bounds the store LRU-style (a hit refreshes recency);
    ``None`` means unbounded, which is fine for a single compare but not
    for the per-flow overlay a week-long sweep keeps alive.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ReproError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    def get(self, digest: str) -> Optional[_MemoryEntry]:
        hit = self._entries.get(digest)
        if hit is None:
            return None
        self._entries.move_to_end(digest)
        meta, data = hit
        return _MemoryEntry(digest, meta, data)

    def put(self, digest: str, payload: bytes, meta: Dict[str, Any]) -> None:
        self._entries[digest] = (dict(meta), payload)
        self._entries.move_to_end(digest)
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return True


class StageArtifactStore:
    """Bounded, content-addressed on-disk cache of stage artifacts.

    Picklable (plain root/bound attributes), so a :class:`~repro.flow.Flow`
    carrying one ships cleanly to engine worker processes — every worker
    then shares the same artifact directory, and concurrent same-digest
    writes are idempotent by the atomic-replace discipline.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        if max_entries < 1:
            raise ReproError(f"max_entries must be >= 1, got {max_entries}")
        self.root = root or default_stage_dir()
        self.max_entries = max_entries

    # -- paths -----------------------------------------------------------
    def _payload_path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.pkl")

    def _meta_path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.json")

    # -- read side -------------------------------------------------------
    def get(self, digest: str) -> Optional[StoredStage]:
        """Look up ``digest``; a hit refreshes the entry's LRU recency."""
        payload_path = self._payload_path(digest)
        meta_path = self._meta_path(digest)
        try:
            with open(meta_path) as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not os.path.exists(payload_path):
            return None
        now = time.time()
        for path in (payload_path, meta_path):
            try:
                os.utime(path, (now, now))
            except OSError:  # raced an eviction; treat as a miss
                return None
        return StoredStage(digest=digest, meta=meta, path=payload_path)

    def entries(self) -> List[Dict[str, Any]]:
        """All sidecar records, least-recently-used first."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        records = []
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.root, name)
            try:
                with open(path) as handle:
                    meta = json.load(handle)
                mtime = os.path.getmtime(path)
            except (OSError, json.JSONDecodeError):
                continue
            meta["_mtime"] = mtime
            records.append(meta)
        records.sort(key=lambda rec: (rec["_mtime"], rec.get("digest", "")))
        return records

    def __len__(self) -> int:
        try:
            return sum(1 for n in os.listdir(self.root) if n.endswith(".pkl"))
        except OSError:
            return 0

    def __bool__(self) -> bool:
        # An empty store must not be falsy: ``store or default`` would
        # silently swap in the default root (same trap as ResultStore).
        return True

    # -- write side ------------------------------------------------------
    def put(self, digest: str, payload: bytes, meta: Dict[str, Any]) -> int:
        """Store one entry atomically, then evict down to ``max_entries``.

        ``payload`` comes pre-pickled (see :func:`encode_outputs`) so the
        same bytes can feed a memory overlay without re-pickling.  Returns
        the number of entries evicted.
        """
        os.makedirs(self.root, exist_ok=True)
        meta = dict(meta)
        meta.setdefault("schema", STAGE_STORE_SCHEMA)
        meta["digest"] = digest
        meta["created_s"] = time.time()
        meta["payload_bytes"] = len(payload)
        # Payload first, sidecar last: a reader that sees the sidecar is
        # guaranteed the payload already exists.
        self._atomic_write(self._payload_path(digest), payload)
        self._atomic_write(
            self._meta_path(digest),
            (json.dumps(meta, indent=2, sort_keys=True) + "\n").encode(),
        )
        return self.evict()

    def _atomic_write(self, path: str, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def evict(self) -> int:
        """Drop least-recently-used entries beyond ``max_entries``."""
        records = self.entries()
        excess = len(records) - self.max_entries
        if excess <= 0:
            return 0
        evicted = 0
        for record in records[:excess]:
            digest = record.get("digest")
            if not digest:
                continue
            for path in (self._payload_path(digest), self._meta_path(digest)):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            evicted += 1
        return evicted
