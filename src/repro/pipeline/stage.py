"""The Stage protocol of the staged pass pipeline.

A stage is one step of the flow DAG with an explicit data contract:

* ``inputs`` — the context keys it reads (``"design"``, ``"lowered"``,
  ``"gen"``, ...);
* ``outputs`` — the keys it (re)binds.  Outputs that alias mutated inputs
  are declared too: scheduling re-binds ``lowered`` because broadcast-aware
  scheduling edits loop bodies in place, and its stored artifact must
  bundle the edited design with the schedules that point into it;
* ``params`` — everything else that can change the result (clock period,
  seeds, config knobs, calibration identity);
* ``cacheable`` — stages with environment-dependent behavior (calibration
  resolution) opt out of artifact storage while still participating in
  digest chaining.

:meth:`Stage.input_digest` is the content identity used by the
:class:`~repro.pipeline.manager.PassManager`: stage name + version +
params + the digests of the consumed keys.  Because every output key
inherits the digest of the stage that produced it, a change propagates to
exactly the downstream stages that (transitively) consume it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Tuple

from repro.errors import ReproError
from repro.hashing import content_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flow import Flow
    from repro.opt import OptimizationConfig

#: Version tag of the stage digest recipe.
STAGE_DIGEST_SCHEMA = "repro-stage-digest/1"


class Stage:
    """One step of the flow pipeline.  Subclasses override the class
    attributes and :meth:`run` (plus :meth:`params` when parameterized)."""

    #: Stage name — also the observability span name.
    name: str = "stage"
    #: Bump when the stage's algorithm changes output-relevantly; stored
    #: artifacts from older versions then stop matching.
    version: int = 1
    #: Context keys consumed.
    inputs: Tuple[str, ...] = ()
    #: Context keys produced/re-bound.
    outputs: Tuple[str, ...] = ()
    #: Whether the manager may store/skip this stage.
    cacheable: bool = True

    def params(
        self, flow: "Flow", config: "OptimizationConfig", ctx: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Digest-relevant parameters (canonical-JSON-able values only)."""
        return {}

    def run(
        self, flow: "Flow", config: "OptimizationConfig", ctx: Dict[str, Any], span
    ) -> Dict[str, Any]:
        """Execute the stage; returns the output bindings."""
        raise NotImplementedError

    def content_digests(
        self,
        flow: "Flow",
        config: "OptimizationConfig",
        ctx: Dict[str, Any],
        outputs: Dict[str, Any],
    ) -> Dict[str, str]:
        """Content digests of (a subset of) this stage's outputs.

        Salsa-style early cutoff: when incremental recompilation is on, the
        manager chains each output key's digest from the *content* returned
        here instead of the stage's provenance digest.  A stage that re-ran
        (new inputs) but produced byte-identical outputs then leaves every
        downstream digest unchanged, so the whole downstream cone replays
        from the artifact store — e.g. a clock bump that changes no
        scheduling decision skips rtl-gen through timing.

        Only return a digest for a key when it covers **everything** any
        downstream stage reads from that output; keys omitted here fall
        back to provenance chaining (always sound, merely conservative).
        """
        return {}

    def input_digest(
        self, params: Dict[str, Any], key_digests: Dict[str, str]
    ) -> str:
        """The content identity of this stage execution."""
        try:
            inputs = {key: key_digests[key] for key in self.inputs}
        except KeyError as exc:
            raise ReproError(
                f"stage {self.name!r} consumes {exc.args[0]!r} but no "
                f"earlier stage produced it (have: {sorted(key_digests)})"
            ) from None
        return content_digest(
            {
                "schema": STAGE_DIGEST_SCHEMA,
                "stage": self.name,
                "version": self.version,
                "params": params,
                "inputs": inputs,
            }
        )
