"""Shared helpers for benchmark design construction."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.builder import DFGBuilder
from repro.ir.program import Design, Fifo, Kernel, Loop
from repro.ir.types import DataType
from repro.ir.values import Value


def add_context_kernel(
    design: Design,
    luts: int,
    ffs: int,
    brams: int = 0,
    dsps: int = 0,
    latency: int = 64,
    name: str = "surround",
) -> None:
    """Add a kernel representing the rest of the accelerator.

    The paper's benchmarks are full applications; the broadcast-critical
    loop under study shares the die with a large surrounding design, which
    matters both for Table-1 utilization numbers and for placement spread.
    The surround is modelled as one sub-module instance with the given area.
    """
    b = DFGBuilder(f"{name}_body")
    x = b.input("ctx_in", DataType("uint", 32))
    b.call(
        name,
        [x],
        DataType("uint", 32),
        latency=latency,
        name=f"{name}_inst",
    ).attrs["area"] = {"luts": luts, "ffs": ffs, "brams": brams, "dsps": dsps}
    kernel = Kernel(f"{name}_kernel")
    kernel.add_loop(Loop(f"{name}_loop", b.build(), trip_count=1, pipeline=False))
    design.add_kernel(kernel)


def external_stream(design: Design, name: str, elem: DataType, depth: int = 16) -> Fifo:
    """Declare an off-design streaming interface (AXI-Stream / HBM port)."""
    return design.add_fifo(Fifo(name, elem, depth=depth, external=True))


def log2_select_chain(b: DFGBuilder, x: Value, levels: int = 5) -> Value:
    """The Fig. 13 ``log2(dd)`` idiom: "a series of if-else".

    Each level compares against a power-of-two threshold and selects,
    producing a chain of cmp+select pairs like HLS emits for the C code.
    """
    result = b.const(0, x.type, name="log2_acc")
    for level in range(levels):
        threshold = b.const(1 << (levels - level), x.type, name=f"log2_t{level}")
        bigger = b.cmp("gt", x, threshold, name=f"log2_c{level}")
        inc = b.const(levels - level, x.type, name=f"log2_i{level}")
        result = b.select(bigger, inc, result, name=f"log2_s{level}")
    return result


def widen_inputs(
    b: DFGBuilder, stem: str, count: int, elem: DataType, loop_invariant: bool = False
) -> List[Value]:
    """Declare ``count`` scalar inputs ``stem0..stemN-1``."""
    return [
        b.input(f"{stem}{i}", elem, loop_invariant=loop_invariant)
        for i in range(count)
    ]
