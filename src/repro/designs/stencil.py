"""Jacobi stencil super-pipeline (SODA compiler output [2], ICCAD'18).

The SODA microarchitecture concatenates stencil iterations into one very
deep, fully-pipelined datapath on a 512-bit data bus.  The paper's Fig. 16
experiment scales the pipeline from 1 to 8 concatenated Jacobi iterations
(8 iterations ≈ 370 datapath stages) and shows stall-based flow control
collapses with depth while skid-buffer control holds Fmax.

Each iteration is modelled as one pipelined sub-module (compute window +
reduction) of ~46 stages and ~5% LUT / 4% BRAM / 10% DSP of a VU9P, per
the paper's §5.4 figures; iteration outputs are 512-bit values handed to
the next iteration.

Table 1: UltraScale+ (AWS F1), Orig 120 MHz → Opt 253 MHz (+111%).
"""

from __future__ import annotations

from repro.designs.common import external_stream
from repro.ir.builder import DFGBuilder
from repro.ir.program import Design, Kernel, Loop
from repro.ir.types import DataType

DEFAULT_ITERATIONS = 8
#: Datapath stages per concatenated Jacobi iteration (370/8 ≈ 46).
STAGES_PER_ITERATION = 46

u512 = DataType("uint", 512)


def build(iterations: int = DEFAULT_ITERATIONS, clock_mhz: float = 300.0) -> Design:
    """Construct the super-pipeline of ``iterations`` Jacobi iterations."""
    design = Design(
        "jacobi_stencil",
        device="aws-f1",
        meta={
            "clock_mhz": clock_mhz,
            "paper_ref": "[2] ICCAD'18 (SODA)",
            "broadcast_type": "Pipe. Ctrl.",
            "iterations": iterations,
        },
    )
    in_fifo = external_stream(design, "stencil_in", u512)
    out_fifo = external_stream(design, "stencil_out", u512)

    b = DFGBuilder("jacobi_body")
    val = b.fifo_read(in_fifo, name="line_in")
    for i in range(iterations):
        call = b.call(
            f"jacobi_iter{i}",
            [val],
            u512,
            latency=STAGES_PER_ITERATION,
            name=f"iter{i}_out",
        )
        # §5.4: each iteration ~5% LUT, 5% FF, 4% BRAM, 10% DSP of VU9P.
        call.attrs["area"] = {
            "luts": 59_000,
            "ffs": 118_000,
            "brams": 86,
            "dsps": 684,
        }
        # 512-bit data bus held at every internal stage (sizes the skid
        # buffer: 8 iterations -> ~371 x 512 bits ≈ 23 KB, as in §5.4).
        call.attrs["stage_width"] = 512
        val = call.result
    b.fifo_write(out_fifo, val)

    kernel = Kernel("soda_pipeline")
    kernel.add_loop(Loop("stream", b.build(), trip_count=None, pipeline=True))
    design.add_kernel(kernel)
    design.verify()
    return design
