"""Face detection (Rosetta benchmark [11], via [10] FPGA'17).

Viola-Jones style cascade: each candidate window position evaluates many
weak classifiers in parallel, all reading the same integral-image corner
values — loop-invariant data broadcast into unrolled compare/accumulate
chains.

Table 1: ZYNQ (ZC706), Orig 220 MHz → Opt 273 MHz (+24%).
"""

from __future__ import annotations

from repro.designs.common import add_context_kernel, external_stream
from repro.ir.builder import DFGBuilder
from repro.ir.program import Buffer, Design, Kernel, Loop
from repro.ir.types import i32

DEFAULT_CLASSIFIERS = 32


def build(classifiers: int = DEFAULT_CLASSIFIERS, clock_mhz: float = 300.0) -> Design:
    """Construct the cascade-stage design with ``classifiers`` parallel
    weak classifiers."""
    design = Design(
        "face_detection",
        device="zc706",
        meta={
            "clock_mhz": clock_mhz,
            "paper_ref": "[10] FPGA'17 / Rosetta [11]",
            "broadcast_type": "Data",
            "classifiers": classifiers,
        },
    )
    votes = design.add_buffer(
        Buffer("votes", i32, depth=max(classifiers, 2) * 8, partition=classifiers)
    )
    out_fifo = external_stream(design, "detections", i32)

    b = DFGBuilder("classifier_body")
    # Integral-image window corners: shared by every classifier.
    ii_a = b.input("ii_a", i32, loop_invariant=True)
    ii_b = b.input("ii_b", i32, loop_invariant=True)
    ii_c = b.input("ii_c", i32, loop_invariant=True)
    ii_d = b.input("ii_d", i32, loop_invariant=True)
    stage_thresh = b.input("stage_thresh", i32, loop_invariant=True)
    # Per-classifier parameters.
    w0 = b.input("w0", i32)
    w1 = b.input("w1", i32)
    node_thresh = b.input("node_thresh", i32)
    pass_val = b.input("pass_val", i32)
    fail_val = b.input("fail_val", i32)
    k_idx = b.input("k_idx", i32)

    # Haar feature: weighted box sums over the shared window.
    sum1 = b.sub(b.add(ii_a, ii_d, name="diag"), b.add(ii_b, ii_c, name="anti"), name="box")
    f0 = b.mul(sum1, w0, name="f0")
    f1 = b.mul(sum1, w1, name="f1")
    feat = b.add(f0, b.shr(f1, b.const(4, i32, name="c4")), name="feat")
    fired = b.cmp("gt", feat, node_thresh, name="fired")
    vote = b.select(fired, pass_val, fail_val, name="vote")
    strong = b.cmp("gt", vote, stage_thresh, name="strong")
    final = b.select(strong, vote, b.const(0, i32, name="zero"), name="final_vote")
    store = b.store(votes, k_idx, final)
    store.attrs["bank_group"] = "per_copy"
    b.fifo_write(out_fifo, final)

    kernel = Kernel("cascade_stage")
    kernel.add_loop(
        Loop(
            "weak_classifiers",
            b.build(),
            trip_count=classifiers,
            pipeline=True,
            unroll=classifiers,
        )
    )
    design.add_kernel(kernel)
    # Table 1 context: ~21% LUT, 14% FF, 16% BRAM, 9% DSP on Zynq-7045.
    add_context_kernel(
        design, luts=40_000, ffs=55_000, brams=80, dsps=70, name="facedet_rest"
    )
    design.verify()
    return design
