"""Pointer-chasing over a heap buffer (HeteroRefactor [5] context, §3.1).

"the HLS support for dynamic data structures also requires large buffers,
where their accesses degrade the maximum frequency."

A linked-list traversal kernel: each step loads a node's payload and next
pointer from one large heap array.  Unlike the streaming designs, the
*load* return network is the broadcast here — every access may hit any of
the heap's hundreds of BRAM banks, and the loop-carried pointer dependence
makes the access latency throughput-critical (the II analysis reports it).

Supplementary benchmark, not part of Table 1.
"""

from __future__ import annotations

from repro.designs.common import add_context_kernel, external_stream
from repro.ir.builder import DFGBuilder
from repro.ir.program import Buffer, Design, Kernel, Loop
from repro.ir.types import i32

DEFAULT_HEAP_WORDS = 1 << 19  # 512K nodes -> hundreds of BRAM36


def build(heap_words: int = DEFAULT_HEAP_WORDS, clock_mhz: float = 300.0) -> Design:
    """Construct the heap-traversal kernel."""
    design = Design(
        "dynamic_struct",
        device="aws-f1",
        meta={
            "clock_mhz": clock_mhz,
            "paper_ref": "[5] ICSE'20 (dynamic data structures, §3.1)",
            "broadcast_type": "Data (mem)",
            "heap_words": heap_words,
        },
    )
    out_fifo = external_stream(design, "visited", i32)
    heap = design.add_buffer(Buffer("heap", i32, depth=heap_words))

    b = DFGBuilder("walk_body")
    cursor = b.input("cursor", i32)
    payload = b.load(heap, cursor, name="payload")
    next_ptr = b.load(heap, b.add(cursor, b.const(1, i32)), name="next_ptr")
    b.fifo_write(out_fifo, b.xor(payload, next_ptr, name="digest"))

    kernel = design.add_kernel(Kernel("walker"))
    kernel.add_loop(Loop("walk", b.build(), trip_count=4096, pipeline=True))
    add_context_kernel(design, luts=50_000, ffs=70_000, brams=32, dsps=0, name="ds_rest")
    design.verify()
    return design
