"""Wide vector arithmetic: ``(a · b) * c`` (Table 2 / Fig. 17).

A dot product of two W-wide float vectors feeds a scalar-times-vector
multiply.  HLS infers a reduction tree for ``a · b``; its output is a
single 32-bit scalar while the pipeline's input and output boundaries carry
``32·W`` bits — the "spindle" width profile of Fig. 17 with a narrow waist
where only the scalar crosses.  That waist is exactly where the min-area
DP cuts the skid buffer: the paper's 32-wide example costs 7,968 buffered
bits split vs 63,488 end-only.

Floating-point cores are pipelined (7-stage latency, standard for Vivado
f32 add/mul), expressed as design-requested ``extra_latency``.

Table 1 ("Vector Arithmetic", W=512): Orig 195 MHz → Opt 301 MHz (+54%).
Table 2 reports the same design under stall / skid / min-area skid.
"""

from __future__ import annotations

import math
from typing import List

from repro.designs.common import add_context_kernel, external_stream
from repro.ir.builder import DFGBuilder
from repro.ir.program import Design, Kernel, Loop
from repro.ir.types import f32
from repro.ir.values import Value

DEFAULT_WIDTH = 512
#: Vivado-style pipelined float core latency (issue + 6 extra stages).
FLOAT_EXTRA_STAGES = 6


def build(width: int = DEFAULT_WIDTH, clock_mhz: float = 300.0) -> Design:
    """Construct the W-wide ``(a·b)*c`` pipeline."""
    if width < 2 or width & (width - 1):
        raise ValueError("vector width must be a power of two >= 2")
    design = Design(
        "vector_arith",
        device="aws-f1",
        meta={
            "clock_mhz": clock_mhz,
            "paper_ref": "§5.4 synthetic",
            "broadcast_type": "Pipe. Ctrl. & Sync.",
            "width": width,
        },
    )
    c_fifo = external_stream(design, "c_stream", f32)
    out_fifo = external_stream(design, "out_stream", f32)

    b = DFGBuilder("vecprod_body")

    def fmul(x: Value, y: Value, name: str) -> Value:
        v = b.mul(x, y, name=name)
        v.producer.attrs["extra_latency"] = FLOAT_EXTRA_STAGES
        return v

    def fadd(x: Value, y: Value, name: str) -> Value:
        v = b.add(x, y, name=name)
        v.producer.attrs["extra_latency"] = FLOAT_EXTRA_STAGES
        return v

    a = [b.input(f"a{i}", f32) for i in range(width)]
    bb = [b.input(f"b{i}", f32) for i in range(width)]
    products = [fmul(a[i], bb[i], f"p{i}") for i in range(width)]
    # Balanced reduction tree with pipelined adders.
    level: List[Value] = products
    lvl = 0
    while len(level) > 1:
        nxt: List[Value] = []
        for i in range(0, len(level), 2):
            nxt.append(fadd(level[i], level[i + 1], f"r{lvl}_{i // 2}"))
        level = nxt
        lvl += 1
    dot = level[0]

    # The c vector arrives aligned with the scalar (SODA-style alignment):
    # reads are issued at the waist stage rather than buffered from cycle 0.
    latency = FLOAT_EXTRA_STAGES + 1
    waist_cycle = latency * (1 + int(math.log2(width)))
    for i in range(width):
        c_i = b.fifo_read(c_fifo, name=f"c{i}")
        c_i.producer.attrs["min_cycle"] = waist_cycle
        out_i = fmul(dot, c_i, f"out{i}")
        b.fifo_write(out_fifo, out_i)

    kernel = Kernel("vecprod")
    kernel.add_loop(Loop("stream", b.build(), trip_count=None, pipeline=True))
    design.add_kernel(kernel)
    # Table 1 context: ~17% LUT, 16% FF, small BRAM, 60% DSP total on VU9P.
    add_context_kernel(
        design, luts=90_000, ffs=160_000, brams=8, dsps=1_500, name="vec_rest"
    )
    design.verify()
    return design


def width_profile_reference(width: int = 32) -> List[int]:
    """Analytic stage-width shape for documentation/tests (Fig. 17)."""
    latency = FLOAT_EXTRA_STAGES + 1
    levels = int(math.log2(width))
    profile: List[int] = []
    alive = width
    profile.extend([alive * 32] * latency)  # products in flight
    for _ in range(levels):
        alive //= 2
        profile.extend([alive * 32] * latency)
    profile.extend([width * 32] * latency)  # scaled outputs in flight
    return profile
