"""LSTM inference kernel (from [9] CLINK, ISLPED'18).

The paper adapts the ``HLS_N-Node`` part, switches to floating point and
sets N = 256: each gate evaluation multiplies the same input activation by
256 weights concurrently — a float-multiply data broadcast.  This is the
case where Vivado HLS's prediction is *conservative* (Fig. 9 right panel),
so naive max-based calibration without measurement would over-pipeline; the
calibrated model uses the measured curve instead.

Table 1: UltraScale+ (AWS F1), Orig 285 MHz → Opt 325 MHz (+14%).
"""

from __future__ import annotations

from repro.designs.common import add_context_kernel, external_stream
from repro.ir.builder import DFGBuilder
from repro.ir.program import Design, Kernel, Loop
from repro.ir.types import f32, i32

DEFAULT_NODES = 256


def build(nodes: int = DEFAULT_NODES, clock_mhz: float = 333.0) -> Design:
    """Construct the N-node LSTM gate evaluation design."""
    design = Design(
        "lstm_network",
        device="aws-f1",
        meta={
            "clock_mhz": clock_mhz,
            "paper_ref": "[9] ISLPED'18",
            "broadcast_type": "Data",
            "nodes": nodes,
        },
    )
    out_fifo = external_stream(design, "gate_out", f32)

    b = DFGBuilder("node_body")
    # The recurrent activation broadcast to every node's MAC.
    x_t = b.input("x_t", f32, loop_invariant=True)
    h_prev = b.input("h_prev", f32, loop_invariant=True)
    w_x = b.input("w_x", f32)  # per-node weights
    w_h = b.input("w_h", f32)
    bias = b.input("bias", f32)

    px = b.mul(x_t, w_x, name="px")
    ph = b.mul(h_prev, w_h, name="ph")
    s = b.add(px, ph, name="s")
    pre = b.add(s, bias, name="pre")
    # Piecewise sigmoid approximation (cmp + select, as HLS lowers it).
    hi = b.const(4.0, f32, name="sig_hi")
    lo = b.const(-4.0, f32, name="sig_lo")
    sat_hi = b.cmp("gt", pre, hi)
    sat_lo = b.cmp("lt", pre, lo)
    onec = b.const(1.0, f32, name="one")
    zeroc = b.const(0.0, f32, name="zero")
    quarter = b.const(0.25, f32, name="quarter")
    halfc = b.const(0.5, f32, name="half")
    lin = b.add(b.mul(pre, quarter), halfc, name="lin")
    act = b.select(sat_hi, onec, b.select(sat_lo, zeroc, lin), name="act")
    b.fifo_write(out_fifo, act)

    kernel = Kernel("lstm_gate")
    kernel.add_loop(
        Loop("nodes", b.build(), trip_count=nodes, pipeline=True, unroll=nodes)
    )
    design.add_kernel(kernel)
    # Table 1 context: ~8% LUT, 6% FF, 2% BRAM, 14% DSP on VU9P.
    add_context_kernel(
        design, luts=60_000, ffs=90_000, brams=40, dsps=300, name="lstm_rest"
    )
    design.verify()
    return design
