"""The paper's nine benchmark designs (§5.1), reconstructed in the IR.

Each module exposes ``build(**params) -> Design`` with defaults matching
the paper's configuration, and the registry maps Table-1 row names to
builders.
"""

from repro.designs.registry import DESIGN_BUILDERS, build_design, design_names

__all__ = ["DESIGN_BUILDERS", "build_design", "design_names"]
