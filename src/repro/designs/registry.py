"""Registry mapping Table-1 row names to design builders."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ReproError
from repro.ir.program import Design
from repro.designs import (
    double_buffer,
    dynamic_struct,
    face_detection,
    genome,
    hbm_stencil,
    lstm,
    matmul,
    pattern_matching,
    stencil,
    stream_buffer,
    vec_stream,
    vector_arith,
)

#: Row order matches Table 1 of the paper.
DESIGN_BUILDERS: Dict[str, Callable[..., Design]] = {
    "genome": genome.build,
    "lstm": lstm.build,
    "face_detection": face_detection.build,
    "matmul": matmul.build,
    "stream_buffer": stream_buffer.build,
    "stencil": stencil.build,
    "vector_arith": vector_arith.build,
    "hbm_stencil": hbm_stencil.build,
    "pattern_matching": pattern_matching.build,
}

#: Supplementary designs from contexts the paper's §3.1 motivates, beyond
#: the Table 1 suite (double buffering [4], dynamic data structures [5]).
EXTRA_BUILDERS: Dict[str, Callable[..., Design]] = {
    "double_buffer": double_buffer.build,
    "dynamic_struct": dynamic_struct.build,
    "vec_stream": vec_stream.build,
}


def design_names(include_extra: bool = False) -> List[str]:
    names = list(DESIGN_BUILDERS)
    if include_extra:
        names.extend(EXTRA_BUILDERS)
    return names


def build_design(name: str, **params) -> Design:
    """Build a benchmark design by registry name (extras included)."""
    builder = DESIGN_BUILDERS.get(name) or EXTRA_BUILDERS.get(name)
    if builder is None:
        raise ReproError(
            f"unknown design {name!r}; known: {design_names(include_extra=True)}"
        )
    return builder(**params)
