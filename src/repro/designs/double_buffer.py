"""Double-buffered PE array (§3.1's motivating context, from [4]).

"the double-buffer technique requires distributing data to the local
buffers of multiple parallel processing elements (PEs), which tend to be
inadequately pipelined."

Two phases alternate over a ping and a pong buffer pair: while the PEs
compute out of one bank set, the loader streams the next tile into the
other.  The loader's store is the broadcast under study: one stream
register fanning out across every PE's local bank — with *twice* the banks
of a single-buffer design, because both ping and pong copies exist.

Not part of Table 1; included as a supplementary benchmark exercising the
same §4.1 memory-broadcast machinery at a different topology.
"""

from __future__ import annotations

from repro.designs.common import add_context_kernel, external_stream
from repro.ir.builder import DFGBuilder
from repro.ir.program import Buffer, Design, Kernel, Loop
from repro.ir.types import i32

DEFAULT_PES = 32
DEFAULT_TILE = 2048


def build(
    pes: int = DEFAULT_PES,
    tile_depth: int = DEFAULT_TILE,
    clock_mhz: float = 300.0,
) -> Design:
    """Construct the double-buffered loader + PE array."""
    design = Design(
        "double_buffer",
        device="aws-f1",
        meta={
            "clock_mhz": clock_mhz,
            "paper_ref": "[4] DAC'18 (double-buffer context, §3.1)",
            "broadcast_type": "Data (mem)",
            "pes": pes,
            "tile_depth": tile_depth,
        },
    )
    in_fifo = external_stream(design, "tile_in", i32)
    out_fifo = external_stream(design, "results", i32)
    ping = design.add_buffer(Buffer("ping", i32, depth=pes * tile_depth, partition=pes))
    pong = design.add_buffer(Buffer("pong", i32, depth=pes * tile_depth, partition=pes))

    # Loader: one element per cycle from the stream into every PE's slice
    # of the ping buffer (the broadcast: stream register -> all banks).
    lb = DFGBuilder("load_body")
    idx = lb.input("i", i32)
    lb.store(ping, idx, lb.fifo_read(in_fifo))

    # Compute: each PE reads its pong slice, accumulates into its own
    # results slot (per-PE banks keep II = 1; funnelling every PE into one
    # FIFO would serialize at the FIFO port).
    results = design.add_buffer(Buffer("results", i32, depth=max(pes, 2) * 8, partition=pes))
    cb = DFGBuilder("compute_body")
    addr = cb.input("a", i32)
    acc = cb.input("acc", i32)
    slot = cb.input("slot", i32)
    ld = cb.load(pong, addr, name="elem")
    ld.producer.attrs["bank_group"] = "per_copy"
    nxt = cb.add(acc, ld, name="acc_next")
    st = cb.store(results, slot, nxt)
    st.attrs["bank_group"] = "per_copy"

    # Drain: stream the per-PE results out.
    db = DFGBuilder("drain_body")
    didx = db.input("d", i32)
    db.fifo_write(out_fifo, db.load(results, didx, name="res"))

    kernel = design.add_kernel(Kernel("double_buffer_kernel"))
    kernel.add_loop(
        Loop("load_tile", lb.build(), trip_count=pes * tile_depth, pipeline=True)
    )
    kernel.add_loop(
        Loop(
            "compute_tile",
            cb.build(),
            trip_count=tile_depth,
            pipeline=True,
            unroll=pes,
        )
    )
    kernel.add_loop(Loop("drain", db.build(), trip_count=pes, pipeline=True))
    add_context_kernel(design, luts=80_000, ffs=120_000, brams=64, dsps=600, name="db_rest")
    design.verify()
    return design
