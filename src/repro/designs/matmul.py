"""Matrix multiply with a composable PE array (adapted from [4] DAC'18).

The paper "further increase[s] the parallelism of the matrix multiplication
design to expose the problem": a streamed A-element is broadcast to every
PE column (data broadcast) while the whole PE pipeline hangs off FIFO
empty/full flow control (pipeline-control broadcast) — the first
"Pipe. Ctrl. & Data" row of Table 1.

Table 1: UltraScale+ (AWS F1), Orig 202 MHz → Opt 299 MHz (+48%).
"""

from __future__ import annotations

from repro.designs.common import add_context_kernel, external_stream
from repro.ir.builder import DFGBuilder
from repro.ir.program import Buffer, Design, Kernel, Loop
from repro.ir.types import i32

DEFAULT_PES = 64


def build(pes: int = DEFAULT_PES, clock_mhz: float = 300.0) -> Design:
    """Construct the PE-array matmul with ``pes`` parallel MACs."""
    design = Design(
        "matrix_multiply",
        device="aws-f1",
        meta={
            "clock_mhz": clock_mhz,
            "paper_ref": "[4] DAC'18",
            "broadcast_type": "Pipe. Ctrl. & Data",
            "pes": pes,
        },
    )
    a_fifo = external_stream(design, "a_stream", i32)
    c_fifo = external_stream(design, "c_stream", i32)
    b_tiles = design.add_buffer(
        Buffer("b_tiles", i32, depth=max(pes, 2) * 512, partition=pes)
    )
    acc = design.add_buffer(
        Buffer("c_acc", i32, depth=max(pes, 2) * 64, partition=pes)
    )

    b = DFGBuilder("pe_body")
    # One A element per cycle, read once and broadcast to every PE.
    a_elem = b.fifo_read(a_fifo, name="a_elem", unroll_shared=True)
    b_addr = b.input("b_addr", i32)
    c_addr = b.input("c_addr", i32)
    b_elem = b.load(b_tiles, b_addr, name="b_elem")
    prev = b.load(acc, c_addr, name="prev_acc")
    prod = b.mul(a_elem, b_elem, name="prod")
    nxt = b.add(prev, prod, name="next_acc")
    st = b.store(acc, c_addr, nxt)
    st.attrs["bank_group"] = "per_copy"
    b.fifo_write(c_fifo, nxt)

    # Mark the per-PE loads as partition-local so the broadcast is the A
    # element, not the B/accumulator addressing.
    for op in b.dfg.ops:
        if op.opcode.value in ("load",):
            op.attrs["bank_group"] = "per_copy"

    kernel = Kernel("pe_array")
    kernel.add_loop(
        Loop("pe_cols", b.build(), trip_count=pes, pipeline=True, unroll=pes)
    )
    design.add_kernel(kernel)
    # Table 1 context: ~23% LUT, 24% FF, 25% BRAM, 74% DSP on VU9P.
    add_context_kernel(
        design, luts=240_000, ffs=500_000, brams=420, dsps=4_900, name="matmul_rest"
    )
    design.verify()
    return design
