"""Split/merge streaming pipeline with parallel internal channels.

A supplementary benchmark shaped after the multi-channel process networks
of Alias's PPN work and the vectorizable streams of de Fine Licht et al.:
a splitter kernel fans one input stream into two parallel internal FIFOs,
a merger kernel recombines them, and an independent table kernel scales a
ROM into an output buffer.  Every transform in
:mod:`repro.ir.transforms` has a site here:

* ``ch_hi``/``ch_lo`` are single-producer single-consumer internal integer
  channels — widening (lane packing) and channel reuse (merging) apply;
* ``scale_table`` is a pure affine buffer loop — tiling applies;
* the design is built non-dataflow — streaming conversion applies;
* every counted loop accepts unroll overrides.

Not part of Table 1; it exists so transform equivalence and the
design-space explorer have a design where the whole pass library is live.
"""

from __future__ import annotations

from repro.designs.common import add_context_kernel, external_stream
from repro.ir.builder import DFGBuilder
from repro.ir.program import Buffer, Design, Fifo, Kernel, Loop
from repro.ir.types import i32

DEFAULT_DEPTH = 256
DEFAULT_TABLE = 64


def build(
    depth: int = DEFAULT_DEPTH,
    table: int = DEFAULT_TABLE,
    clock_mhz: float = 300.0,
) -> Design:
    """Construct the split/merge pipeline + table scaler."""
    design = Design(
        "vec_stream",
        device="aws-f1",
        meta={
            "clock_mhz": clock_mhz,
            "paper_ref": "supplementary (PPN channels / vectorizable streams)",
            "broadcast_type": "Sync (FIFO)",
            "depth": depth,
            "table": table,
        },
    )
    in_fifo = external_stream(design, "vin", i32)
    out_fifo = external_stream(design, "vout", i32)
    ch_hi = design.add_fifo(Fifo("ch_hi", i32, depth=8))
    ch_lo = design.add_fifo(Fifo("ch_lo", i32, depth=8))
    rom = design.add_buffer(Buffer("coeff_rom", i32, depth=table))
    acc = design.add_buffer(Buffer("acc_out", i32, depth=table))

    # Splitter: one input element fans into two derived channel elements.
    sb = DFGBuilder("split_body")
    x = sb.fifo_read(in_fifo, name="x")
    sb.fifo_write(ch_hi, sb.add(x, sb.const(3, i32, name="bias"), name="hi"))
    sb.fifo_write(ch_lo, sb.mul(x, sb.const(5, i32, name="gain5"), name="lo"))

    # Merger: recombine the channels onto the output stream.
    mb = DFGBuilder("merge_body")
    a = mb.fifo_read(ch_hi, name="a")
    b = mb.fifo_read(ch_lo, name="b")
    mb.fifo_write(out_fifo, mb.add(a, b, name="sum"))

    # Table scaler: pure affine load/store loop, independent of the streams.
    tb = DFGBuilder("table_body")
    idx = tb.input("i", i32)
    gain = tb.input("gain", i32, loop_invariant=True)
    coeff = tb.load(rom, idx, name="coeff")
    tb.store(acc, idx, tb.mul(coeff, gain, name="scaled"))

    splitter = design.add_kernel(Kernel("splitter"))
    splitter.add_loop(Loop("split", sb.build(), trip_count=depth, pipeline=True))
    merger = design.add_kernel(Kernel("merger"))
    merger.add_loop(Loop("merge", mb.build(), trip_count=depth, pipeline=True))
    scaler = design.add_kernel(Kernel("scaler"))
    scaler.add_loop(Loop("scale_table", tb.build(), trip_count=table, pipeline=True))
    add_context_kernel(
        design, luts=40_000, ffs=60_000, brams=16, dsps=120, name="vs_rest"
    )
    design.verify()
    return design
