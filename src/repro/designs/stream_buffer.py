"""Stream buffer (Fig. 18): the paper's own synthetic combined case.

Two loops: the first reads a stream into a very large buffer (95% of the
device's BRAM in Table 1), the second reads the buffer back out.  The
write loop suffers *both* broadcasts at once: the source data register fans
out to every BRAM unit (data/memory broadcast) and the stall-based enable
fans out to every BRAM write port (pipeline-control broadcast).  Fig. 19
sweeps the buffer size and shows both §4.1 and §4.3 are needed.

Table 1: UltraScale+ (AWS F1), Orig 154 MHz → Opt 281 MHz (+82%).
"""

from __future__ import annotations

from repro.designs.common import external_stream
from repro.ir.builder import DFGBuilder
from repro.ir.program import Buffer, Design, Kernel, Loop
from repro.ir.types import i32, u64

#: Depth giving ~2048 BRAM36 (95% of VU9P's 2160) with 64-bit elements.
DEFAULT_DEPTH = 1_179_648


def build(depth: int = DEFAULT_DEPTH, clock_mhz: float = 300.0) -> Design:
    """Construct the two-loop stream buffer with ``depth`` u64 elements."""
    design = Design(
        "stream_buffer",
        device="aws-f1",
        meta={
            "clock_mhz": clock_mhz,
            "paper_ref": "Fig. 18 (synthetic)",
            "broadcast_type": "Pipe. Ctrl. & Data",
            "depth": depth,
        },
    )
    in_fifo = external_stream(design, "in_fifo", u64)
    out_fifo = external_stream(design, "out_fifo", u64)
    big = design.add_buffer(Buffer("buffer", u64, depth=depth))

    # loop1: in_fifo.read(&buffer[i])
    wb = DFGBuilder("write_body")
    w_idx = wb.input("i", i32)
    data = wb.fifo_read(in_fifo, name="data")
    wb.store(big, w_idx, data)

    # loop2: out_fifo.write(buffer[j])
    rb = DFGBuilder("read_body")
    r_idx = rb.input("j", i32)
    out = rb.load(big, r_idx, name="out")
    rb.fifo_write(out_fifo, out)

    kernel = Kernel("stream_kernel")
    kernel.add_loop(Loop("loop1", wb.build(), trip_count=depth, pipeline=True))
    kernel.add_loop(Loop("loop2", rb.build(), trip_count=depth, pipeline=True))
    design.add_kernel(kernel)
    design.verify()
    return design
