"""Pattern matching accelerator (adapted from [4] DAC'18).

Two broadcast classes at once ("Data & Sync." in Table 1, ablated in
Table 3):

* **data** — the current text character is broadcast to an unrolled bank of
  pattern comparators (Fig. 1-style loop unrolling);
* **sync** — a farm of parallel matcher PEs with statically-known latencies
  is synchronized by a done-reduce / start-broadcast structure (Fig. 6b),
  which §4.2 prunes down to the longest-latency PE's done register
  (Fig. 10b).

Table 1: Virtex-7 (Alpha-Data), Orig 187 MHz → Opt 278 MHz (+49%).
Table 3: Orig 187 / Opt-Data 208 / Opt-Data&Ctrl 278 MHz.
"""

from __future__ import annotations

from repro.designs.common import add_context_kernel, external_stream
from repro.ir.builder import DFGBuilder
from repro.ir.program import Buffer, Design, Kernel, Loop
from repro.ir.types import i32

DEFAULT_COMPARATORS = 128
DEFAULT_PES = 24


def build(
    comparators: int = DEFAULT_COMPARATORS,
    pes: int = DEFAULT_PES,
    dynamic_latency: bool = False,
    clock_mhz: float = 300.0,
) -> Design:
    """Construct the matcher.

    ``dynamic_latency`` marks one PE as input-dependent, which makes §4.2
    refuse to prune (the paper's documented limitation).
    """
    design = Design(
        "pattern_matching",
        device="virtex-7",
        meta={
            "clock_mhz": clock_mhz,
            "paper_ref": "[4] DAC'18",
            "broadcast_type": "Data & Sync.",
            "comparators": comparators,
            "pes": pes,
        },
    )
    text_fifo = external_stream(design, "text_in", i32)
    match_fifo = external_stream(design, "matches", i32)
    hits = design.add_buffer(
        Buffer("hits", i32, depth=max(comparators, 2) * 8, partition=comparators)
    )

    # Stage 1: unrolled comparator bank (data broadcast of the text char).
    cb = DFGBuilder("compare_body")
    ch = cb.fifo_read(text_fifo, name="ch", unroll_shared=True)
    pat = cb.input("pat", i32)
    pat_mask = cb.input("pat_mask", i32)
    state = cb.input("state", i32)
    k_idx = cb.input("k_idx", i32)
    diff = cb.sub(ch, pat, name="diff")
    masked = cb.and_(diff, pat_mask, name="masked")
    hit = cb.cmp("eq", masked, cb.const(0, i32, name="zero"))
    nstate = cb.select(
        hit,
        cb.add(state, cb.const(1, i32, name="one"), name="advance"),
        cb.const(0, i32, name="reset"),
        name="nstate",
    )
    st = cb.store(hits, k_idx, nstate)
    st.attrs["bank_group"] = "per_copy"

    compare_kernel = Kernel("comparator_bank")
    compare_kernel.add_loop(
        Loop(
            "compare",
            cb.build(),
            trip_count=comparators,
            pipeline=True,
            unroll=comparators,
        )
    )
    design.add_kernel(compare_kernel)

    # Stage 2: parallel matcher PEs with FSM synchronization (Fig. 6b).
    pb = DFGBuilder("pe_farm_body")
    seed = pb.input("window", i32)
    results = []
    for i in range(pes):
        call = pb.call(
            f"PE_{i}",
            [seed],
            i32,
            latency=20 + (i * 5) % 17,
            dynamic_latency=dynamic_latency and i == 0,
            name=f"pe{i}_out",
        )
        call.attrs["area"] = {"luts": 2_400, "ffs": 2_000, "brams": 2, "dsps": 0}
        results.append(call.result)
    merged = pb.reduce(results, "or")
    pb.fifo_write(match_fifo, merged)

    farm_kernel = Kernel("pe_farm")
    farm_kernel.add_loop(Loop("farm", pb.build(), trip_count=4096, pipeline=False))
    design.add_kernel(farm_kernel)

    # Table 1 context: ~17% LUT, 5% FF, 9% BRAM on the 690T.
    add_context_kernel(
        design, luts=45_000, ffs=25_000, brams=90, dsps=0, name="patmatch_rest"
    )
    design.verify()
    return design
