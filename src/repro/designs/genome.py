"""Genome sequencing accelerator inner loop (Fig. 13, from [1] FCCM'19).

The minimap-style chaining score kernel: a pipelined loop fully unrolled by
``BACK_SEARCH_COUNT`` (64 in the paper), comparing the current anchor
``curr`` against 64 predecessors ``prev[j]``.  Every field of ``curr`` and
every threshold constant is loop-invariant and broadcasts to all 64 copies
— the paper's flagship data-broadcast case (sub predicted 0.78 ns, actual
~2.08 ns at broadcast factor 64).

Table 1: UltraScale+ (AWS F1), Orig 264 MHz → Opt 341 MHz (+29%).
"""

from __future__ import annotations

from repro.designs.common import add_context_kernel, log2_select_chain
from repro.ir.builder import DFGBuilder
from repro.ir.program import Buffer, Design, Kernel, Loop
from repro.ir.types import i32

#: The paper adjusts broadcast factor via BACK_SEARCH_COUNT; 64 is default.
DEFAULT_UNROLL = 64


def build(unroll: int = DEFAULT_UNROLL, clock_mhz: float = 333.0) -> Design:
    """Construct the genome design with the given back-search count."""
    design = Design(
        "genome_sequencing",
        device="aws-f1",
        meta={
            "clock_mhz": clock_mhz,
            "paper_ref": "[1] FCCM'19",
            "broadcast_type": "Data",
            "unroll": unroll,
        },
    )
    scores = design.add_buffer(
        Buffer("dp_score", i32, depth=max(unroll, 2) * 16, partition=unroll)
    )

    b = DFGBuilder("chain_body")
    # Broadcast sources: loop-invariant anchor fields and thresholds (blue
    # in Fig. 13).
    curr_x = b.input("curr_x", i32, loop_invariant=True)
    curr_y = b.input("curr_y", i32, loop_invariant=True)
    curr_tag = b.input("curr_tag", i32, loop_invariant=True)
    avg_qspan = b.input("avg_qspan", i32, loop_invariant=True)
    max_dist_x = b.input("max_dist_x", i32, loop_invariant=True)
    max_dist_y = b.input("max_dist_y", i32, loop_invariant=True)
    bw = b.input("bw", i32, loop_invariant=True)
    neg_inf = b.const(-(2 ** 30), i32, name="NEG_INF_SCORE")
    zero = b.const(0, i32, name="zero")
    one = b.const(1, i32, name="one")

    # Per-iteration inputs: prev[j] fields (distinct per unrolled copy).
    prev_x = b.input("prev_x", i32)
    prev_y = b.input("prev_y", i32)
    prev_w = b.input("prev_w", i32)
    prev_tag = b.input("prev_tag", i32)
    j_idx = b.input("j_idx", i32)

    # Fig. 13 lines 6-13.
    dist_x = b.sub(prev_x, curr_x, name="dist_x")
    dist_y = b.sub(prev_y, curr_y, name="dist_y")
    dd = b.abs_diff(dist_x, dist_y, name="dd")
    min_d = b.min_(dist_y, dist_x, name="min_d")
    log_dd = log2_select_chain(b, dd)
    temp = b.min_(min_d, prev_w, name="temp")
    # dp_score[j] = temp - dd * avg_qspan - (log_dd >> 1)
    penalty = b.mul(dd, avg_qspan, name="penalty")
    half_log = b.shr(log_dd, one, name="half_log")
    score0 = b.sub(temp, penalty, name="score0")
    score = b.sub(score0, half_log, name="score")

    # Fig. 13 lines 15-18: the disqualification predicate.
    c1 = b.cmp("eq", dist_x, zero)
    c2 = b.cmp("gt", dist_x, max_dist_x)
    c3 = b.cmp("gt", dist_y, max_dist_y)
    c4 = b.cmp("le", dist_y, zero)
    c5 = b.cmp("gt", dd, bw)
    c6 = b.cmp("ne", curr_tag, prev_tag)
    bad = b.or_(b.or_(b.or_(c1, c2), b.or_(c3, c4)), b.or_(c5, c6), name="bad")
    final = b.select(bad, neg_inf, score, name="dp_score_j")

    store = b.store(scores, j_idx, final)
    store.attrs["bank_group"] = "per_copy"

    kernel = Kernel("chain_kernel")
    kernel.add_loop(
        Loop(
            "back_search",
            b.build(),
            trip_count=unroll,
            pipeline=True,
            unroll=unroll,
        )
    )
    design.add_kernel(kernel)
    # Table 1 context: ~22% LUT, ~11% FF, 6% BRAM, 8% DSP on VU9P.
    add_context_kernel(
        design, luts=230_000, ffs=230_000, brams=120, dsps=520, name="genome_rest"
    )
    design.verify()
    return design
