"""HBM-based Jacobi stencil front-end (SODA [2] + [12], on Alveo U50).

§5.3: "the 512-bit data from each HBM port is scattered into 8 64-bit
FIFOs ... the SODA compiler expresses the 28 independent flows together in
a single loop, forming a sync broadcast pattern similar to Figure 6a. Thus
there is a synchronization among all HBM ports and all destination FIFOs.
We prune the unnecessary sync by splitting the independent parts into
different loops. This boosts the frequency from 191 MHz to 324 MHz."

The model: one ``while(1)`` loop whose body reads all 28 external HBM port
FIFOs and writes 28×8 internal FIFOs.  Its flow graph has 28 isolated
sub-graphs, which §4.2's :func:`~repro.sync.pruning.split_independent_flows`
separates into 28 loops with private controllers.

Table 1: UltraScale+ (Alveo U50), Orig 191 MHz → Opt 324 MHz (+70%).
"""

from __future__ import annotations

from repro.designs.common import add_context_kernel, external_stream
from repro.ir.builder import DFGBuilder
from repro.ir.program import Design, Fifo, Kernel, Loop
from repro.ir.types import DataType, u64

DEFAULT_PORTS = 28
SLICES_PER_PORT = 8

u512 = DataType("uint", 512)


def build(ports: int = DEFAULT_PORTS, clock_mhz: float = 300.0) -> Design:
    """Construct the ``ports``-port HBM scatter stage."""
    design = Design(
        "hbm_stencil",
        device="alveo-u50",
        meta={
            "clock_mhz": clock_mhz,
            "paper_ref": "[2] + [12], §5.3",
            "broadcast_type": "Pipe. Ctrl. & Sync.",
            "ports": ports,
        },
    )
    b = DFGBuilder("scatter_body")
    for p in range(ports):
        hbm = external_stream(design, f"hbm{p}", u512, depth=32)
        raw = b.fifo_read(hbm, name=f"raw{p}")
        for s in range(SLICES_PER_PORT):
            dest = design.add_fifo(Fifo(f"lane{p}_{s}", u64, depth=8))
            slice64 = b.slice_(raw, 64 * s, u64, name=f"s{p}_{s}")
            b.fifo_write(dest, slice64)

    kernel = Kernel("hbm_scatter")
    kernel.add_loop(Loop("scatter", b.build(), trip_count=None, pipeline=True))
    design.add_kernel(kernel)
    # Table 1 context: downstream stencil compute, ~21% LUT etc. on U50.
    add_context_kernel(
        design, luts=140_000, ffs=330_000, brams=380, dsps=2_200, name="hbm_rest"
    )
    design.verify()
    return design
