"""ALAP scheduling and operation mobility (slack) analysis.

Mobility — how many cycles an op can slide without stretching the
pipeline — tells the broadcast-aware pass which chain splits are free:
an op with positive mobility can absorb an inserted register stage
without growing the depth at all.  It is also a useful diagnostic
("this broadcast consumer is pinned; splitting here costs a stage").

The ALAP pass is the exact mirror of the forward chaining scheduler: it
walks the graph in reverse topological order, packing each operation as
late as the chaining budget allows while still meeting every consumer's
latest start.  Delays come from the same model the schedule was built
with (recorded per entry), so mobility is consistent with the schedule.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ir.ops import Opcode
from repro.scheduling.chaining import CLOCK_MARGIN_NS, effective_delay, effective_latency
from repro.scheduling.schedule import Schedule

#: (cycle, in-cycle time) pair, ordered lexicographically.
_TimePoint = Tuple[int, float]


def alap_cycles(schedule: Schedule, depth: int = 0) -> Dict[str, int]:
    """Latest issue cycle per op without exceeding ``depth``.

    ``depth`` defaults to the schedule's own depth (so mobility is measured
    against the as-scheduled pipeline).
    """
    horizon = (depth or schedule.depth) - 1
    budget = schedule.clock_ns - CLOCK_MARGIN_NS
    #: latest availability required for each value: (cycle, time)
    need: Dict[str, _TimePoint] = {}
    alap: Dict[str, int] = {}

    def require(value_name: str, point: _TimePoint) -> None:
        current = need.get(value_name)
        if current is None or point < current:
            need[value_name] = point

    for op in reversed(schedule.dfg.topo_order()):
        if op.opcode is Opcode.CONST:
            alap[op.name] = 0
            continue
        entry = schedule.entries[op.name]
        if op.result is not None and op.result.name in need:
            latest_avail = need[op.result.name]
        else:
            latest_avail = (horizon, budget)

        latency = effective_latency(op)
        per_cycle = effective_delay(op, entry.delay_ns)
        if latency > 0:
            # Result ready at issue + latency (time ~0 within that cycle,
            # except LOAD-style delivery, conservatively the same bound).
            issue_cycle = latest_avail[0] - latency
            start_time = budget  # operands just need to make the edge
        else:
            cycle, end_time = latest_avail
            start_time = end_time - per_cycle
            issue_cycle = cycle
            if start_time < 0.0:
                issue_cycle -= 1
                start_time = max(0.0, budget - per_cycle)
        issue_cycle = max(issue_cycle, entry.cycle)  # ALAP never before ASAP
        alap[op.name] = issue_cycle
        for operand in op.operands:
            if operand.is_const:
                continue
            require(
                operand.name,
                (issue_cycle, start_time if latency == 0 else budget),
            )
    return alap


def mobility(schedule: Schedule, depth: int = 0) -> Dict[str, int]:
    """Cycles each op can slide: ``alap_issue - scheduled_issue`` (>= 0)."""
    alap = alap_cycles(schedule, depth)
    return {
        name: max(0, alap[name] - entry.cycle)
        for name, entry in schedule.entries.items()
    }


def pinned_ops(schedule: Schedule) -> Dict[str, int]:
    """Ops with zero mobility — the true critical skeleton of the loop."""
    return {name: 0 for name, slack in mobility(schedule).items() if slack == 0}


def free_split_points(schedule: Schedule) -> Dict[str, int]:
    """Ops whose consumers all have slack: a register can be inserted on
    their result without growing the pipeline (the zero-cost subset of the
    §4.1 register insertions)."""
    slack = mobility(schedule)
    free: Dict[str, int] = {}
    for name, entry in schedule.entries.items():
        op = entry.op
        if op.result is None or not op.result.uses:
            continue
        consumer_slack = min(
            (slack[c.name] for c in op.result.uses if c.name in slack), default=0
        )
        if consumer_slack >= 1:
            free[name] = consumer_slack
    return free
