"""Schedule containers.

A :class:`Schedule` assigns every operation of one DFG a start cycle and a
start/end time within that cycle (operation chaining).  It also records
*violations* — chains whose estimated delay exceeds the clock target, which
is legal output for the baseline HLS scheduler (it simply doesn't know) and
is precisely what the broadcast-aware pass hunts for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SchedulingError
from repro.ir.dfg import DFG
from repro.ir.ops import Operation
from repro.ir.values import Value


@dataclass
class ScheduledOp:
    """Placement of one operation in time.

    Attributes:
        op: The operation.
        cycle: Issue cycle (0-based pipeline stage for II=1 loops).
        start_ns / end_ns: Chained combinational window within ``cycle``.
        finish_cycle: Cycle in which the result becomes available
            (``cycle + latency`` for sequential ops).
        delay_ns: The per-op delay estimate used (model-dependent).
    """

    op: Operation
    cycle: int
    start_ns: float
    end_ns: float
    finish_cycle: int
    delay_ns: float


@dataclass
class Violation:
    """A scheduled chain exceeding the clock budget."""

    op: Operation
    cycle: int
    arrival_ns: float
    budget_ns: float
    reason: str

    def __str__(self) -> str:
        return (
            f"cycle {self.cycle}: {self.op.name} arrives at "
            f"{self.arrival_ns:.2f}ns > budget {self.budget_ns:.2f}ns ({self.reason})"
        )


@dataclass
class Schedule:
    """Complete scheduling result for one DFG."""

    dfg: DFG
    clock_ns: float
    model_name: str
    entries: Dict[str, ScheduledOp] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)

    def entry(self, op: Operation) -> ScheduledOp:
        try:
            return self.entries[op.name]
        except KeyError as exc:
            raise SchedulingError(f"op {op.name!r} is not scheduled") from exc

    @property
    def depth(self) -> int:
        """Number of pipeline stages (cycles) the schedule spans."""
        if not self.entries:
            return 0
        return max(e.finish_cycle for e in self.entries.values()) + 1

    def ops_in_cycle(self, cycle: int) -> List[ScheduledOp]:
        """Scheduled ops issued in ``cycle``, ordered by start time."""
        entries = [e for e in self.entries.values() if e.cycle == cycle]
        entries.sort(key=lambda e: (e.start_ns, e.op.name))
        return entries

    def cycle_of_value(self, value: Value) -> int:
        """The cycle in which ``value`` becomes available.

        Graph inputs and constants are available at cycle 0.
        """
        if value.producer is None:
            return 0
        return self.entry(value.producer).finish_cycle

    def critical_arrival(self, cycle: int) -> float:
        """Largest chained arrival (end time) in ``cycle``."""
        entries = self.ops_in_cycle(cycle)
        return max((e.end_ns for e in entries), default=0.0)

    def stage_values(self, cycle: int) -> List[Value]:
        """Values that must be registered at the end of ``cycle``.

        A value needs a pipeline register at cycle c when it is available at
        or before c and is consumed strictly after c (or is a live-out
        produced at c).  The widths of these value sets form the stage-width
        profile the min-area skid buffer DP consumes (Fig. 17).
        """
        alive: List[Value] = []
        for value in self.dfg.values.values():
            if value.is_const:
                continue
            if value.producer is not None and value.producer.result is not value:
                continue
            avail = self.cycle_of_value(value)
            if avail > cycle:
                continue
            consumers = value.uses
            if not consumers:
                # Live-out: keep it registered through the last stage.
                if value.producer is not None and avail <= cycle:
                    alive.append(value)
                continue
            if any(self.entry(use).cycle > cycle for use in consumers):
                alive.append(value)
        return alive

    def stage_width(self, cycle: int) -> int:
        """Total registered bits crossing the boundary after ``cycle``.

        Sub-module instances (CALL ops) may declare ``attrs['stage_width']``
        — the bits held per internal pipeline stage; those bits occupy every
        boundary the call's execution spans.
        """
        width = sum(v.type.bits for v in self.stage_values(cycle))
        for entry in self.entries.values():
            op = entry.op
            if entry.cycle <= cycle < entry.finish_cycle:
                if op.opcode.value == "call":
                    # Sub-modules declare their internal per-stage width.
                    width += int(op.attrs.get("stage_width", 0))
                elif op.result is not None:
                    # A multi-cycle operator (pipelined core, memory port)
                    # holds its value in flight across these boundaries.
                    width += op.result.type.bits
        return width

    def width_profile(self) -> List[int]:
        """Stage widths after every cycle boundary (length = depth)."""
        return [self.stage_width(c) for c in range(self.depth)]

    def has_violations(self) -> bool:
        return bool(self.violations)

    def summary(self) -> str:
        return (
            f"schedule[{self.model_name}] depth={self.depth} "
            f"clock={self.clock_ns:.2f}ns violations={len(self.violations)}"
        )
