"""Chaining list scheduler.

ASAP list scheduling with operation chaining under a clock target, the
standard approach of production HLS schedulers (§2).  The scheduler is
parameterized on a *delay model*; with the broadcast-blind
:class:`~repro.delay.hls_model.HlsDelayModel` it reproduces the baseline
tool behaviour (including its timing violations near broadcasts), with a
:class:`~repro.delay.calibrated.CalibratedDelayModel` it realizes §4.1's
broadcast-aware scheduling, naturally splitting chains whose calibrated
delay no longer fits the cycle.

Extra pipelining (``op.attrs['extra_latency']``) stretches an operation
over additional cycles while dividing its combinational delay across them —
the paper's "additional pipelining" for big-buffer accesses and oversized
float multiplies, which downstream retiming then balances.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro import obs
from repro.errors import SchedulingError
from repro.ir.dfg import DFG
from repro.ir.ops import Opcode, Operation
from repro.ir.values import Value
from repro.scheduling.schedule import Schedule, ScheduledOp, Violation

#: Per-cycle overhead reserved for clock-to-out + setup + uncertainty (ns).
CLOCK_MARGIN_NS = 0.30

#: Hard cap on extra pipelining of one op, mirroring practical HLS limits.
MAX_EXTRA_LATENCY = 8

#: Operators HLS maps to multi-cycle-capable resources (pipelined DSP
#: multipliers, floating-point cores, memory ports).  The scheduler
#: auto-pipelines these when their *estimated* delay alone exceeds the
#: budget, exactly like production tools — with the crucial caveat that the
#: broadcast-blind model never sees the broadcast-inflated delay, so the
#: baseline never pipelines a broadcast (§3.1).
PIPELINEABLE_OPS = frozenset(
    {Opcode.MUL, Opcode.DIV, Opcode.LOAD, Opcode.STORE}
)


def _is_pipelineable(op: Operation) -> bool:
    if op.opcode in PIPELINEABLE_OPS:
        return True
    dtype = op.result.type if op.result is not None else None
    return dtype is not None and dtype.is_float and op.opcode in (
        Opcode.ADD,
        Opcode.SUB,
    )


def effective_latency(op: Operation) -> int:
    """Total result latency in cycles including requested extra pipelining."""
    return op.latency + int(op.attrs.get("extra_latency", 0))


def effective_delay(op: Operation, model_delay: float) -> float:
    """Per-cycle combinational delay after spreading over extra stages.

    An op pipelined over ``e`` extra stages contributes ``delay / (e + 1)``
    per cycle — the idealized outcome of retiming balancing the inserted
    registers along the path.
    """
    extra = int(op.attrs.get("extra_latency", 0))
    return model_delay / (extra + 1)


class ChainingScheduler:
    """Schedules one DFG against a clock target using a delay model.

    ``resource_limits`` (a :class:`repro.scheduling.resources.
    ResourceLimits`) optionally bounds per-cycle issues of expensive
    resources; operations are deferred past full cycles.
    """

    def __init__(self, model, clock_ns: float, resource_limits=None) -> None:
        if clock_ns <= CLOCK_MARGIN_NS:
            raise SchedulingError(
                f"clock target {clock_ns}ns is below the margin {CLOCK_MARGIN_NS}ns"
            )
        self.model = model
        self.clock_ns = clock_ns
        self.budget_ns = clock_ns - CLOCK_MARGIN_NS
        from repro.scheduling.resources import ResourceTracker

        self._resources = ResourceTracker(resource_limits)

    # ------------------------------------------------------------------
    def schedule(self, dfg: DFG) -> Schedule:
        """Produce a :class:`Schedule` for ``dfg`` (must be verified)."""
        result = Schedule(dfg=dfg, clock_ns=self.clock_ns, model_name=self.model.name)
        # Availability of every value: (cycle, time_within_cycle).
        avail: Dict[str, Tuple[int, float]] = {}
        for value in dfg.values.values():
            if value.is_input or value.is_const:
                avail[value.name] = (0, 0.0)

        for op in dfg.topo_order():
            if op.opcode is Opcode.CONST:
                result.entries[op.name] = ScheduledOp(op, 0, 0.0, 0.0, 0, 0.0)
                avail[op.result.name] = (0, 0.0)
                continue
            entry = self._place(op, avail, result)
            result.entries[op.name] = entry
            if op.result is not None:
                avail[op.result.name] = self._result_avail(op, entry)
        return result

    # ------------------------------------------------------------------
    def _operand_ready(
        self, op: Operation, avail: Dict[str, Tuple[int, float]]
    ) -> Tuple[int, float]:
        """Earliest (cycle, in-cycle time) when every operand is stable."""
        cycle, time = 0, 0.0
        for operand in op.operands:
            c, t = avail[operand.name]
            if c > cycle:
                cycle, time = c, t
            elif c == cycle:
                time = max(time, t)
        return cycle, time

    def _place(
        self,
        op: Operation,
        avail: Dict[str, Tuple[int, float]],
        result: Schedule,
    ) -> ScheduledOp:
        delay = self.model.op_delay(op)
        per_cycle = effective_delay(op, delay)
        if per_cycle > self.budget_ns and _is_pipelineable(op):
            # Multi-cycle resource: add pipeline stages until it fits (or
            # the cap is hit).  The stages are materialized as movable
            # registers by the RTL generator.
            # Memory ports pipeline both the outbound (address/data
            # distribution) and return sides, so they get one stage more
            # than the pure delay quotient suggests.
            quotient = math.ceil(delay / self.budget_ns)
            needed = min(
                MAX_EXTRA_LATENCY,
                quotient if op.opcode in (Opcode.LOAD, Opcode.STORE) else quotient - 1,
            )
            already = int(op.attrs.get("extra_latency", 0))
            if needed > already:
                op.attrs["extra_latency"] = needed
                per_cycle = effective_delay(op, delay)
                obs.add("scheduling.registers_inserted", needed - already)
                obs.add("scheduling.auto_pipelined_ops", 1)
        cycle, start = self._operand_ready(op, avail)
        min_cycle = int(op.attrs.get("min_cycle", 0))
        if min_cycle > cycle:
            # Alignment constraint (e.g. a FIFO read consumed late in the
            # pipeline is issued late, SODA-style) — no dangling registers.
            cycle, start = min_cycle, 0.0
        slot = self._resources.first_free_cycle(op, cycle)
        if slot > cycle:
            # Resource pool full: defer to the next cycle with a free slot.
            cycle, start = slot, 0.0

        if op.opcode is Opcode.LOAD:
            # Operands (the address) are captured at the issue-cycle edge;
            # the read-side delay (BRAM clock-to-out, bank mux, return
            # wires) lands in the delivery cycle, starting at time 0.
            end = per_cycle
        elif op.opcode in (Opcode.REG, Opcode.CALL):
            # Pure capture, no combinational window in the issue cycle.
            end = start
        else:
            if start + per_cycle > self.budget_ns and start > 0.0:
                # Chain overflows the cycle: start a fresh cycle.
                cycle += 1
                start = 0.0
            end = start + per_cycle
        final_slot = self._resources.first_free_cycle(op, cycle)
        if final_slot > cycle:
            # The chain-overflow bump landed in a full cycle; defer again.
            cycle, start = final_slot, 0.0
            if op.opcode is not Opcode.LOAD and op.opcode not in (Opcode.REG, Opcode.CALL):
                end = per_cycle
        self._resources.commit(op, cycle)
        if end > self.budget_ns:
            # Even alone the op misses the budget.  The baseline HLS
            # behaviour is to schedule it anyway and let the backend fail —
            # record the violation for §4.1 to act on.
            obs.add("scheduling.budget_violations", 1)
            result.violations.append(
                Violation(
                    op=op,
                    cycle=cycle,
                    arrival_ns=end,
                    budget_ns=self.budget_ns,
                    reason=f"{op.opcode.value} delay {per_cycle:.2f}ns alone exceeds budget",
                )
            )
        return ScheduledOp(
            op=op,
            cycle=cycle,
            start_ns=start,
            end_ns=end,
            finish_cycle=cycle + effective_latency(op),
            delay_ns=delay,
        )

    def _result_avail(self, op: Operation, entry: ScheduledOp) -> Tuple[int, float]:
        """When the result value can be consumed."""
        latency = effective_latency(op)
        if latency == 0:
            return entry.cycle, entry.end_ns
        if op.opcode is Opcode.LOAD:
            # The read side (BRAM clock-to-out + bank mux) lands in the
            # delivery cycle; consumers chain after it.
            return entry.finish_cycle, entry.end_ns
        if op.opcode in (Opcode.REG, Opcode.CALL):
            return entry.finish_cycle, 0.0
        # Pipelined operator: the final stage still occupies part of the
        # delivery cycle before consumers can chain.
        return entry.finish_cycle, effective_delay(op, entry.delay_ns)


def schedule_design_loop(loop_dfg: DFG, model, clock_ns: float) -> Schedule:
    """Convenience wrapper used by the flow."""
    return ChainingScheduler(model, clock_ns).schedule(loop_dfg)
