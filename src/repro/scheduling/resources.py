"""Resource-constrained scheduling limits.

Production HLS schedulers bound how many instances of an expensive
resource (DSP multipliers, memory ports) may issue in one cycle — either
from ``#pragma HLS allocation`` or from device capacity.  The chaining
scheduler accepts a :class:`ResourceLimits` and defers operations past a
full cycle, exactly like list scheduling with a ready queue.

This interacts with the paper's topic in one important way: serializing a
broadcast's consumers across cycles *also* lowers the per-cycle broadcast
factor, so a resource-limited schedule can mask a broadcast problem that
reappears when the design is given more resources — one more reason the
delay model, not resource pressure, should drive the split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.ir.ops import MEM_OPS, Opcode, Operation


def resource_class_of(op: Operation) -> Optional[str]:
    """The limit pool an operation draws from, or None if unlimited."""
    if op.opcode is Opcode.MUL:
        dtype = op.result.type if op.result is not None else None
        return "fmul" if dtype is not None and dtype.is_float else "mul"
    if op.opcode is Opcode.DIV:
        return "div"
    if op.opcode in (Opcode.ADD, Opcode.SUB):
        dtype = op.result.type if op.result is not None else None
        if dtype is not None and dtype.is_float:
            return "fadd"
        return None
    if op.opcode in MEM_OPS:
        return f"mem:{op.attrs['buffer'].name}"
    return None


@dataclass
class ResourceLimits:
    """Per-cycle issue limits by resource class.

    ``limits`` maps class names (``mul``, ``fmul``, ``fadd``, ``div``,
    ``mem:<buffer>``) to the number of issues allowed per cycle; absent
    classes are unlimited.  ``default_mem_ports`` bounds every buffer that
    has no explicit entry (2 = true dual port).
    """

    limits: Dict[str, int] = field(default_factory=dict)
    default_mem_ports: int = 0  # 0 = unlimited

    def limit_for(self, op: Operation) -> Optional[int]:
        cls = resource_class_of(op)
        if cls is None:
            return None
        if cls in self.limits:
            return self.limits[cls]
        if cls.startswith("mem:") and self.default_mem_ports > 0:
            return self.default_mem_ports
        return None


class ResourceTracker:
    """Mutable per-cycle usage counters consulted by the scheduler."""

    def __init__(self, limits: Optional[ResourceLimits] = None) -> None:
        self.limits = limits or ResourceLimits()
        self._used: Dict[int, Dict[str, int]] = {}

    def first_free_cycle(self, op: Operation, earliest: int) -> int:
        """Earliest cycle >= ``earliest`` with an issue slot for ``op``."""
        limit = self.limits.limit_for(op)
        if limit is None:
            return earliest
        cls = resource_class_of(op)
        cycle = earliest
        while self._used.get(cycle, {}).get(cls, 0) >= limit:
            cycle += 1
        return cycle

    def commit(self, op: Operation, cycle: int) -> None:
        cls = resource_class_of(op)
        if cls is None or self.limits.limit_for(op) is None:
            return
        per_cycle = self._used.setdefault(cycle, {})
        per_cycle[cls] = per_cycle.get(cls, 0) + 1

    def usage(self, cycle: int) -> Dict[str, int]:
        return dict(self._used.get(cycle, {}))
