"""Broadcast-aware scheduling (§4.1).

Pipeline of the pass, matching the paper's methodology:

1. schedule with the production (broadcast-blind) HLS model;
2. emit and re-parse the schedule report — the paper operates on report
   text because the HLS tool is closed-source, and we keep that interface;
3. walk every within-cycle chain with *calibrated* delays and find timing
   violations (RAW broadcast factors, buffer sizes);
4. pipeline oversized operations: buffer accesses get ``extra_latency``
   proportional to their calibrated delay ("additional pipelining will be
   added to variables interacting with the buffer"), as do single ops whose
   broadcast delay alone misses the target (the float-multiply case);
5. re-schedule with the calibrated model — chains now split where the
   violations were, which is exactly "inserting register modules" since the
   RTL generator materializes every new cycle boundary as (movable)
   pipeline registers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.delay.calibrated import CalibratedDelayModel
from repro.delay.hls_model import HlsDelayModel
from repro.ir.dfg import DFG
from repro.ir.ops import MEM_OPS, Opcode
from repro.scheduling.chaining import (
    CLOCK_MARGIN_NS,
    MAX_EXTRA_LATENCY,
    ChainingScheduler,
)
from repro.scheduling.report import emit_report, parse_report
from repro.scheduling.schedule import Schedule


@dataclass
class ChainViolation:
    """A chain that fits under HLS-predicted delays but not calibrated ones."""

    cycle: int
    op_name: str
    hls_arrival_ns: float
    calibrated_arrival_ns: float
    budget_ns: float

    def __str__(self) -> str:
        return (
            f"cycle {self.cycle}: {self.op_name} calibrated arrival "
            f"{self.calibrated_arrival_ns:.2f}ns (HLS believed "
            f"{self.hls_arrival_ns:.2f}ns) > budget {self.budget_ns:.2f}ns"
        )


@dataclass
class BroadcastAwareResult:
    """Outcome of the pass.

    Attributes:
        schedule: Final schedule under the calibrated model.
        baseline: The HLS-model schedule it started from.
        chain_violations: Calibrated-delay violations found in the baseline.
        edits: Human-readable log of pipelining edits applied.
        extra_stages: Pipeline depth growth (the paper's genome case grows
            from 9 to 10 stages).
    """

    schedule: Schedule
    baseline: Schedule
    chain_violations: List[ChainViolation] = field(default_factory=list)
    edits: List[str] = field(default_factory=list)

    @property
    def extra_stages(self) -> int:
        return self.schedule.depth - self.baseline.depth


def audit_chains(
    baseline: Schedule, model: CalibratedDelayModel
) -> List[ChainViolation]:
    """Re-time every scheduled chain with calibrated delays (step 3).

    For each cycle of the baseline schedule, propagate calibrated arrival
    times along RAW dependencies *within that cycle* and report ops whose
    calibrated arrival exceeds the budget although their HLS arrival did not.
    """
    budget = baseline.clock_ns - CLOCK_MARGIN_NS
    violations: List[ChainViolation] = []
    arrival: Dict[str, float] = {}
    for cycle in range(baseline.depth):
        for entry in baseline.ops_in_cycle(cycle):
            op = entry.op
            start = 0.0
            for operand in op.operands:
                producer = operand.producer
                if producer is None or producer.name not in baseline.entries:
                    continue
                p_entry = baseline.entries[producer.name]
                if p_entry.finish_cycle == cycle and producer.name in arrival:
                    start = max(start, arrival[producer.name])
            cal = start + model.op_delay(op)
            arrival[op.name] = cal
            if cal > budget and entry.end_ns <= budget:
                violations.append(
                    ChainViolation(
                        cycle=cycle,
                        op_name=op.name,
                        hls_arrival_ns=entry.end_ns,
                        calibrated_arrival_ns=cal,
                        budget_ns=budget,
                    )
                )
    return violations


def _apply_extra_pipelining(
    dfg: DFG, model: CalibratedDelayModel, budget_ns: float
) -> List[str]:
    """Step 4: stretch oversized ops over extra stages (in place).

    Only ops that map to multi-cycle-capable resources are stretched —
    memory ports and multipliers/float cores — matching the paper's scope
    ("additional pipelining ... to variables interacting with the buffer";
    "if a broadcast of floating-point multiplication by itself surpasses
    the delay target, we also add additional pipelining").
    """
    from repro.scheduling.chaining import _is_pipelineable

    edits: List[str] = []
    for op in dfg.ops:
        if op.opcode is Opcode.CONST or not _is_pipelineable(op):
            continue
        delay = model.op_delay(op)
        if delay <= budget_ns:
            continue
        quotient = math.ceil(delay / budget_ns)
        extra = min(
            MAX_EXTRA_LATENCY,
            quotient if op.opcode in MEM_OPS else quotient - 1,
        )
        already = int(op.attrs.get("extra_latency", 0))
        if extra <= already:
            continue  # never reduce pipelining a design already requested
        op.attrs["extra_latency"] = extra
        # Each extra stage materializes as a (movable) register module in
        # the generated RTL — the quantity the paper's §4.1 argues about.
        obs.add("scheduling.registers_inserted", extra - already)
        obs.add("scheduling.pipelining_edits", 1)
        kind = "buffer access" if op.opcode in MEM_OPS else "operator"
        edits.append(
            f"pipelined {kind} {op.name} ({op.opcode.value}, calibrated "
            f"{delay:.2f}ns) over {extra} extra stage(s)"
        )
    return edits


def broadcast_aware_schedule(
    dfg: DFG,
    clock_ns: float,
    calibrated: CalibratedDelayModel,
    hls: Optional[HlsDelayModel] = None,
    via_report: bool = True,
) -> BroadcastAwareResult:
    """Run the full §4.1 pass on one (already unrolled) loop body.

    Mutates ``dfg`` op attributes (``extra_latency``); callers working on a
    shared design should pass a clone.  When ``via_report`` is set the
    baseline schedule round-trips through report text, as the paper's
    implementation does.
    """
    hls = hls or HlsDelayModel()
    with obs.span("baseline-schedule", via_report=via_report) as sp:
        baseline = ChainingScheduler(hls, clock_ns).schedule(dfg)
        if via_report:
            baseline = parse_report(emit_report(baseline), dfg)
        sp.set("depth", baseline.depth)
    with obs.span("chain-audit") as sp:
        chain_violations = audit_chains(baseline, calibrated)
        sp.set("violations", len(chain_violations))
        obs.add("scheduling.chain_rechecks", 1)
        obs.add("scheduling.chain_violations", len(chain_violations))
    edits = _apply_extra_pipelining(dfg, calibrated, clock_ns - CLOCK_MARGIN_NS)
    with obs.span("reschedule") as sp:
        final = ChainingScheduler(calibrated, clock_ns).schedule(dfg)
        sp.set("depth", final.depth)
        sp.set("extra_stages", final.depth - baseline.depth)
    return BroadcastAwareResult(
        schedule=final,
        baseline=baseline,
        chain_violations=chain_violations,
        edits=edits,
    )
