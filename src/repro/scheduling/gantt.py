"""ASCII Gantt rendering of schedules.

A quick way to *see* what broadcast-aware scheduling changed: each row is
an operation, each column a pipeline stage, and the bar within a stage
shows the chained start/end window.  The examples print baseline and
optimized schedules side by side.
"""

from __future__ import annotations

from typing import List, Optional

from repro.scheduling.schedule import Schedule

#: Character cells per clock cycle in the rendering.
CELL_WIDTH = 10


def render_gantt(
    schedule: Schedule,
    max_ops: int = 40,
    only_cycles: Optional[int] = None,
) -> str:
    """Render ``schedule`` as an ASCII Gantt chart.

    Args:
        schedule: The schedule to draw.
        max_ops: Truncate beyond this many rows (largest designs are huge).
        only_cycles: Limit to the first N cycles.
    """
    depth = schedule.depth if only_cycles is None else min(schedule.depth, only_cycles)
    name_width = 24
    header = " " * name_width + "|" + "|".join(
        f" c{c:<{CELL_WIDTH - 2}}" for c in range(depth)
    ) + "|"
    lines: List[str] = [header, "-" * len(header)]

    entries = sorted(
        schedule.entries.values(), key=lambda e: (e.cycle, e.start_ns, e.op.name)
    )
    shown = 0
    for entry in entries:
        if entry.op.opcode.value == "const":
            continue
        if entry.cycle >= depth:
            continue
        if shown >= max_ops:
            lines.append(f"... {len(entries) - shown} more ops not shown")
            break
        shown += 1
        row = [" "] * (depth * (CELL_WIDTH + 1))
        budget = max(schedule.clock_ns, 1e-9)
        start_col = entry.cycle * (CELL_WIDTH + 1) + int(
            (entry.start_ns / budget) * CELL_WIDTH
        )
        end_cycle = min(entry.finish_cycle, depth - 1)
        end_col = end_cycle * (CELL_WIDTH + 1) + max(
            int((entry.end_ns / budget) * CELL_WIDTH),
            int((entry.start_ns / budget) * CELL_WIDTH) + 1,
        )
        for col in range(start_col, min(end_col, len(row))):
            row[col] = "#" if (col % (CELL_WIDTH + 1)) != CELL_WIDTH else "|"
        label = entry.op.name[:name_width].ljust(name_width)
        lines.append(label + "|" + "".join(row))
    lines.append(
        f"depth={schedule.depth} clock={schedule.clock_ns:.2f}ns "
        f"model={schedule.model_name} violations={len(schedule.violations)}"
    )
    return "\n".join(lines)
