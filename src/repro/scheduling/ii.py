"""Initiation-interval (II) analysis for pipelined loops.

The §5.2 overhead argument rests on broadcast-aware scheduling *not*
hurting throughput: "Both have the same initiation interval of 1."  This
module computes the resource-constrained minimum II of a scheduled loop so
that claim is checkable for every design:

* a BRAM bank (group) offers two ports per cycle (true dual port) — more
  concurrent accesses per iteration raise the II;
* a FIFO endpoint offers one push and one pop per cycle;
* explicit pipelining (extra_latency) never affects II, only depth.

Recurrence-constrained II is also bounded: a value produced by iteration k
and consumed by iteration k (our bodies are loop-free dataflow) carries no
cross-iteration dependence, so recurrence II is 1 by construction; loops
that *do* carry a dependence express it as a load/store pair on the same
buffer, which the memory-port bound conservatively covers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.ir.ops import Opcode
from repro.ir.program import Loop
from repro.scheduling.schedule import Schedule

#: Concurrent accesses one BRAM bank group supports per cycle (dual-port).
BRAM_PORTS = 2
#: Pushes (and pops) a FIFO supports per cycle.
FIFO_PORTS = 1


@dataclass
class IIReport:
    """Outcome of the analysis for one loop."""

    ii: int
    limiting_resource: str = ""
    access_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def fully_pipelined(self) -> bool:
        return self.ii == 1


def _mem_groups(schedule: Schedule) -> Dict[Tuple[str, object], int]:
    """Accesses per (buffer, bank-group) per iteration."""
    counts: Dict[Tuple[str, object], int] = {}
    for entry in schedule.entries.values():
        op = entry.op
        if op.opcode in (Opcode.LOAD, Opcode.STORE):
            group = op.attrs.get("bank_group")
            key = (op.attrs["buffer"].name, group if isinstance(group, tuple) else None)
            counts[key] = counts.get(key, 0) + 1
    return counts


def analyze_ii(loop: Loop, schedule: Schedule) -> IIReport:
    """Minimum II the scheduled loop can sustain, and what limits it."""
    worst = 1
    limiting = "none"
    access_counts: Dict[str, int] = {}

    for (buffer, group), count in _mem_groups(schedule).items():
        access_counts[f"buffer:{buffer}" + (f"[{group[0]}]" if group else "")] = count
        ii = math.ceil(count / BRAM_PORTS)
        if ii > worst:
            worst = ii
            limiting = f"memory ports of {buffer!r}"

    fifo_counts: Dict[Tuple[str, str], int] = {}
    for entry in schedule.entries.values():
        op = entry.op
        if op.opcode is Opcode.FIFO_READ:
            key = (op.attrs["fifo"].name, "read")
        elif op.opcode is Opcode.FIFO_WRITE:
            key = (op.attrs["fifo"].name, "write")
        else:
            continue
        fifo_counts[key] = fifo_counts.get(key, 0) + 1
    for (fifo, side), count in fifo_counts.items():
        access_counts[f"fifo:{fifo}:{side}"] = count
        ii = math.ceil(count / FIFO_PORTS)
        if ii > worst:
            worst = ii
            limiting = f"{side} port of fifo {fifo!r}"

    requested = max(1, loop.ii)
    return IIReport(
        ii=max(worst, requested),
        limiting_resource=limiting if worst > 1 else "none",
        access_counts=access_counts,
    )


def check_ii_preserved(loop: Loop, before: Schedule, after: Schedule) -> bool:
    """§5.2's throughput-neutrality check: II unchanged by optimization."""
    return analyze_ii(loop, before).ii == analyze_ii(loop, after).ii
