"""HLS scheduling: chaining list scheduler, schedule reports, and the
broadcast-aware re-scheduling pass of §4.1."""

from repro.scheduling.schedule import Schedule, ScheduledOp, Violation
from repro.scheduling.chaining import ChainingScheduler, CLOCK_MARGIN_NS
from repro.scheduling.broadcast_aware import BroadcastAwareResult, broadcast_aware_schedule
from repro.scheduling.report import emit_report, parse_report

__all__ = [
    "Schedule",
    "ScheduledOp",
    "Violation",
    "ChainingScheduler",
    "CLOCK_MARGIN_NS",
    "broadcast_aware_schedule",
    "BroadcastAwareResult",
    "emit_report",
    "parse_report",
]
