"""Schedule report emission and parsing.

The paper's tooling works *on top of* a closed HLS tool: "we parse the HLS
scheduling reports, which include the LLVM instructions annotated with
scheduled state/cycle, estimated delay, etc."  We mirror that interface: the
baseline scheduler emits a text report; the optimization passes re-parse it
rather than peeking at in-memory objects.  The round-trip is lossless for
everything the passes need (op → state, chaining window, latency) and is
covered by round-trip tests.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.delay.calibrated import broadcast_factor_of
from repro.errors import ReportParseError
from repro.ir.dfg import DFG
from repro.scheduling.schedule import Schedule, ScheduledOp

_HEADER_RE = re.compile(
    r"== Schedule Report: (?P<name>.+?) \| clock=(?P<clock>[\d.]+)ns"
    r" \| model=(?P<model>\w+) \| depth=(?P<depth>\d+) =="
)
_STATE_RE = re.compile(r"^State (?P<cycle>\d+):$")
_OP_RE = re.compile(
    r"^\s{2}(?P<op>\S+) \| (?P<opcode>\S+) \| t=\[(?P<start>[\d.]+), (?P<end>[\d.]+)\]"
    r" \| fin=(?P<fin>\d+) \| delay=(?P<delay>[\d.]+) \| bf=(?P<bf>\d+)"
    r"(?: \| uses=(?P<uses>.*))?$"
)


def emit_report(schedule: Schedule) -> str:
    """Serialize a schedule to the text report format."""
    lines: List[str] = [
        f"== Schedule Report: {schedule.dfg.name} | clock={schedule.clock_ns:.3f}ns"
        f" | model={schedule.model_name} | depth={schedule.depth} =="
    ]
    for cycle in range(schedule.depth):
        entries = schedule.ops_in_cycle(cycle)
        if not entries:
            continue
        lines.append(f"State {cycle}:")
        for entry in entries:
            uses = ",".join(v.name for v in entry.op.operands)
            lines.append(
                f"  {entry.op.name} | {entry.op.opcode.value}"
                f" | t=[{entry.start_ns:.3f}, {entry.end_ns:.3f}]"
                f" | fin={entry.finish_cycle}"
                f" | delay={entry.delay_ns:.3f}"
                f" | bf={broadcast_factor_of(entry.op)}"
                + (f" | uses={uses}" if uses else "")
            )
    if schedule.violations:
        lines.append("Violations:")
        for violation in schedule.violations:
            lines.append(f"  {violation}")
    return "\n".join(lines) + "\n"


def parse_report(text: str, dfg: DFG) -> Schedule:
    """Reconstruct a :class:`Schedule` from report text against ``dfg``.

    The DFG must be the one the report was generated from (op names are the
    join key).  Violations are not round-tripped — the consuming passes
    recompute them with their own delay model anyway.
    """
    ops_by_name = {op.name: op for op in dfg.ops}
    header = None
    schedule: Schedule = None  # type: ignore[assignment]
    current_cycle = -1
    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        if not line:
            continue
        if header is None:
            header = _HEADER_RE.match(line)
            if header is None:
                raise ReportParseError(f"bad report header: {line!r}")
            schedule = Schedule(
                dfg=dfg,
                clock_ns=float(header.group("clock")),
                model_name=header.group("model"),
            )
            continue
        state = _STATE_RE.match(line)
        if state:
            current_cycle = int(state.group("cycle"))
            continue
        if line.startswith("Violations:") or line.lstrip().startswith("cycle "):
            continue
        match = _OP_RE.match(raw_line)
        if match is None:
            raise ReportParseError(f"unparseable report line: {line!r}")
        name = match.group("op")
        op = ops_by_name.get(name)
        if op is None:
            raise ReportParseError(f"report references unknown op {name!r}")
        if current_cycle < 0:
            raise ReportParseError(f"op line before any state header: {line!r}")
        schedule.entries[name] = ScheduledOp(
            op=op,
            cycle=current_cycle,
            start_ns=float(match.group("start")),
            end_ns=float(match.group("end")),
            finish_cycle=int(match.group("fin")),
            delay_ns=float(match.group("delay")),
        )
    if schedule is None:
        raise ReportParseError("empty report")
    missing = set(ops_by_name) - set(schedule.entries)
    if missing:
        raise ReportParseError(f"report missing ops: {sorted(missing)[:5]}")
    return schedule


def report_states(text: str) -> Dict[str, int]:
    """Light-weight view: op name → state, without needing the DFG."""
    states: Dict[str, int] = {}
    current = -1
    for line in text.splitlines():
        state = _STATE_RE.match(line.strip()) if line.startswith("State") else None
        if state:
            current = int(state.group("cycle"))
            continue
        match = _OP_RE.match(line)
        if match:
            states[match.group("op")] = current
    return states
