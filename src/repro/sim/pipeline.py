"""Cycle-accurate models of the two flow-control schemes of §3.3 / §4.3.

Both pipelines apply a function ``fn`` to a stream of items through a
depth-``N`` register pipeline feeding a flow-controlled consumer:

* :class:`StallPipeline` — one global enable derived from the output
  FIFO's status and broadcast to every stage: when the downstream cannot
  accept data, *everything* freezes.  This is the control structure whose
  broadcast kills Fmax (Fig. 8).
* :class:`SkidPipeline` — the pipeline always shifts; each slot carries a
  valid bit; completed items land in a bounded *bypass* skid FIFO (empty
  FIFO passes data straight through, so the common case costs nothing).
  The only control decision is local: stop **reading upstream** while the
  skid FIFO holds data.  An upstream element already being read when the
  stall is detected still lands in the buffer — hence the paper's minimum
  skid depth of ``N + 1`` (Fig. 11).

Functional equivalence and equal steady-state throughput between the two
are asserted by the test suite under arbitrary back-pressure patterns.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.fifo import Fifo

Transform = Callable[[object], object]
#: A puller returns the next input item, or None if the upstream is empty.
Puller = Callable[[], Optional[object]]


def _identity(x: object) -> object:
    return x


class StallPipeline:
    """Stall-controlled pipeline (the HLS default, §3.3)."""

    def __init__(self, depth: int, fn: Optional[Transform] = None, out_depth: int = 4) -> None:
        if depth <= 0:
            raise SimulationError("pipeline depth must be positive")
        if out_depth < 2:
            raise SimulationError("output FIFO depth must be at least 2")
        self.depth = depth
        self.fn = fn or _identity
        self.stages: List[Optional[object]] = [None] * depth
        self.out = Fifo(out_depth, name="out")
        self.stall_cycles = 0

    @property
    def busy(self) -> bool:
        return any(s is not None for s in self.stages) or not self.out.empty

    def cycle(self, pull: Puller, sink_ready: bool) -> Optional[object]:
        """Advance one clock cycle.

        ``pull()`` is invoked only when the pipeline advances (the global
        enable is high) — a stalled pipeline leaves the upstream untouched.
        Returns the element delivered to the consumer this cycle, or None.
        """
        delivered = None
        if sink_ready and not self.out.empty:
            delivered = self.out.pop()

        # The broadcast enable: freeze every stage when the output FIFO
        # may not be able to accept the in-flight completion.
        enable = not self.out.almost_full
        if enable:
            tail = self.stages[-1]
            if tail is not None:
                self.out.push(tail)
            self.stages[1:] = self.stages[:-1]
            item = pull()
            self.stages[0] = self.fn(item) if item is not None else None
        else:
            self.stall_cycles += 1
        self.out.tick()
        return delivered


class SkidPipeline:
    """Skid-buffer-controlled pipeline (§4.3, Fig. 11).

    ``skid_depth`` defaults to the provably-safe ``depth + 1``; tests pass
    smaller values to demonstrate overflow.
    """

    def __init__(
        self,
        depth: int,
        fn: Optional[Transform] = None,
        skid_depth: Optional[int] = None,
        gate: str = "credit",
    ) -> None:
        """``gate`` selects the read-gate implementation:

        * ``"credit"`` (default) — space-accounting gate; work-conserving
          and overflow-free by construction at any capacity;
        * ``"lagged"`` — the paper's literal description ("the buffer will
          become non-empty, and the pipeline will stop reading"), observing
          the *registered* empty flag.  Safe iff capacity ≥ depth + 1 —
          the property the paper's sizing rule rests on, demonstrated by
          the overflow tests.
        """
        if depth <= 0:
            raise SimulationError("pipeline depth must be positive")
        if gate not in ("credit", "lagged"):
            raise SimulationError(f"unknown skid gate {gate!r}")
        self.depth = depth
        self.fn = fn or _identity
        self.gate = gate
        self.stages: List[Optional[object]] = [None] * depth
        self.skid = Fifo(skid_depth if skid_depth is not None else depth + 1, name="skid")
        self.bubble_cycles = 0

    @property
    def busy(self) -> bool:
        return any(s is not None for s in self.stages) or not self.skid.empty

    def cycle(self, pull: Puller, sink_ready: bool) -> Optional[object]:
        """Advance one clock; the pipeline itself never stalls."""
        tail = self.stages[-1]
        delivered = None
        push_tail = tail is not None
        if sink_ready:
            if self.skid.occupancy > 0:
                delivered = self.skid.pop()
            elif tail is not None:
                # Bypass: an empty skid FIFO passes data straight through,
                # keeping full throughput in the common (no-stall) case.
                delivered = tail
                push_tail = False
        if push_tail:
            self.skid.push(tail)

        # The read gate is the only flow-control decision.  It is credit
        # based: admit a new element only when the buffer can absorb every
        # element already in flight plus this one even if the downstream
        # never accepts again.  With the paper's minimum capacity of
        # ``N + 1`` this is exactly "stop reading once data backs up", but
        # it re-opens as credits return, so steady-state throughput equals
        # the stall scheme's (the §4.3 claim tests assert).
        if self.gate == "credit":
            popped = 1 if (sink_ready and self.skid.occupancy > 0) else 0
            committed = self.skid.occupancy - popped + (1 if push_tail else 0)
            in_flight = sum(1 for s in self.stages[:-1] if s is not None)
            reading = committed + in_flight + 1 <= self.skid.depth
        else:  # "lagged": the registered empty flag, as the paper words it
            reading = self.skid.empty

        # Always flowing: every slot shifts every cycle; empty slots are
        # just invalid bubbles.
        self.stages[1:] = self.stages[:-1]
        item = pull() if reading else None
        if item is not None:
            self.stages[0] = self.fn(item)
        else:
            self.stages[0] = None
            self.bubble_cycles += 1
        self.skid.tick()
        return delivered


def simulate(
    pipeline,
    items: Sequence[object],
    ready_pattern: Callable[[int], bool],
    max_cycles: int = 1_000_000,
) -> Tuple[List[object], int]:
    """Drive ``pipeline`` with ``items`` against a back-pressured sink.

    ``ready_pattern(cycle)`` says whether the consumer accepts data in a
    given cycle.  Returns ``(outputs, cycles_to_drain)``.
    """
    outputs: List[object] = []
    pending = list(items)
    cycle = 0

    def pull() -> Optional[object]:
        return pending.pop(0) if pending else None

    while (pending or pipeline.busy) and cycle < max_cycles:
        delivered = pipeline.cycle(pull, ready_pattern(cycle))
        if delivered is not None:
            outputs.append(delivered)
        cycle += 1
    if pending or pipeline.busy:
        raise SimulationError(f"simulation did not drain in {max_cycles} cycles")
    return outputs, cycle
