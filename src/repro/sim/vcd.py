"""VCD (Value Change Dump) tracing for the pipeline simulators.

Wraps a :class:`~repro.sim.pipeline.StallPipeline` or
:class:`~repro.sim.pipeline.SkidPipeline` run and records, per cycle:

* each stage's occupancy (valid bit);
* the skid/output FIFO occupancy;
* the delivered-output strobe and the upstream read strobe.

The output is standard IEEE 1364 VCD, loadable in GTKWave &c., so the
§4.3 behaviours — the stall freeze vs the always-flowing bubbles, the
skid fill on back-pressure — can be *seen*.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TextIO, Tuple

from repro.sim.pipeline import SkidPipeline, StallPipeline


def _ident(index: int) -> str:
    """Short printable VCD identifier for signal #index."""
    chars = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    out = ""
    index += 1
    while index:
        index, digit = divmod(index, len(chars))
        out += chars[digit]
    return out


class VcdWriter:
    """Minimal VCD emitter (1-bit and integer signals)."""

    def __init__(self, handle: TextIO, module: str = "pipeline") -> None:
        self.handle = handle
        self.module = module
        self._signals: List[Tuple[str, int]] = []  # (name, width)
        self._idents: List[str] = []
        self._last: List[Optional[int]] = []
        self._header_done = False

    def add_signal(self, name: str, width: int = 1) -> int:
        assert not self._header_done, "add signals before the first sample"
        self._signals.append((name, width))
        self._idents.append(_ident(len(self._idents)))
        self._last.append(None)
        return len(self._signals) - 1

    def _write_header(self) -> None:
        self.handle.write("$timescale 1ns $end\n")
        self.handle.write(f"$scope module {self.module} $end\n")
        for (name, width), ident in zip(self._signals, self._idents):
            kind = "wire" if width == 1 else "integer"
            self.handle.write(f"$var {kind} {width} {ident} {name} $end\n")
        self.handle.write("$upscope $end\n$enddefinitions $end\n")
        self._header_done = True

    def sample(self, time: int, values: Sequence[int]) -> None:
        if not self._header_done:
            self._write_header()
        self.handle.write(f"#{time}\n")
        for i, value in enumerate(values):
            if value == self._last[i]:
                continue
            self._last[i] = value
            _name, width = self._signals[i]
            if width == 1:
                self.handle.write(f"{value & 1}{self._idents[i]}\n")
            else:
                self.handle.write(f"b{value:b} {self._idents[i]}\n")


def trace_pipeline(
    pipeline,
    items: Sequence[object],
    ready_pattern: Callable[[int], bool],
    handle: TextIO,
    max_cycles: int = 100_000,
) -> Tuple[List[object], int]:
    """Run ``pipeline`` like :func:`repro.sim.pipeline.simulate`, dumping VCD.

    Returns ``(outputs, cycles)``, identical to the untraced run.
    """
    if not isinstance(pipeline, (SkidPipeline, StallPipeline)):
        raise TypeError(f"cannot trace {type(pipeline).__name__}")
    writer = VcdWriter(handle)
    for i in range(pipeline.depth):
        writer.add_signal(f"stage{i}_valid")
    if isinstance(pipeline, SkidPipeline):
        fifo = pipeline.skid
        writer.add_signal("skid_occupancy", width=16)
    else:
        fifo = pipeline.out
        writer.add_signal("out_occupancy", width=16)
    read_id = writer.add_signal("reading")
    deliver_id = writer.add_signal("delivered")
    sink_id = writer.add_signal("sink_ready")

    outputs: List[object] = []
    pending = list(items)
    cycle = 0
    while (pending or pipeline.busy) and cycle < max_cycles:
        read_flag = 0

        def pull():
            nonlocal read_flag
            if pending:
                read_flag = 1
                return pending.pop(0)
            return None

        ready = ready_pattern(cycle)
        delivered = pipeline.cycle(pull, ready)
        if delivered is not None:
            outputs.append(delivered)
        values = [1 if s is not None else 0 for s in pipeline.stages]
        values.append(fifo.occupancy)
        values.extend([read_flag, 1 if delivered is not None else 0, 1 if ready else 0])
        writer.sample(cycle, values)
        cycle += 1
    return outputs, cycle
