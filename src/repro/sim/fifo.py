"""A cycle-accurate bounded FIFO with registered status flags.

Semantics match a synchronous FPGA FIFO:

* ``push``/``pop`` take effect at the clock edge (:meth:`tick`);
* the ``empty``/``full`` flags seen during a cycle reflect the *previous*
  edge — this one-cycle status lag is exactly why the paper sizes skid
  buffers at ``N + 1`` rather than ``N`` ("+1 since the empty signal will
  be deasserted one cycle after the first element is in").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import FifoOverflowError, FifoUnderflowError


class Fifo:
    """Synchronous FIFO of bounded ``depth``.

    Use pattern per cycle: combinationally inspect :attr:`empty` /
    :attr:`full`, call :meth:`push` / :meth:`pop` at most once each, then
    :meth:`tick` advances the clock.
    """

    def __init__(self, depth: int, name: str = "fifo") -> None:
        if depth <= 0:
            raise FifoOverflowError(f"fifo {name!r} depth must be positive")
        self.depth = depth
        self.name = name
        self._data: Deque[object] = deque()
        # Registered status flags (what the design observes this cycle).
        self.empty = True
        self.full = False
        self.almost_full = depth <= 1
        self._pushed: Optional[object] = None
        self._popped = False
        self.max_occupancy = 0

    @property
    def occupancy(self) -> int:
        return len(self._data)

    def push(self, item: object) -> None:
        """Schedule a push for this cycle's clock edge.

        Pushing a genuinely full FIFO loses data on hardware; here it
        raises, because every legal control scheme must prevent it.
        """
        if self._pushed is not None:
            raise FifoOverflowError(f"fifo {self.name!r}: double push in one cycle")
        if len(self._data) >= self.depth:
            raise FifoOverflowError(
                f"fifo {self.name!r}: push while full (depth {self.depth})"
            )
        self._pushed = item

    def pop(self) -> object:
        """Schedule a pop; returns the head element (combinational read)."""
        if self._popped:
            raise FifoUnderflowError(f"fifo {self.name!r}: double pop in one cycle")
        if not self._data:
            raise FifoUnderflowError(f"fifo {self.name!r}: pop while empty")
        self._popped = True
        return self._data[0]

    def tick(self) -> None:
        """Advance one clock: commit push/pop, update registered flags."""
        if self._popped:
            self._data.popleft()
        if self._pushed is not None:
            self._data.append(self._pushed)
        self._pushed = None
        self._popped = False
        self.empty = not self._data
        self.full = len(self._data) >= self.depth
        self.almost_full = len(self._data) >= self.depth - 1
        self.max_occupancy = max(self.max_occupancy, len(self._data))

    def drain(self) -> List[object]:
        """Remove and return all stored elements (test helper)."""
        items = list(self._data)
        self._data.clear()
        self.empty = True
        self.full = False
        return items
