"""Cycle-accurate simulation of flow-controlled pipelines.

Used to verify the §4.3 claims executable-ly:

* skid-buffer control produces the **same output stream** as stall-based
  control under any back-pressure pattern;
* it has the **same throughput** ("the exact same throughput as the
  original stall-based back-pressure control");
* a skid buffer of depth ``N + 1`` **never overflows** for a depth-``N``
  pipeline, while depth ``N`` can (the "+1 since the empty signal will be
  deasserted one cycle after" rule).
"""

from repro.sim.fifo import Fifo
from repro.sim.pipeline import SkidPipeline, StallPipeline, simulate
from repro.sim.harness import BackpressureSink, Source, run_pipeline

__all__ = [
    "Fifo",
    "StallPipeline",
    "SkidPipeline",
    "simulate",
    "Source",
    "BackpressureSink",
    "run_pipeline",
]
