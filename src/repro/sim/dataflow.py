"""Functional dataflow simulation of whole designs.

Runs a design's loops as concurrent processes with HLS dataflow semantics:
in each "cycle" every loop fires at most once, and a loop fires only when
**all** of its FIFO reads are satisfiable and writes have space.  A fused
loop (several independent flows in one body, Fig. 5a) therefore stalls
*everything* when any one port stalls — the behavioural face of the §3.2
synchronization broadcast — while the §4.2-split design keeps unaffected
flows moving.

:func:`compare_designs` drives two designs with identical stimuli and is
used by the tests to prove flow splitting is semantics-preserving and
never throughput-degrading.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir.dfg import DFG
from repro.ir.interp import Evaluator
from repro.ir.program import Design

#: Input names treated as loop indices and fed the firing number.
INDEX_INPUT_NAMES = ("i", "j")


def index_inputs(dfg: DFG, iteration: int) -> Dict[str, int]:
    """Loop-index feeds for firing ``iteration`` of ``dfg``.

    Plain index inputs (``i``, ``j``) get the firing number.  Unrolled
    copies (``i#k``, produced by :func:`repro.ir.passes.unroll_loop`)
    address the *pre-unroll* iteration space: with F copies, firing c of
    the unrolled loop executes original iterations ``c*F .. c*F+F-1``, so
    copy k reads index ``iteration * F + k``.  Feeding every copy the same
    firing number (the old behavior) collapses all unrolled stores onto
    one address — unrolling would no longer be semantics-preserving.
    """
    feeds: Dict[str, int] = {base: iteration for base in INDEX_INPUT_NAMES}
    copies: Dict[str, List[int]] = {}
    for value in dfg.inputs:
        base, sep, suffix = value.name.partition("#")
        if not sep or base not in INDEX_INPUT_NAMES:
            continue
        try:
            copies.setdefault(base, []).append(int(suffix))
        except ValueError:
            continue
    for base, ks in copies.items():
        factor = len(ks)
        for k in ks:
            feeds[f"{base}#{k}"] = iteration * factor + k
    return feeds


@dataclass
class DataflowTrace:
    """Result of one dataflow simulation run."""

    outputs: Dict[str, List[object]]
    firings: Dict[str, int] = field(default_factory=dict)
    cycles: int = 0

    def lane(self, fifo_name: str) -> List[object]:
        return self.outputs.get(fifo_name, [])


class DataflowSim:
    """Cycle-stepped functional simulation of a design's loops.

    Args:
        design: The design (pragmas need not be lowered; bodies run as-is).
        stimuli: external input fifo name → list of elements to feed.
        stall_inputs: optional callable ``(fifo_name, cycle) -> bool``;
            True means the external producer delivers nothing this cycle
            (models a stalled HBM port / upstream).
        params: constant feeds for named loop-body inputs (e.g. the
            loop-invariant scalars of a broadcast source); applied to every
            firing of every loop, after the index feeds.
    """

    def __init__(
        self,
        design: Design,
        stimuli: Dict[str, Sequence[object]],
        stall_inputs: Optional[Callable[[str, int], bool]] = None,
        params: Optional[Dict[str, object]] = None,
    ) -> None:
        design.verify()
        self.design = design
        self.params = dict(params or {})
        self.stall_inputs = stall_inputs or (lambda _name, _cycle: False)
        self.pending: Dict[str, collections.deque] = {
            name: collections.deque(items) for name, items in stimuli.items()
        }
        self.evaluator = Evaluator(fifos={}, buffers={})
        # Output fifos: external fifos that are written by some loop.
        written = set()
        read = set()
        for _k, loop in design.all_loops():
            r, w = loop.fifo_endpoints()
            read.update(r)
            written.update(w)
        self.output_fifos = [
            name
            for name, fifo in design.fifos.items()
            if fifo.external and name in written
        ]
        self.input_fifos = [
            name
            for name, fifo in design.fifos.items()
            if fifo.external and name in read
        ]

    def run(self, max_cycles: int = 100_000) -> DataflowTrace:
        """Run until stimuli are drained and no loop can fire."""
        outputs: Dict[str, List[object]] = {name: [] for name in self.output_fifos}
        firings: Dict[str, int] = {}
        loops = [(k.name, loop) for k, loop in self.design.all_loops()]
        iteration_counters: Dict[str, int] = {}
        cycle = 0
        while cycle < max_cycles:
            # 1. external producers deliver one element per cycle per port.
            delivered = False
            for name in self.input_fifos:
                queue = self.pending.get(name)
                if queue and not self.stall_inputs(name, cycle):
                    self.evaluator.fifos.setdefault(
                        name, collections.deque()
                    ).append(queue.popleft())
                    delivered = True
            # 2. each loop fires at most once when fully ready.
            progressed = False
            for kname, loop in loops:
                key = f"{kname}/{loop.name}"
                count = iteration_counters.get(key, 0)
                if loop.trip_count is not None and count >= loop.trip_count:
                    continue
                if not self.evaluator.can_fire(loop.body):
                    continue
                feeds = index_inputs(loop.body, count)
                feeds.update(self.params)
                self.evaluator.run(loop.body, inputs=feeds)
                iteration_counters[key] = count + 1
                firings[key] = firings.get(key, 0) + 1
                progressed = True
            # 3. external consumers drain outputs immediately.
            for name in self.output_fifos:
                queue = self.evaluator.fifos.get(name)
                while queue:
                    outputs[name].append(queue.popleft())
            cycle += 1
            stimuli_left = any(self.pending.get(n) for n in self.input_fifos)
            if not progressed and not delivered:
                if not stimuli_left:
                    break  # drained, or deadlocked on internal capacity
                # stalled producers: keep cycling (they will deliver later)
        return DataflowTrace(outputs=outputs, firings=firings, cycles=cycle)


def compare_designs(
    a: Design,
    b: Design,
    stimuli: Dict[str, Sequence[object]],
    stall_inputs: Optional[Callable[[str, int], bool]] = None,
    max_cycles: int = 100_000,
    params: Optional[Dict[str, object]] = None,
) -> Tuple[DataflowTrace, DataflowTrace]:
    """Run two designs on identical stimuli (fresh copies each)."""
    trace_a = DataflowSim(
        a, {k: list(v) for k, v in stimuli.items()}, stall_inputs, params=params
    ).run(max_cycles)
    trace_b = DataflowSim(
        b, {k: list(v) for k, v in stimuli.items()}, stall_inputs, params=params
    ).run(max_cycles)
    return trace_a, trace_b
