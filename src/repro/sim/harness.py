"""Sources, sinks and comparison harness for pipeline simulations."""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.sim.pipeline import SkidPipeline, StallPipeline, simulate


class Source:
    """A finite item stream (convenience factory for test data)."""

    def __init__(self, count: int, seed: Optional[int] = None) -> None:
        rng = random.Random(seed)
        if seed is None:
            self.items: List[int] = list(range(count))
        else:
            self.items = [rng.randrange(1 << 16) for _ in range(count)]


class BackpressureSink:
    """Ready-pattern factory.

    * ``BackpressureSink.always()`` — never stalls;
    * ``BackpressureSink.duty(num, den)`` — ready ``num`` of every ``den``;
    * ``BackpressureSink.random(p, seed)`` — Bernoulli(p) per cycle;
    * ``BackpressureSink.burst_stall(period, length)`` — periodic stalls of
      ``length`` cycles, the adversarial pattern for overflow tests.
    """

    @staticmethod
    def always() -> Callable[[int], bool]:
        return lambda _cycle: True

    @staticmethod
    def duty(num: int, den: int) -> Callable[[int], bool]:
        return lambda cycle: (cycle % den) < num

    @staticmethod
    def random(p: float, seed: int = 0) -> Callable[[int], bool]:
        rng = random.Random(seed)
        pattern: List[bool] = []

        def ready(cycle: int) -> bool:
            while len(pattern) <= cycle:
                pattern.append(rng.random() < p)
            return pattern[cycle]

        return ready

    @staticmethod
    def burst_stall(period: int, length: int) -> Callable[[int], bool]:
        return lambda cycle: (cycle % period) >= length

    @staticmethod
    def from_bools(bools: Sequence[bool]) -> Callable[[int], bool]:
        return lambda cycle: bools[cycle % len(bools)] if bools else True


def run_pipeline(
    kind: str,
    depth: int,
    items: Sequence[object],
    ready: Callable[[int], bool],
    fn=None,
    skid_depth: Optional[int] = None,
) -> Tuple[List[object], int]:
    """Build and run one pipeline; returns (outputs, total cycles)."""
    if kind == "stall":
        pipeline = StallPipeline(depth, fn=fn)
    elif kind == "skid":
        pipeline = SkidPipeline(depth, fn=fn, skid_depth=skid_depth)
    else:
        raise ValueError(f"unknown pipeline kind {kind!r}")
    return simulate(pipeline, items, ready)


def compare_control_schemes(
    depth: int,
    items: Sequence[object],
    ready: Callable[[int], bool],
    fn=None,
) -> Tuple[List[object], List[object], int, int]:
    """Run both schemes on identical stimuli.

    Returns ``(stall_out, skid_out, stall_cycles, skid_cycles)`` so callers
    can assert the §4.3 equivalence claims.
    """
    stall_out, stall_cycles = run_pipeline("stall", depth, list(items), ready, fn=fn)
    skid_out, skid_cycles = run_pipeline("skid", depth, list(items), ready, fn=fn)
    return stall_out, skid_out, stall_cycles, skid_cycles
