"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                         — list the nine benchmark designs;
* ``run <design> [--config C]``    — run the flow on one design
  (``--json`` for a machine-readable report, ``--trace-out t.json`` for a
  Chrome ``trace_event`` file, ``--verbose`` for the span tree,
  ``--jobs N`` to fan multiple configs over worker processes);
* ``trace <design> [--out t.json]`` — run the flow and export the trace;
  ``trace --request <digest>`` instead loads the merged per-request trace
  a service compile left behind (daemon span + every worker attempt,
  partial spans of killed attempts included);
* ``profile <design> --sweep A,B,C`` — run a broadcast-factor sweep and
  rank pipeline stages by self-time, fitting each stage's scaling slope
  to flag super-linear (candidate O(n²)) hot paths;
* ``events [--follow] [--grep S]`` — query the service's structured
  event journal (``repro-event/1`` JSONL);
* ``fuzz [--count K] [--budget S]`` — differential fuzzing: generate
  seeded random dataflow programs and check the simulator against a
  sequential reference, every IR pass for metamorphic equivalence, and
  the stage cache for digest determinism; failures are shrunk to minimal
  reproducers in ``tests/fuzz_corpus/`` (exit 1 on any divergence);
* ``tune <design>``                — auto-apply techniques until converged
  (``autotune`` is an alias);
* ``dse <design> [--budget N]``    — seeded population search over
  transform plans × optimization configs × clock targets
  (``--backend inline|engine|service|cluster``, ``--json`` for the full
  report; see :mod:`repro.dse`);
* ``diagnose <design>``            — broadcast classification + advice;
* ``diemap <design>``              — ASCII die map + worst broadcast net;
* ``table1 | table2 | table3``     — reproduce a table (``--jobs N``);
* ``fig9 | fig15 | fig16 | fig17 | fig19`` — reproduce a figure (``--jobs N``);
* ``all [--out report.md]``        — run every experiment, one report
  (``--json report.json`` / ``--trace-out t.json`` for structured output,
  ``--jobs N`` for a parallel run);
* ``verilog <design> <out.v>``     — emit the generated netlist as Verilog;
* ``serve``                        — run the flow-compilation daemon
  (request coalescing, content-addressed result store, fault-tolerant
  worker processes — see :mod:`repro.service`);
* ``submit <design> [--wait]``     — submit a compilation to a daemon
  (exit 0 ok, 1 failed, 3 when the daemon applies backpressure or is
  unreachable after the client's backoff retries);
* ``status [job-id]``              — query a daemon: human-readable table
  of queue depths, hit rates and uptime (``--json`` for the raw
  snapshot document); ``status --cluster`` points at a cluster router
  and renders one aggregated per-node table instead;
* ``cluster serve --nodes ID=HOST:PORT,...`` — run the consistent-hash
  router over a fleet of daemons (hot-digest caching, replica failover,
  fleet-wide ``/metrics`` — see :mod:`repro.cluster`);
* ``cluster submit / cluster status`` — submit through the router / the
  aggregated cluster table.

Batch commands (``run`` with several configs, ``all``) exit nonzero when
*any* job failed, while still reporting every job that completed.

Flow-running commands accept ``--calibration PATH`` to pin the §4.1
characterization to an explicit file (built there on first use); without
it the persistent cache under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro``) is used, so only the first cold run ever pays the
~14 s characterization cost.  They also accept ``--stage-cache off`` to
disable the staged pipeline's content-addressed artifact store
(``$REPRO_CACHE_DIR/stages`` — see :mod:`repro.pipeline`), which
otherwise lets re-runs and compares skip every stage whose inputs did not
change.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time

from repro import Flow, obs
from repro.analysis import classify_design, diagnose, format_critical_path
from repro.designs import build_design, design_names
from repro.engine import Engine, FlowFailure, FlowJob
from repro.errors import ReproError
from repro.opt import BASELINE, CONFIG_LABELS
from repro.service.client import DEFAULT_HOST, DEFAULT_PORT

#: ``--config`` labels (shared with the service; see repro.opt).
CONFIGS = dict(CONFIG_LABELS)


class CliUsageError(ReproError):
    """Bad command-line input; :func:`main` prints it and exits with 2."""


def _configs_for(spec: str):
    """Parse a ``--config a,b,c`` list, or fail with the valid choices."""
    labels = [label.strip() for label in spec.split(",") if label.strip()]
    if not labels:
        raise CliUsageError(
            f"--config needs at least one label; valid configs: "
            f"{', '.join(sorted(CONFIGS))}"
        )
    unknown = [label for label in labels if label not in CONFIGS]
    if unknown:
        raise CliUsageError(
            f"unknown config {', '.join(repr(u) for u in unknown)}; "
            f"valid configs: {', '.join(sorted(CONFIGS))}"
        )
    return [(label, CONFIGS[label]) for label in labels]


def _check_design(name: str, include_extra: bool = False) -> str:
    if name not in design_names(include_extra=include_extra):
        raise CliUsageError(
            f"unknown design {name!r}; valid designs: "
            f"{', '.join(design_names(include_extra=include_extra))}"
        )
    return name


def _build_design(name: str, include_extra: bool = False):
    return build_design(_check_design(name, include_extra=include_extra))


def _flow_for(args) -> Flow:
    return Flow(
        seed=args.seed,
        calibration_path=getattr(args, "calibration", None),
        stage_cache=getattr(args, "stage_cache", None),
        incremental=getattr(args, "incremental", None),
    )


def _engine_for(args) -> Engine:
    return Engine(jobs=getattr(args, "jobs", 1), flow=_flow_for(args))


def _add_flow_options(parser, jobs: bool = True) -> None:
    parser.add_argument(
        "--calibration", default=None, metavar="PATH",
        help="calibration table file (built there on first use; its stored "
             "device/seed provenance must match the run)",
    )
    parser.add_argument(
        "--stage-cache", choices=("on", "off"), default=None,
        metavar="{on,off}",
        help="stage-artifact caching under $REPRO_CACHE_DIR/stages "
             "(default: on unless $REPRO_STAGE_CACHE=off); 'off' re-runs "
             "every pipeline stage",
    )
    parser.add_argument(
        "--incremental", choices=("on", "off"), default=None,
        metavar="{on,off}",
        help="incremental recompilation: per-loop scheduling/RTL memos, "
             "placement trajectory reuse, and stage-output early cutoff "
             "across the runs of one sweep (default: on unless "
             "$REPRO_INCREMENTAL=off); results are bit-identical either "
             "way",
    )
    if jobs:
        parser.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes for independent flow runs "
                 "(1 = in-process, 0 = one per CPU)",
        )


def _cmd_list(_args) -> int:
    from repro.experiments.paper_data import TABLE1

    for name in design_names():
        row = TABLE1[name]
        print(f"{name:18s} {row.broadcast_type:20s} paper {row.freq[0]}->{row.freq[1]} MHz")
    return 0


def _cmd_run(args) -> int:
    configs = _configs_for(args.config)
    _check_design(args.design)
    engine = _engine_for(args)
    tracer = obs.Tracer()
    with obs.activate(tracer):
        # collect_errors: one bad config point must not eat its siblings'
        # results — report everything, then exit nonzero below.
        results = engine.run_flows(
            [FlowJob.make(args.design, config, tag=label) for label, config in configs],
            collect_errors=True,
        )
    failures = [r for r in results if isinstance(r, FlowFailure)]
    successes = [r for r in results if not isinstance(r, FlowFailure)]
    if not args.json:
        for result in results:
            if isinstance(result, FlowFailure):
                print(f"repro: error: {result.describe()}", file=sys.stderr)
                continue
            print(result.summary())
            if args.verbose:
                print(format_critical_path(result.timing))
    if args.verbose and not args.json:
        print()
        print(obs.render_console(tracer))
    if args.json:
        report = obs.run_report(tracer, successes)
        if failures:
            report["failures"] = [failure.record() for failure in failures]
        print(json.dumps(report, indent=2))
    if args.trace_out:
        obs.write_chrome_trace(args.trace_out, tracer)
        print(f"wrote Chrome trace to {args.trace_out}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_trace(args) -> int:
    if args.request:
        return _cmd_trace_request(args)
    if not args.design:
        raise CliUsageError("trace needs a design (or --request <digest>)")
    configs = _configs_for(args.config)
    _check_design(args.design)
    engine = _engine_for(args)
    tracer = obs.Tracer()
    with obs.activate(tracer):
        engine.run_flows(
            [FlowJob.make(args.design, config, tag=label) for label, config in configs]
        )
    print(obs.render_console(tracer))
    out = args.out or f"{args.design}_trace.json"
    obs.write_chrome_trace(out, tracer)
    print(f"\nwrote Chrome trace to {out} "
          f"(open in chrome://tracing or https://ui.perfetto.dev)")
    return 0


def _cmd_trace_request(args) -> int:
    """Render the merged per-request trace a service compile stored."""
    from repro.service import TraceStore, rebuild_trace

    document = TraceStore().get(args.request)
    if document is None:
        print(
            f"repro: error: no stored trace for request digest "
            f"{args.request!r} (has the service compiled it?)",
            file=sys.stderr,
        )
        return 1
    attempts = document.get("attempts") or 0
    print(
        f"trace {document.get('trace_id')} — request {args.request[:12]} "
        f"job={document.get('job_id')} state={document.get('state')} "
        f"attempts={attempts} served_from={document.get('served_from') or '-'}"
    )
    roots = rebuild_trace(document)
    for root in roots:
        print()
        print(obs.render_console(root))
    if args.out:
        tracer = obs.Tracer()
        tracer.roots = roots
        obs.write_chrome_trace(args.out, tracer)
        print(f"\nwrote Chrome trace to {args.out}")
    return 0


#: Default broadcast-factor parameter of each sweepable design (the knob
#: ``repro profile --sweep`` varies; override with ``--param``).
SWEEP_PARAMS = {
    "genome": "unroll",
    "matmul": "pes",
    "stream_buffer": "depth",
    "vector_arith": "width",
    "stencil": "iterations",
}


def _cmd_profile(args) -> int:
    _check_design(args.design, include_extra=True)
    param = args.param or SWEEP_PARAMS.get(args.design)
    if not param:
        raise CliUsageError(
            f"design {args.design!r} has no default sweep parameter; "
            f"pass --param NAME (sweepable defaults: "
            f"{', '.join(f'{d}:{p}' for d, p in sorted(SWEEP_PARAMS.items()))})"
        )
    try:
        factors = [int(v) for v in args.sweep.split(",") if v.strip()]
    except ValueError as exc:
        raise CliUsageError(f"bad --sweep list {args.sweep!r}: {exc}") from exc
    if len(factors) < 2:
        raise CliUsageError("--sweep needs at least two factors")
    if any(f <= 0 for f in factors):
        raise CliUsageError(
            f"--sweep factors must be positive, got {args.sweep!r}"
        )
    if any(b <= a for a, b in zip(factors, factors[1:])):
        raise CliUsageError(
            f"--sweep factors must be strictly increasing, got {args.sweep!r}"
        )
    if args.repeat < 1:
        raise CliUsageError("--repeat must be at least 1")
    import gc

    reports = []
    # Repeats are interleaved round-robin over the factor list so slow
    # machine phases (frequency scaling, cache pressure) hit every factor
    # equally — batching repeats per factor lets drift systematically
    # inflate the factors measured last, which reads as a fake
    # super-linear slope.
    for _rep in range(args.repeat):
        for factor in factors:
            # Fresh flow per run: no stage-cache hits and no cross-run
            # incremental reuse may skip the work being timed.  The
            # collection boundary keeps garbage from earlier runs out of
            # this run's span timings.
            gc.collect()
            flow = _flow_for(args)
            tracer = obs.Tracer()
            with obs.activate(tracer):
                design = build_design(args.design, **{param: factor})
                flow.run(design, CONFIGS[args.config])
            reports.append((float(factor), obs.run_report(tracer)))
        if not args.json:
            print(
                f"profile round {_rep + 1}/{args.repeat}: "
                f"{args.design} {param} in {{{args.sweep}}} "
                f"(per-path minima kept)",
                file=sys.stderr,
            )
    threshold = (
        args.fail_on_slope
        if args.fail_on_slope is not None
        else obs.SUPERLINEAR_SLOPE
    )
    document = obs.profile_reports(
        reports, top=args.top, slope_threshold=threshold, repeat_reduce="min"
    )
    document["design"] = args.design
    document["param"] = param
    document["config"] = args.config
    document["repeat"] = args.repeat
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        print(f"{args.design} ({param} sweep, config={args.config})")
        print(obs.render_profile(document))
    if args.fail_on_slope is not None and document.get("superlinear_paths"):
        print(
            "FAIL: super-linear scaling above slope "
            f"{threshold:g}: {', '.join(document['superlinear_paths'])}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_events(args) -> int:
    from repro.delay.cache import default_cache_dir
    from repro.obs.journal import follow_events, read_events

    path = args.path or os.path.join(
        default_cache_dir(), "journal", "events.jsonl"
    )

    def render(record) -> str:
        if args.json:
            return json.dumps(record, sort_keys=True)
        stamp = time.strftime("%H:%M:%S", time.localtime(record.get("ts", 0)))
        source = record.get("source") or "?"
        pid = record.get("pid") or "-"
        skip = {"schema", "ts", "event", "pid", "source"}
        fields = " ".join(
            f"{key}={record[key]}" for key in sorted(record) if key not in skip
        )
        return f"{stamp} {source:>13s}/{pid:<7} {record.get('event', '?'):<18s} {fields}"

    if args.follow:
        needle = (args.grep or "").lower()
        try:
            for record in follow_events(path):
                if needle and needle not in json.dumps(record).lower():
                    continue
                print(render(record), flush=True)
        except KeyboardInterrupt:
            pass
        return 0
    records = read_events(path, grep=args.grep, limit=args.limit)
    if not records:
        print(f"no events in {path}", file=sys.stderr)
        return 0
    for record in records:
        print(render(record))
    return 0


def _cmd_fuzz(args) -> int:
    from repro.fuzz.harness import CHECK_GROUPS, run_campaign

    checks = tuple(
        label.strip() for label in args.checks.split(",") if label.strip()
    )
    unknown = [label for label in checks if label not in CHECK_GROUPS]
    if unknown:
        raise CliUsageError(
            f"unknown check {', '.join(repr(u) for u in unknown)}; "
            f"valid checks: {', '.join(CHECK_GROUPS)}"
        )
    if args.count < 1:
        raise CliUsageError("--count must be at least 1")
    report = run_campaign(
        seed=args.seed,
        count=args.count,
        checks=checks or CHECK_GROUPS,
        budget_s=args.budget,
        corpus_dir=args.corpus_dir,
        shrink_failures=not args.no_shrink,
        log=lambda message: print(message, file=sys.stderr),
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        rate = report.programs / report.elapsed_s if report.elapsed_s else 0.0
        print(
            f"fuzz seed={report.seed}: {report.programs}/{report.requested} "
            f"programs in {report.elapsed_s:.1f}s ({rate:.1f}/s), "
            f"checks={','.join(report.checks)}, "
            f"divergences={len(report.divergences)}"
            + (" [budget exhausted]" if report.budget_exhausted else "")
        )
        for divergence in report.divergences:
            print(f"  DIVERGENCE {divergence.summary()}")
            if divergence.corpus_path:
                print(f"    reproducer: {divergence.corpus_path}")
    return 1 if report.divergences else 0


def _cmd_diagnose(args) -> int:
    design = _build_design(args.design)
    print(classify_design(design).summary())
    result = _flow_for(args).run(design, BASELINE)
    print()
    print(format_critical_path(result.timing))
    print()
    for line in diagnose(result.timing):
        print(" *", line)
    return 0


def _cmd_tune(args) -> int:
    from repro.autotune import auto_optimize

    design = _build_design(args.design, include_extra=True)
    result = auto_optimize(design, flow=_flow_for(args))
    print(result.log())
    print(result.best.summary())
    return 0


def _parse_design_params(items) -> dict:
    """Parse repeated ``--set NAME=VALUE`` design-builder overrides."""
    params = {}
    for item in items or []:
        name, eq, value = item.partition("=")
        if not eq or not name:
            raise CliUsageError(
                f"bad --set {item!r}; expected NAME=VALUE (e.g. unroll=16)"
            )
        try:
            params[name] = int(value)
        except ValueError:
            raise CliUsageError(
                f"bad --set {item!r}; design parameters are integers"
            )
    return params


def _cmd_dse(args) -> int:
    from repro.dse import explore, make_backend

    backend = make_backend(
        args.backend,
        jobs=getattr(args, "jobs", 1),
        host=args.host,
        port=args.port,
        flow=_flow_for(args) if args.backend in ("inline", "engine") else None,
    )
    report = explore(
        _check_design(args.design, include_extra=True),
        params=_parse_design_params(args.set),
        backend=backend,
        budget=args.budget,
        seed=args.seed,
        max_generations=args.generations,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 0 if report.winner is not None else 1


def _cmd_diemap(args) -> int:
    from repro.physical.device import get_device
    from repro.physical.diemap import density_map, worst_broadcast_map
    from repro.physical.fabric import Fabric

    design = _build_design(args.design, include_extra=True)
    result = _flow_for(args).run(design, CONFIGS[args.config])
    fabric = Fabric(get_device(design.device))
    print(density_map(result.gen.netlist, result.placement, fabric))
    print()
    print(worst_broadcast_map(result.gen.netlist, result.placement, fabric))
    return 0


def _cmd_verilog(args) -> int:
    from repro.rtl.verilog import write_verilog

    design = _build_design(args.design)
    result = _flow_for(args).run(design, CONFIGS[args.config])
    write_verilog(result.gen.netlist, args.output)
    print(f"wrote {len(result.gen.netlist.cells)} cells to {args.output}")
    return 0


def _parse_peers(spec: str):
    """Parse a ``--peers``/``--nodes`` list: ``id=host:port,id=host:port``."""
    peers = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        node_id, eq, address = item.partition("=")
        host, colon, port_text = address.rpartition(":")
        if not eq or not colon or not node_id or not host:
            raise CliUsageError(
                f"bad peer {item!r}; expected id=host:port (e.g. "
                f"n0=127.0.0.1:8973)"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise CliUsageError(f"bad peer port in {item!r}") from None
        peers.append((node_id, host, port))
    if not peers:
        raise CliUsageError("peer list is empty")
    return peers


def _cmd_serve(args) -> int:
    from repro.service import FlowService, ResultStore, ServiceServer

    node_id = args.node_id or f"node-{os.getpid()}"
    journal = None
    if args.journal:
        from repro.obs.journal import EventJournal

        journal = EventJournal(args.journal, source=node_id)
    if args.peers:
        # Cluster member: this node's store consults the ring owners for
        # digests it is missing (GET /result/<digest>) before compiling.
        from repro.cluster import Membership, PeerResultStore

        membership = Membership()
        for peer_id, host, port in _parse_peers(args.peers):
            membership.add(peer_id, host, port)
        store = PeerResultStore(
            root=args.store_dir,
            max_entries=args.store_max,
            node_id=node_id,
            owners_for=membership.owners,
            journal=journal,
        )
    else:
        store = ResultStore(root=args.store_dir, max_entries=args.store_max)
    service = FlowService(
        store=store,
        workers=args.workers,
        queue_limit=args.queue_limit,
        max_attempts=args.max_attempts,
        job_timeout_s=args.job_timeout,
        node_id=node_id,
        journal=journal,
    )
    server = ServiceServer(service, host=args.host, port=args.port)

    async def _main() -> None:
        await server.start()
        print(
            f"repro service {service.node_id} listening on "
            f"http://{server.host}:{server.port} "
            f"(workers={service.workers}, queue_limit={service.queue_limit}, "
            f"store={service.store.root})",
            flush=True,
        )
        try:
            await server.wait_shutdown()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_submit(args) -> int:
    from repro.service.client import ServiceBusyError, ServiceClient, ServiceError

    client = ServiceClient(args.host, args.port)
    try:
        record = client.submit(
            args.design,
            config=args.config,
            priority=args.priority,
            wait=args.wait,
            seed=args.seed,
            calibration_path=args.calibration,
        )
    except ServiceBusyError as exc:
        print(f"repro: busy: {exc}", file=sys.stderr)
        return 3
    except ServiceError as exc:
        if exc.status in (0, 503):
            # Unreachable even after the client's backoff retries (or, via
            # a cluster router, every replica down): same "try again
            # later" contract as backpressure, not a hard fail.
            print(f"repro: error: {exc}", file=sys.stderr)
            return 3
        if exc.payload and exc.payload.get("state") == "failed":
            error = exc.payload.get("error") or {}
            print(
                f"repro: error: job {exc.payload.get('id')} failed: "
                f"{error.get('error_type')}: {error.get('error')}",
                file=sys.stderr,
            )
        else:
            print(f"repro: error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(record, indent=2))
    else:
        label = f"{record['id']} {record['design']}[{record['config']}]"
        if record["state"] == "done":
            summary = record.get("summary", {})
            fmax = summary.get("fmax_mhz")
            fmax_text = f" Fmax={fmax:.0f}MHz" if fmax else ""
            print(
                f"{label} done via {record.get('served_from')}{fmax_text} "
                f"digest={record['digest'][:12]}"
            )
        else:
            print(
                f"{label} {record['state']} ({record.get('submitted_as')}) "
                f"digest={record['digest'][:12]}"
            )
    return 0


def _cmd_status(args) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.host, args.port)
    try:
        document = client.job(args.job_id) if args.job_id else client.status()
    except ServiceError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 3 if exc.status == 0 else 1
    if args.json or args.job_id:
        print(json.dumps(document, indent=2))
        return 0
    if getattr(args, "cluster", False) or document.get("schema", "").startswith(
        "repro-cluster-status"
    ):
        print(_render_cluster_table(document))
        return 0
    print(_render_status_table(document))
    return 0


def _format_uptime(seconds: float) -> str:
    seconds = max(0, int(seconds))
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}h {minutes:02d}m {secs:02d}s"
    if minutes:
        return f"{minutes}m {secs:02d}s"
    return f"{secs}s"


def _render_status_table(document) -> str:
    """The human view of a daemon snapshot: queue depths, hit rates,
    uptime, recent jobs.  (``--json`` prints the raw snapshot instead.)"""
    queue = document.get("queue", {})
    by_priority = queue.get("by_priority", {})
    counters = document.get("metrics", {}).get("counters", {})
    hits = counters.get("service.result_hits", 0)
    compiles = counters.get("service.compiles", 0)
    skipped = counters.get("service.stages_skipped", 0)
    ran = counters.get("service.stages_run", 0)

    def rate(part, whole) -> str:
        return f"{100.0 * part / whole:.0f}%" if whole else "-"

    rows = [
        ("uptime", _format_uptime(document.get("uptime_s", 0))),
        (
            "queue",
            f"{queue.get('depth', 0)}/{queue.get('limit', 0)} "
            f"(high {by_priority.get('high', 0)} / "
            f"normal {by_priority.get('normal', 0)} / "
            f"low {by_priority.get('low', 0)})",
        ),
        ("inflight", str(document.get("inflight", 0))),
        ("workers", str(document.get("workers", 0))),
        (
            "result store",
            f"{document.get('store', {}).get('entries', 0)} entries "
            f"(hit rate {rate(hits, hits + compiles)})",
        ),
        (
            "compiles",
            f"{compiles} (store hits {hits}, "
            f"coalesced {counters.get('service.coalesced', 0)})",
        ),
        (
            "stage cache",
            f"skipped {skipped} / ran {ran} "
            f"(warm {rate(skipped, skipped + ran)})",
        ),
        (
            "faults",
            f"retries {counters.get('service.retries', 0)}, "
            f"crashes {counters.get('service.crashes', 0)}, "
            f"timeouts {counters.get('service.timeouts', 0)}, "
            f"quarantined {counters.get('service.quarantined', 0)}, "
            f"rejected {counters.get('service.rejected', 0)}",
        ),
    ]
    lines = [f"{label:<14s} {value}" for label, value in rows]
    jobs = document.get("jobs", [])
    if jobs:
        lines.append("")
        lines.append(
            f"{'job':>9s}  {'design[config]':<28s} {'state':<9s} "
            f"{'att':>3s}  {'served from':<12s} trace"
        )
        for job in jobs:
            label = f"{job['design']}[{job['config']}]"
            trace_id = job.get("trace_id") or "-"
            lines.append(
                f"{job['id']:>9s}  {label:<28s} {job['state']:<9s} "
                f"{job['attempts']:>3d}  {job.get('served_from') or '-':<12s} "
                f"{trace_id}"
            )
    return "\n".join(lines)


def _render_cluster_table(document) -> str:
    """The human view of a router's cluster status: one row per node
    (queue depth, lane occupancy, in-flight, store size) plus the router's
    own cache/failover counters.  (``--json`` prints the raw document,
    which preserves every node's full health snapshot.)"""
    router = document.get("router", {})
    nodes = document.get("nodes", [])
    alive = sum(1 for node in nodes if node.get("state") == "alive")
    requests = router.get("requests", 0)
    cache_hits = router.get("cache_hits", 0)
    hit_rate = f"{100.0 * cache_hits / requests:.0f}%" if requests else "-"
    lines = [
        f"cluster        {len(nodes)} nodes ({alive} alive), "
        f"ring v{document.get('ring_version', 0)}, "
        f"replicas {document.get('replicas', 0)}",
        f"router         requests {requests}, cache hits {cache_hits} "
        f"({hit_rate}), failovers {router.get('failovers', 0)}, "
        f"busy redirects {router.get('busy_redirects', 0)}, "
        f"uptime {_format_uptime(router.get('uptime_s', 0))}",
        "",
        f"{'node':<10s} {'state':<7s} {'queue':>7s}  {'lanes h/n/l':<12s} "
        f"{'inflight':>8s} {'workers':>7s} {'store':>6s}  uptime",
    ]
    for node in nodes:
        vitals = node.get("vitals") or {}
        lanes = vitals.get("lanes") or {}
        lane_text = (
            f"{lanes.get('high', 0)}/{lanes.get('normal', 0)}/"
            f"{lanes.get('low', 0)}"
        )
        queue_text = (
            f"{vitals.get('queue_depth', 0)}/{vitals.get('queue_limit', 0)}"
            if vitals
            else "-"
        )
        lines.append(
            f"{node.get('node_id', '?'):<10s} {node.get('state', '?'):<7s} "
            f"{queue_text:>7s}  {lane_text:<12s} "
            f"{vitals.get('inflight', 0):>8d} {vitals.get('workers', 0):>7d} "
            f"{vitals.get('store_entries', 0):>6d}  "
            f"{_format_uptime(vitals.get('uptime_s', 0))}"
        )
    return "\n".join(lines)


def _cmd_cluster_serve(args) -> int:
    from repro.cluster import ClusterRouter, Membership, RouterServer

    journal = None
    if args.journal:
        from repro.obs.journal import EventJournal

        journal = EventJournal(args.journal, source="router")
    membership = Membership(
        replicas=args.replicas,
        heartbeat_s=args.heartbeat,
        max_misses=args.max_misses,
        journal=journal,
    )
    for node_id, host, port in _parse_peers(args.nodes):
        membership.add(node_id, host, port)
    router = ClusterRouter(
        membership, cache_entries=args.cache_entries, journal=journal
    )
    server = RouterServer(router, host=args.host, port=args.port)
    server.start()
    membership.start_heartbeat()
    print(
        f"repro cluster router listening on http://{server.host}:{server.port} "
        f"(nodes={len(membership.members())}, replicas={membership.replicas})",
        flush=True,
    )
    try:
        while server._thread is not None and server._thread.is_alive():
            server._thread.join(timeout=1)
    except KeyboardInterrupt:
        pass
    finally:
        membership.stop_heartbeat()
        server.stop()
    return 0


def _cmd_cluster_submit(args) -> int:
    # The router's /submit speaks the same protocol as a node's, so the
    # plain service client works — only the error mapping differs (503:
    # every replica of the digest was unreachable).
    return _cmd_submit(args)


def _cmd_cluster_status(args) -> int:
    args.cluster = True
    args.job_id = None
    return _cmd_status(args)


def _experiment_command(name: str):
    def run(args) -> int:
        import repro.experiments as exp

        runner = getattr(exp, f"run_{name}")
        formatter = getattr(exp, f"format_{name}")
        print(formatter(runner(engine=_engine_for(args))))
        return 0

    return run


def main(argv=None) -> int:
    from repro.dse.backends import BACKEND_NAMES

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--seed", type=int, default=2020)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark designs").set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="run the flow on one design")
    p_run.add_argument("design", choices=design_names())
    p_run.add_argument("--config", default="orig,full")
    p_run.add_argument("--verbose", action="store_true")
    p_run.add_argument(
        "--json", action="store_true",
        help="print a machine-readable run report instead of summaries",
    )
    p_run.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace_event JSON of the run(s) to PATH",
    )
    _add_flow_options(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_trace = sub.add_parser(
        "trace",
        help="run the flow and export a Chrome trace, or inspect a "
        "stored service trace (--request)",
    )
    p_trace.add_argument("design", nargs="?", default=None, choices=design_names())
    p_trace.add_argument(
        "--request", default=None, metavar="DIGEST",
        help="show the merged per-request trace stored by the service "
        "for this request digest instead of running the flow",
    )
    p_trace.add_argument("--config", default="orig,full")
    p_trace.add_argument(
        "--out", default=None, metavar="PATH",
        help="trace output path (default <design>_trace.json)",
    )
    _add_flow_options(p_trace)
    p_trace.set_defaults(fn=_cmd_trace)

    p_prof = sub.add_parser(
        "profile",
        help="rank flow hot paths by self-time over a parameter sweep",
    )
    p_prof.add_argument("design", choices=design_names(include_extra=True))
    p_prof.add_argument(
        "--sweep", required=True, metavar="A,B,...",
        help="comma-separated parameter values (at least two distinct), "
        "e.g. --sweep 1,2,4,8",
    )
    p_prof.add_argument(
        "--param", default=None, metavar="NAME",
        help="design parameter to sweep (default: the design's scale "
        "knob, e.g. unroll for genome)",
    )
    p_prof.add_argument("--config", default="full", choices=sorted(CONFIGS))
    p_prof.add_argument(
        "--top", type=int, default=10, metavar="K",
        help="number of hot paths to show (default 10)",
    )
    p_prof.add_argument(
        "--repeat", type=int, default=3, metavar="N",
        help="runs per factor; per-path minimum self-times are kept "
        "(default 3) — min-of-N suppresses scheduler and collector noise",
    )
    p_prof.add_argument(
        "--fail-on-slope", type=float, default=None, metavar="X",
        help="exit 1 when any path's fitted scaling exponent exceeds X "
        "(CI gate against super-linear regressions)",
    )
    p_prof.add_argument("--json", action="store_true")
    _add_flow_options(p_prof, jobs=False)
    # Profiling measures this run's wall clock; stage-cache hits would
    # replay stages in ~0ms and cross-run incremental reuse would skip the
    # very work being measured, so default both off.
    p_prof.set_defaults(fn=_cmd_profile, stage_cache="off", incremental="off")

    p_events = sub.add_parser(
        "events", help="read or follow the structured event journal"
    )
    p_events.add_argument(
        "--path", default=None, metavar="FILE",
        help="journal path (default $REPRO_CACHE_DIR/journal/events.jsonl)",
    )
    p_events.add_argument(
        "--follow", action="store_true", help="tail the journal (Ctrl-C to stop)"
    )
    p_events.add_argument(
        "--grep", default=None, metavar="TEXT",
        help="only events whose JSON rendering contains TEXT",
    )
    p_events.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="only the last N matching events",
    )
    p_events.add_argument("--json", action="store_true")
    p_events.set_defaults(fn=_cmd_events)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random programs vs reference, passes, cache",
    )
    # SUPPRESS keeps the global --seed (before the subcommand) working while
    # also accepting the more natural `repro fuzz --seed N` spelling.
    p_fuzz.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    p_fuzz.add_argument(
        "--count", type=int, default=50, metavar="K",
        help="number of programs to generate (default 50)",
    )
    p_fuzz.add_argument(
        "--budget", type=float, default=None, metavar="S",
        help="wall-clock budget in seconds; stop generating when exceeded",
    )
    p_fuzz.add_argument(
        "--checks", default="oracle,passes,cache", metavar="A,B,...",
        help="check groups to run: oracle, passes, cache "
             "(default: all three)",
    )
    p_fuzz.add_argument(
        "--corpus-dir", default=os.path.join("tests", "fuzz_corpus"),
        metavar="DIR",
        help="where shrunk reproducers are written "
             "(default tests/fuzz_corpus)",
    )
    p_fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="report divergences without minimizing them first",
    )
    p_fuzz.add_argument("--json", action="store_true")
    p_fuzz.set_defaults(fn=_cmd_fuzz)

    p_diag = sub.add_parser("diagnose", help="broadcast classification + advice")
    p_diag.add_argument("design", choices=design_names())
    _add_flow_options(p_diag, jobs=False)
    p_diag.set_defaults(fn=_cmd_diagnose)

    for alias in ("tune", "autotune"):
        p_tune = sub.add_parser(
            alias,
            help="auto-apply the paper's techniques (greedy §4 policy)"
            + ("" if alias == "tune" else "; alias of tune"),
        )
        p_tune.add_argument("design", choices=design_names(include_extra=True))
        _add_flow_options(p_tune, jobs=False)
        p_tune.set_defaults(fn=_cmd_tune)

    p_dse = sub.add_parser(
        "dse",
        help="design-space exploration: seeded population search over "
        "transform plans, configs and clock targets",
    )
    p_dse.add_argument("design", choices=design_names(include_extra=True))
    p_dse.add_argument(
        "--backend", default="inline", choices=BACKEND_NAMES,
        help="where compiles run: this process, engine worker processes, "
        "a flow-service daemon, or the cluster router (default inline)",
    )
    p_dse.add_argument(
        "--budget", type=int, default=24, metavar="N",
        help="maximum number of flow compiles (coalesced, duplicate and "
        "pruned points are free; default 24)",
    )
    p_dse.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, metavar="N",
        help="search + compile seed (same as the global --seed; "
        "default 2020)",
    )
    p_dse.add_argument(
        "--generations", type=int, default=8, metavar="N",
        help="maximum mutation rounds after generation 0 (default 8)",
    )
    p_dse.add_argument(
        "--set", action="append", default=[], metavar="NAME=VALUE",
        help="design-builder parameter override (repeatable)",
    )
    p_dse.add_argument("--host", default="127.0.0.1")
    p_dse.add_argument(
        "--port", type=int, default=9321,
        help="service daemon / cluster router port (default 9321)",
    )
    p_dse.add_argument(
        "--json", action="store_true",
        help="print the full machine-readable report",
    )
    _add_flow_options(p_dse)
    p_dse.set_defaults(fn=_cmd_dse)

    p_map = sub.add_parser("diemap", help="ASCII die map + worst broadcast")
    p_map.add_argument("design", choices=design_names(include_extra=True))
    p_map.add_argument("--config", default="orig", choices=sorted(CONFIGS))
    _add_flow_options(p_map, jobs=False)
    p_map.set_defaults(fn=_cmd_diemap)

    p_v = sub.add_parser("verilog", help="emit generated netlist as Verilog")
    p_v.add_argument("design", choices=design_names())
    p_v.add_argument("output")
    p_v.add_argument("--config", default="full", choices=sorted(CONFIGS))
    _add_flow_options(p_v, jobs=False)
    p_v.set_defaults(fn=_cmd_verilog)

    for exp_name in ("table1", "table2", "table3", "fig9", "fig15", "fig16", "fig17", "fig19"):
        p_exp = sub.add_parser(exp_name, help=f"reproduce {exp_name}")
        _add_flow_options(p_exp)
        p_exp.set_defaults(fn=_experiment_command(exp_name))

    p_all = sub.add_parser("all", help="run every experiment, print one report")
    p_all.add_argument("--out", default=None, help="also write the report here")
    p_all.add_argument(
        "--json", default=None, metavar="PATH",
        help="write a machine-readable report of every flow run to PATH",
    )
    p_all.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace_event JSON of every flow run to PATH",
    )
    _add_flow_options(p_all)

    def _cmd_all(args) -> int:
        from repro.experiments.summary import run_all

        tracer = obs.Tracer()
        with obs.activate(tracer):
            report = run_all(engine=_engine_for(args))
        text = report.render()
        print(text)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(obs.run_report(tracer), handle, indent=2)
                handle.write("\n")
            print(f"wrote flow-run report to {args.json}")
        if args.trace_out:
            obs.write_chrome_trace(args.trace_out, tracer)
            print(f"wrote Chrome trace to {args.trace_out}")
        if report.failures:
            for name, error in sorted(report.failures.items()):
                print(f"repro: error: {name} failed: {error}", file=sys.stderr)
            return 1
        return 0

    p_all.set_defaults(fn=_cmd_all)

    p_serve = sub.add_parser(
        "serve", help="run the flow-compilation daemon (see repro.service)"
    )
    p_serve.add_argument("--host", default=DEFAULT_HOST)
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT)
    p_serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent worker processes (default 2)",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=32, metavar="N",
        help="max queued jobs before submissions get HTTP 429 (default 32)",
    )
    p_serve.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="retry budget for crashed/hung workers (default 3)",
    )
    p_serve.add_argument(
        "--job-timeout", type=float, default=600.0, metavar="S",
        help="per-job wall-clock budget in seconds (default 600)",
    )
    p_serve.add_argument(
        "--store-max", type=int, default=256, metavar="N",
        help="result-store entry cap before LRU eviction (default 256)",
    )
    p_serve.add_argument(
        "--node-id", default=None, metavar="ID",
        help="cluster identity of this node (default node-<pid>)",
    )
    p_serve.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="result-store directory (default $REPRO_CACHE_DIR/results; "
        "cluster nodes sharing a cache dir need per-node store dirs)",
    )
    p_serve.add_argument(
        "--peers", default=None, metavar="ID=HOST:PORT,...",
        help="cluster peer list; local store misses then consult the "
        "digest's ring owners (GET /result/<digest>) before compiling",
    )
    p_serve.add_argument(
        "--journal", default=None, metavar="PATH",
        help="event-journal file (default $REPRO_CACHE_DIR/journal/"
        "events.jsonl; cluster nodes usually share one)",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit one compilation to a running daemon"
    )
    p_submit.add_argument("design", choices=design_names(include_extra=True))
    p_submit.add_argument("--config", default="orig", choices=sorted(CONFIGS))
    p_submit.add_argument(
        "--priority", default="normal", choices=("high", "normal", "low")
    )
    p_submit.add_argument(
        "--wait", action="store_true", help="block until the job finishes"
    )
    p_submit.add_argument("--json", action="store_true")
    p_submit.add_argument("--host", default=DEFAULT_HOST)
    p_submit.add_argument("--port", type=int, default=DEFAULT_PORT)
    _add_flow_options(p_submit, jobs=False)
    p_submit.set_defaults(fn=_cmd_submit)

    p_status = sub.add_parser("status", help="query a running daemon")
    p_status.add_argument(
        "job_id", nargs="?", default=None, help="job id (omit for the overview)"
    )
    p_status.add_argument("--json", action="store_true")
    p_status.add_argument(
        "--cluster", action="store_true",
        help="point --host/--port at a cluster router and render the "
        "aggregated per-node table (--json keeps the raw per-node "
        "snapshots)",
    )
    p_status.add_argument("--host", default=DEFAULT_HOST)
    p_status.add_argument("--port", type=int, default=DEFAULT_PORT)
    p_status.set_defaults(fn=_cmd_status)

    p_cluster = sub.add_parser(
        "cluster", help="multi-node cluster: router, status, submit"
    )
    cluster_sub = p_cluster.add_subparsers(dest="cluster_command", required=True)

    p_cserve = cluster_sub.add_parser(
        "serve", help="run the consistent-hash router over a node fleet"
    )
    p_cserve.add_argument(
        "--nodes", required=True, metavar="ID=HOST:PORT,...",
        help="member daemons (started separately with repro serve)",
    )
    p_cserve.add_argument("--host", default=DEFAULT_HOST)
    p_cserve.add_argument(
        "--port", type=int, default=DEFAULT_PORT + 1,
        help=f"router port (default {DEFAULT_PORT + 1})",
    )
    p_cserve.add_argument(
        "--replicas", type=int, default=2, metavar="N",
        help="owners per digest: primary + N-1 backups (default 2)",
    )
    p_cserve.add_argument(
        "--heartbeat", type=float, default=0.5, metavar="S",
        help="health-probe interval in seconds (default 0.5)",
    )
    p_cserve.add_argument(
        "--max-misses", type=int, default=3, metavar="N",
        help="missed heartbeats before a node leaves the ring (default 3)",
    )
    p_cserve.add_argument(
        "--cache-entries", type=int, default=512, metavar="N",
        help="router hot-digest cache bound (default 512)",
    )
    p_cserve.add_argument(
        "--journal", default=None, metavar="PATH",
        help="event-journal file for membership/failover events",
    )
    p_cserve.set_defaults(fn=_cmd_cluster_serve)

    p_csubmit = cluster_sub.add_parser(
        "submit", help="submit one compilation through the router"
    )
    p_csubmit.add_argument("design", choices=design_names(include_extra=True))
    p_csubmit.add_argument("--config", default="orig", choices=sorted(CONFIGS))
    p_csubmit.add_argument(
        "--priority", default="normal", choices=("high", "normal", "low")
    )
    p_csubmit.add_argument(
        "--wait", action="store_true", help="block until the job finishes"
    )
    p_csubmit.add_argument("--json", action="store_true")
    p_csubmit.add_argument("--host", default=DEFAULT_HOST)
    p_csubmit.add_argument(
        "--port", type=int, default=DEFAULT_PORT + 1,
        help=f"router port (default {DEFAULT_PORT + 1})",
    )
    _add_flow_options(p_csubmit, jobs=False)
    p_csubmit.set_defaults(fn=_cmd_cluster_submit)

    p_cstatus = cluster_sub.add_parser(
        "status", help="aggregated per-node cluster status from the router"
    )
    p_cstatus.add_argument("--json", action="store_true")
    p_cstatus.add_argument("--host", default=DEFAULT_HOST)
    p_cstatus.add_argument(
        "--port", type=int, default=DEFAULT_PORT + 1,
        help=f"router port (default {DEFAULT_PORT + 1})",
    )
    p_cstatus.set_defaults(fn=_cmd_cluster_status)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except CliUsageError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
