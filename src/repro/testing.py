"""Public test helpers.

Downstream users writing their own passes or delay models need the same
scaffolding our test suite uses: a fast synthetic calibration table with
the right qualitative shape, and small designs that exhibit each broadcast
class.  Shipping them as API keeps user test suites from re-deriving them.
"""

from __future__ import annotations

from repro.delay.calibrated import CalibrationTable
from repro.ir.builder import DFGBuilder
from repro.ir.program import Buffer, Design, Fifo, Kernel, Loop
from repro.ir.types import i32


def synthetic_calibration() -> CalibrationTable:
    """A hand-written calibration table with realistic shape.

    Matches the HLS predictions at broadcast factor 1 and grows with the
    factor, so ``max(hls, measured)`` behaves like a real characterization
    without running any skeleton placements.
    """
    table = CalibrationTable()
    curves = {
        "add_i32": [(1, 0.78), (8, 1.1), (64, 2.1), (256, 3.4), (1024, 7.5)],
        "sub_i32": [(1, 0.78), (8, 1.1), (64, 2.1), (256, 3.4), (1024, 7.5)],
        "mul_i32": [(1, 2.9), (8, 3.2), (64, 4.2), (256, 5.5), (1024, 9.0)],
        "add_f32": [(1, 2.9), (8, 3.1), (64, 4.0), (256, 5.2), (1024, 8.5)],
        "sub_f32": [(1, 2.9), (8, 3.1), (64, 4.0), (256, 5.2), (1024, 8.5)],
        "mul_f32": [(1, 2.6), (8, 2.9), (64, 4.4), (256, 6.0), (1024, 9.5)],
        "load_bram": [(1, 2.0), (8, 2.8), (64, 4.3), (256, 6.0), (1024, 9.0)],
        "store_bram": [(1, 1.6), (8, 2.6), (64, 4.2), (256, 6.2), (1024, 9.5)],
    }
    for key, points in curves.items():
        for factor, delay in points:
            table.add(key, factor, delay)
    return table


def stream_to_buffer_design(depth: int = 8192, unroll: int = 1) -> Design:
    """A small fifo → buffer design (memory + pipeline-control broadcasts).

    At large ``depth`` this is a miniature of the paper's Fig. 18 stream
    buffer; it is the standard subject for flow-level tests.
    """
    design = Design("mini", device="aws-f1", meta={"clock_mhz": 300})
    fin = design.add_fifo(Fifo("fin", i32, depth=8, external=True))
    buf = design.add_buffer(Buffer("buf", i32, depth=depth))
    b = DFGBuilder("body")
    data = b.fifo_read(fin)
    idx = b.input("i", i32)
    one = b.const(1, i32)
    b.store(buf, idx, b.add(data, one))
    kernel = Kernel("k")
    kernel.add_loop(Loop("l", b.build(), trip_count=depth, pipeline=True, unroll=unroll))
    design.add_kernel(kernel)
    design.verify()
    return design


def unrolled_broadcast_design(unroll: int = 16) -> Design:
    """A genome-style unrolled loop with one loop-invariant broadcast."""
    design = Design("unrolled", device="aws-f1", meta={"clock_mhz": 300})
    out = design.add_fifo(Fifo("out", i32, depth=8, external=True))
    b = DFGBuilder("body")
    shared = b.input("shared", i32, loop_invariant=True)
    local = b.input("local", i32)
    d = b.sub(local, shared, name="d")
    s = b.add(d, b.const(3, i32), name="s")
    b.fifo_write(out, s)
    kernel = Kernel("k")
    kernel.add_loop(
        Loop("l", b.build(), trip_count=unroll, pipeline=True, unroll=unroll)
    )
    design.add_kernel(kernel)
    design.verify()
    return design


def pe_farm_design(pes: int = 8, dynamic_index: int = -1) -> Design:
    """Parallel sub-module instances with done/start sync (Fig. 5b/6b)."""
    design = Design("farm", device="aws-f1", meta={"clock_mhz": 300})
    out = design.add_fifo(Fifo("out", i32, depth=8, external=True))
    b = DFGBuilder("body")
    seed = b.input("seed", i32)
    results = []
    for i in range(pes):
        call = b.call(
            f"PE_{i}",
            [seed],
            i32,
            latency=10 + (3 * i) % 11,
            dynamic_latency=i == dynamic_index,
            name=f"r{i}",
        )
        call.attrs["area"] = {"luts": 400, "ffs": 400}
        results.append(call.result)
    b.fifo_write(out, b.reduce(results, "or"))
    kernel = Kernel("k")
    kernel.add_loop(Loop("farm", b.build(), trip_count=256, pipeline=False))
    design.add_kernel(kernel)
    design.verify()
    return design
