"""Differential, metamorphic and cache-determinism checks.

Four invariants, each a family of checks over one generated program:

* **oracle** — the cycle-stepped :class:`~repro.sim.dataflow.DataflowSim`
  must produce exactly the outputs (and final buffer contents) of the
  sequential reference executor.  FIFO depths, firing interleavings and
  stalls may only ever change *timing*.
* **passes** — every IR transform the flow applies (pragma lowering /
  unrolling, DCE, CSE, synchronization pruning, broadcast-tree insertion)
  must be semantics-preserving: the transformed design, simulated on the
  same stimuli, must match the untransformed one.
* **cache** — compiling the same program cold, warm (stage-artifact store
  hit) and with caching disabled must yield identical
  :meth:`~repro.flow.FlowResult.result_digest` values.
* **incremental** — recompiling at a bumped clock on a warm incremental
  flow (per-loop scheduling memos, RTL tape replay, placement trajectory
  reuse, persistent stage overlay) must be bit-identical to compiling the
  bumped clock from scratch with every reuse path disabled.

:func:`run_campaign` drives a whole seeded campaign, shrinks every failure
to a minimal reproducer and writes it to the corpus directory.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.flow import Flow
from repro.ir.broadcast_tree import build_broadcast_tree
from repro.ir.passes import apply_pragmas, cse, dce
from repro.ir.program import Design
from repro.opt import CONFIG_LABELS
from repro.pipeline.store import StageArtifactStore
from repro.sim.dataflow import DataflowSim
from repro.sync.pruning import prune_synchronization
from repro.testing import synthetic_calibration

from repro.fuzz.gen import generate_spec
from repro.fuzz.reference import run_reference
from repro.fuzz.shrink import shrink
from repro.fuzz.spec import ProgramSpec, SpecError, build_program

#: Schema tag of corpus reproducer documents.
CORPUS_SCHEMA = "repro-fuzz-corpus/1"

#: Check groups accepted by :func:`run_checks` / the ``repro fuzz`` CLI.
CHECK_GROUPS = ("oracle", "passes", "cache", "incremental")


@dataclass
class Divergence:
    """One invariant violation on one program."""

    program: str
    check: str
    detail: str
    spec: ProgramSpec
    shrunk: Optional[ProgramSpec] = None
    corpus_path: str = ""

    def summary(self) -> str:
        size = (self.shrunk or self.spec).size()
        return (
            f"{self.program} [{self.check}] {self.detail}"
            + (f" (shrunk to {size[0]} ops)" if self.shrunk else "")
        )


@dataclass
class CampaignReport:
    """Outcome of one fuzzing campaign."""

    seed: int
    requested: int
    checks: Tuple[str, ...]
    programs: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    elapsed_s: float = 0.0
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro-fuzz-report/1",
            "seed": self.seed,
            "requested": self.requested,
            "programs": self.programs,
            "checks": list(self.checks),
            "elapsed_s": round(self.elapsed_s, 3),
            "budget_exhausted": self.budget_exhausted,
            "divergences": [
                {
                    "program": d.program,
                    "check": d.check,
                    "detail": d.detail,
                    "corpus_path": d.corpus_path,
                }
                for d in self.divergences
            ],
        }


# ----------------------------------------------------------------------
# comparison helpers
def _first_diff(a: Sequence[object], b: Sequence[object]) -> str:
    if len(a) != len(b):
        return f"length {len(a)} vs {len(b)}"
    for k, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return f"element {k}: {x!r} vs {y!r}"
    return "equal"


def _diff_maps(
    kind: str, a: Dict[str, List[object]], b: Dict[str, List[object]]
) -> Optional[str]:
    for name in sorted(set(a) | set(b)):
        left, right = list(a.get(name, [])), list(b.get(name, []))
        if left != right:
            return f"{kind} {name!r}: {_first_diff(left, right)}"
    return None


# ----------------------------------------------------------------------
# the three check families
def check_oracle(spec: ProgramSpec) -> List[Divergence]:
    """Sequential reference vs. concurrent dataflow simulation."""
    built = build_program(spec)
    reference = run_reference(built.design, built.stimuli, params=built.params)
    sim = DataflowSim(
        build_program(spec).design,
        {k: list(v) for k, v in built.stimuli.items()},
        params=built.params,
    )
    trace = sim.run()
    mismatch = _diff_maps("output", reference.outputs, trace.outputs)
    if mismatch is None:
        sim_buffers = {k: list(v) for k, v in sim.evaluator.buffers.items()}
        mismatch = _diff_maps("buffer", reference.buffers, sim_buffers)
    if mismatch is None:
        return []
    return [Divergence(spec.name, "oracle", mismatch, spec)]


def _transform_pragmas(design: Design) -> Optional[Design]:
    return apply_pragmas(design)


def _transform_dce(design: Design) -> Optional[Design]:
    clone = design.clone()
    for _kernel, loop in clone.all_loops():
        dce(loop.body)
    return clone


def _transform_cse(design: Design) -> Optional[Design]:
    clone = design.clone()
    for _kernel, loop in clone.all_loops():
        cse(loop.body)
    return clone


def _transform_prune(design: Design) -> Optional[Design]:
    return prune_synchronization(design)[0]


def _transform_broadcast(design: Design) -> Optional[Design]:
    """Insert a register tree under the highest-fanout value, if any."""
    clone = design.clone()
    best = None
    for _kernel, loop in clone.all_loops():
        for value in loop.body.values.values():
            fanout = len(value.uses)
            if fanout >= 2 and (best is None or fanout > best[2]):
                best = (loop.body, value, fanout)
    if best is None:
        return None  # nothing to tree up; skip
    build_broadcast_tree(best[0], best[1], arity=2)
    return clone


def _library_transform(name: str) -> Callable[[Design], Optional[Design]]:
    """A metamorphic check for one transform-library pass.

    Applies the pass's first enumerated candidate (candidate order is
    deterministic for a given design), or skips the program when the pass
    finds nothing applicable.  Candidates carry their own applicability
    guards (trip divisibility, FIFO depth vs. merged-firing rate, buffer
    privacy), so an applicable candidate must preserve behaviour — any
    divergence is a transform bug, not a bad program.
    """

    def apply_first(design: Design) -> Optional[Design]:
        from repro.ir.transforms import transform_type

        candidates = transform_type(name).candidates(design)
        if not candidates:
            return None
        return candidates[0].apply(design)

    return apply_first


#: Metamorphic transforms: name → design transform (None return = skip).
PASS_TRANSFORMS: Dict[str, Callable[[Design], Optional[Design]]] = {
    "pragmas": _transform_pragmas,
    "dce": _transform_dce,
    "cse": _transform_cse,
    "prune": _transform_prune,
    "broadcast": _transform_broadcast,
    "unroll": _library_transform("unroll"),
    "tile": _library_transform("tile"),
    "widen": _library_transform("widen"),
    "stream": _library_transform("stream"),
    "reuse": _library_transform("reuse"),
}


def check_passes(spec: ProgramSpec) -> List[Divergence]:
    """Each IR transform must leave simulated behaviour unchanged."""
    divergences: List[Divergence] = []
    for name, transform in PASS_TRANSFORMS.items():
        base = build_program(spec)
        transformed = transform(build_program(spec).design)
        if transformed is None:
            continue
        sim_a = DataflowSim(
            base.design,
            {k: list(v) for k, v in base.stimuli.items()},
            params=base.params,
        )
        sim_b = DataflowSim(
            transformed,
            {k: list(v) for k, v in base.stimuli.items()},
            params=base.params,
        )
        trace_a, trace_b = sim_a.run(), sim_b.run()
        mismatch = _diff_maps("output", trace_a.outputs, trace_b.outputs)
        if mismatch is None:
            mismatch = _diff_maps(
                "buffer",
                {k: list(v) for k, v in sim_a.evaluator.buffers.items()},
                {k: list(v) for k, v in sim_b.evaluator.buffers.items()},
            )
        if mismatch is not None:
            divergences.append(
                Divergence(spec.name, f"passes:{name}", mismatch, spec)
            )
    return divergences


def check_cache(
    spec: ProgramSpec,
    store: Optional[StageArtifactStore] = None,
    calibration=None,
) -> List[Divergence]:
    """Cold, warm and cache-disabled compiles must agree bit-for-bit."""
    calibration = calibration or synthetic_calibration()
    config = CONFIG_LABELS.get(spec.config)
    if config is None:
        raise SpecError(f"{spec.name}: unknown config label {spec.config!r}")
    if store is None:
        store = StageArtifactStore(
            root=tempfile.mkdtemp(prefix="repro-fuzz-stages-")
        )
    cached_flow = Flow(
        clock_mhz=spec.clock_mhz,
        seed=2020,
        calibration=calibration,
        stage_cache=store,
    )
    cold = cached_flow.run(build_program(spec).design, config=config)
    warm = cached_flow.run(build_program(spec).design, config=config)
    uncached_flow = Flow(
        clock_mhz=spec.clock_mhz,
        seed=2020,
        calibration=calibration,
        stage_cache="off",
    )
    off = uncached_flow.run(build_program(spec).design, config=config)
    digests = {"cold": cold.result_digest(), "warm": warm.result_digest(),
               "off": off.result_digest()}
    if len(set(digests.values())) == 1:
        return []
    detail = "result digests differ: " + ", ".join(
        f"{k}={v[:12]}" for k, v in digests.items()
    )
    return [Divergence(spec.name, "cache", detail, spec)]


def check_incremental(spec: ProgramSpec, calibration=None) -> List[Divergence]:
    """Incremental recompilation must be bit-identical to from-scratch.

    One warm flow compiles the program at its spec'd clock, then again at
    a bumped clock — the second run rides the per-loop scheduling memo,
    the RTL tape, the placement trajectory, and the persistent stage
    overlay.  A fresh flow with every reuse path disabled compiles the
    bumped clock from scratch; the two bumped-clock results must agree
    bit-for-bit.
    """
    calibration = calibration or synthetic_calibration()
    config = CONFIG_LABELS.get(spec.config)
    if config is None:
        raise SpecError(f"{spec.name}: unknown config label {spec.config!r}")
    bumped = spec.clock_mhz + 83  # off the spec'd clock, off common targets
    warm_flow = Flow(
        clock_mhz=spec.clock_mhz,
        seed=2020,
        calibration=calibration,
        stage_cache="off",
        incremental=True,
    )
    warm_flow.run(build_program(spec).design, config=config)
    warm_flow.clock_mhz = bumped
    warm = warm_flow.run(build_program(spec).design, config=config)
    scratch_flow = Flow(
        clock_mhz=bumped,
        seed=2020,
        calibration=calibration,
        stage_cache="off",
        incremental=False,
    )
    scratch = scratch_flow.run(build_program(spec).design, config=config)
    digests = {
        "incremental": warm.result_digest(),
        "scratch": scratch.result_digest(),
    }
    if len(set(digests.values())) == 1:
        return []
    detail = "result digests differ: " + ", ".join(
        f"{k}={v[:12]}" for k, v in digests.items()
    )
    return [Divergence(spec.name, "incremental", detail, spec)]


def run_checks(
    spec: ProgramSpec,
    checks: Sequence[str] = CHECK_GROUPS,
    store: Optional[StageArtifactStore] = None,
    calibration=None,
) -> List[Divergence]:
    """Run the selected check groups on one program.

    :class:`SpecError` from building the *input* spec propagates (the
    caller sent an invalid program); any other exception inside a check is
    itself a reportable divergence (``error:<check>``) — invariants must
    not only hold, checking them must not crash.
    """
    build_program(spec)  # surface SpecError before blaming a check
    divergences: List[Divergence] = []
    for check in checks:
        if check not in CHECK_GROUPS:
            raise ReproError(
                f"unknown fuzz check {check!r} (expected one of {CHECK_GROUPS})"
            )
        try:
            if check == "oracle":
                divergences.extend(check_oracle(spec))
            elif check == "passes":
                divergences.extend(check_passes(spec))
            elif check == "cache":
                divergences.extend(
                    check_cache(spec, store=store, calibration=calibration)
                )
            elif check == "incremental":
                divergences.extend(
                    check_incremental(spec, calibration=calibration)
                )
        except Exception as exc:  # noqa: BLE001 — crash == finding
            divergences.append(
                Divergence(
                    spec.name,
                    f"error:{check}",
                    f"{type(exc).__name__}: {exc}",
                    spec,
                )
            )
    return divergences


# ----------------------------------------------------------------------
# campaign driver
def _write_corpus_entry(
    corpus_dir: str, divergence: Divergence
) -> str:
    os.makedirs(corpus_dir, exist_ok=True)
    spec = divergence.shrunk or divergence.spec
    safe_check = divergence.check.replace(":", "_").replace("/", "_")
    path = os.path.join(corpus_dir, f"{spec.name}__{safe_check}.json")
    head, _sep, tail = divergence.check.partition(":")
    group = tail if head == "error" else head
    document = {
        "schema": CORPUS_SCHEMA,
        "note": f"auto-shrunk reproducer for {divergence.check}: "
                f"{divergence.detail}",
        "checks": [group],
        "program": spec.to_dict(),
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def run_campaign(
    seed: int,
    count: int,
    checks: Sequence[str] = CHECK_GROUPS,
    budget_s: Optional[float] = None,
    corpus_dir: Optional[str] = None,
    shrink_failures: bool = True,
    calibration=None,
    log: Optional[Callable[[str], None]] = None,
) -> CampaignReport:
    """Generate and check ``count`` programs from ``seed``.

    One stage-artifact store is shared across the whole campaign, so the
    warm-path check also proves different programs never collide in the
    content-addressed store.  Failures are shrunk (greedy, see
    :mod:`repro.fuzz.shrink`) and written to ``corpus_dir``.
    """
    say = log or (lambda _msg: None)
    checks = tuple(checks)
    report = CampaignReport(seed=seed, requested=count, checks=checks)
    calibration = calibration or synthetic_calibration()
    store = (
        StageArtifactStore(root=tempfile.mkdtemp(prefix="repro-fuzz-stages-"))
        if "cache" in checks
        else None
    )
    started = time.perf_counter()
    for index in range(count):
        if budget_s is not None and time.perf_counter() - started > budget_s:
            report.budget_exhausted = True
            say(f"budget of {budget_s:.0f}s exhausted after {index} programs")
            break
        spec = generate_spec(seed, index)
        found = run_checks(spec, checks=checks, store=store, calibration=calibration)
        report.programs += 1
        for divergence in found:
            say(f"DIVERGENCE {divergence.summary()}")
            if shrink_failures:
                target = divergence.check

                def still_fails(candidate: ProgramSpec, _target=target) -> bool:
                    return any(
                        d.check == _target
                        for d in run_checks(
                            candidate,
                            checks=checks,
                            store=store,
                            calibration=calibration,
                        )
                    )

                divergence.shrunk = shrink(spec, still_fails)
            if corpus_dir is not None:
                divergence.corpus_path = _write_corpus_entry(corpus_dir, divergence)
                say(f"  reproducer: {divergence.corpus_path}")
            report.divergences.append(divergence)
    report.elapsed_s = time.perf_counter() - started
    return report
