"""Differential fuzzing and invariant harness for the repro toolchain.

Generates seeded random dataflow programs (:mod:`repro.fuzz.gen`), checks
them with a differential oracle, metamorphic pass-equivalence and cache
determinism (:mod:`repro.fuzz.harness`), and shrinks failures to minimal
corpus reproducers (:mod:`repro.fuzz.shrink`).
"""

from repro.fuzz.gen import generate_spec
from repro.fuzz.harness import (
    CampaignReport,
    Divergence,
    run_campaign,
    run_checks,
)
from repro.fuzz.reference import ReferenceResult, output_fifos, run_reference
from repro.fuzz.shrink import shrink
from repro.fuzz.spec import (
    PROGRAM_SCHEMA,
    BufferSpec,
    BuiltProgram,
    FifoSpec,
    KernelSpec,
    LoopSpec,
    OpSpec,
    ProgramSpec,
    SpecError,
    build_program,
)

__all__ = [
    "PROGRAM_SCHEMA",
    "BufferSpec",
    "BuiltProgram",
    "CampaignReport",
    "Divergence",
    "FifoSpec",
    "KernelSpec",
    "LoopSpec",
    "OpSpec",
    "ProgramSpec",
    "ReferenceResult",
    "SpecError",
    "build_program",
    "generate_spec",
    "output_fifos",
    "run_campaign",
    "run_checks",
    "run_reference",
    "shrink",
]
