"""Greedy reduction of failing fuzz programs.

Given a spec and a predicate ("does this candidate still fail the same
check?"), repeatedly try structure-removing mutations — drop a kernel,
halve every trip count, clear unroll pragmas, delete single ops, replace
computed values with constants — and keep any candidate that still fails.
Every accepted step strictly decreases :meth:`ProgramSpec.size`, so the
process terminates at a local minimum: the corpus reproducer.

Candidates that fail to *build* (:class:`SpecError` — e.g. deleting an op
another op still references) are simply invalid mutations and are skipped;
only a genuine re-failure of the original check is accepted.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.ir.types import DataType

from repro.fuzz.spec import OpSpec, ProgramSpec, SpecError, build_program


def _copy(spec: ProgramSpec) -> ProgramSpec:
    return ProgramSpec.from_dict(spec.to_dict())


def _drop_kernel(spec: ProgramSpec, index: int) -> Optional[ProgramSpec]:
    """Remove kernel ``index``, re-plumbing orphaned internal FIFOs.

    FIFOs that lose their writer become external inputs fed with zeros;
    FIFOs that lose their reader become external outputs; FIFOs touched by
    nobody disappear along with their stimuli.
    """
    if len(spec.kernels) <= 1:
        return None
    candidate = _copy(spec)
    candidate.kernels.pop(index)

    # reads-per-program and writer presence, over the surviving kernels
    total_reads: Dict[str, int] = {}
    written: set = set()
    for kernel in candidate.kernels:
        for loop in kernel.loops:
            for op in loop.ops:
                if op.kind == "fifo_read":
                    total_reads[op.fifo] = (
                        total_reads.get(op.fifo, 0) + loop.trip_count
                    )
                elif op.kind == "fifo_write":
                    written.add(op.fifo)

    kept = []
    for fifo in candidate.fifos:
        reads = total_reads.get(fifo.name, 0)
        writes = fifo.name in written
        if not reads and not writes:
            candidate.stimuli.pop(fifo.name, None)
            continue
        if not writes:  # reader survives: feed it from outside
            fifo.external = True
            if fifo.name not in candidate.stimuli:
                zero = 0.0 if DataType.parse(fifo.type).is_float else 0
                candidate.stimuli[fifo.name] = [zero] * reads
        elif not reads:  # writer survives: expose it as an output
            fifo.external = True
        kept.append(fifo)
    candidate.fifos = kept
    return candidate


def _halve_trips(spec: ProgramSpec) -> Optional[ProgramSpec]:
    """Halve every trip count together (keeps kernels rate-matched)."""
    trips = {l.trip_count for k in spec.kernels for l in k.loops}
    if len(trips) != 1:
        return None
    (trip,) = trips
    if trip < 2 or trip % 2:
        return None
    new_trip = trip // 2
    for kernel in spec.kernels:
        for loop in kernel.loops:
            if loop.unroll > 1 and new_trip % loop.unroll:
                return None
    candidate = _copy(spec)
    for kernel in candidate.kernels:
        for loop in kernel.loops:
            loop.trip_count = new_trip
    candidate.stimuli = {
        name: items[: len(items) // 2] for name, items in candidate.stimuli.items()
    }
    # buffers sized to the trip count shrink with it (keeps size() honest)
    for buffer in candidate.buffers:
        if buffer.depth == trip:
            buffer.depth = new_trip
    return candidate


def _drop_unused_decls(spec: ProgramSpec) -> Optional[ProgramSpec]:
    """Strip FIFOs/buffers (and stimuli) no surviving op references."""
    used_fifos: set = set()
    used_buffers: set = set()
    for kernel in spec.kernels:
        for loop in kernel.loops:
            for op in loop.ops:
                if op.fifo:
                    used_fifos.add(op.fifo)
                if op.buffer:
                    used_buffers.add(op.buffer)
    if all(f.name in used_fifos for f in spec.fifos) and all(
        b.name in used_buffers for b in spec.buffers
    ):
        return None
    candidate = _copy(spec)
    candidate.fifos = [f for f in candidate.fifos if f.name in used_fifos]
    candidate.buffers = [b for b in candidate.buffers if b.name in used_buffers]
    candidate.stimuli = {
        name: items
        for name, items in candidate.stimuli.items()
        if name in used_fifos
    }
    return candidate


def _value_types(spec: ProgramSpec) -> Dict[Tuple[str, str, str], str]:
    """(kernel, loop, value-name) → type string, from one trial build."""
    built = build_program(spec)
    types: Dict[Tuple[str, str, str], str] = {}
    for kernel, loop in built.design.all_loops():
        for name, value in loop.body.values.items():
            types[(kernel.name, loop.name, name)] = str(value.type)
    return types


def _candidates(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    # most aggressive first: whole kernels, then trips, then single ops
    for k in reversed(range(len(spec.kernels))):
        candidate = _drop_kernel(spec, k)
        if candidate is not None:
            yield candidate
    candidate = _halve_trips(spec)
    if candidate is not None:
        yield candidate
    for ki, kernel in enumerate(spec.kernels):
        for li, loop in enumerate(kernel.loops):
            if loop.unroll > 1:
                candidate = _copy(spec)
                candidate.kernels[ki].loops[li].unroll = 1
                yield candidate
    for ki, kernel in enumerate(spec.kernels):
        for li, loop in enumerate(kernel.loops):
            for oi in reversed(range(len(loop.ops))):
                candidate = _copy(spec)
                candidate.kernels[ki].loops[li].ops.pop(oi)
                yield candidate
    try:
        types = _value_types(spec)
    except SpecError:
        return
    for ki, kernel in enumerate(spec.kernels):
        for li, loop in enumerate(kernel.loops):
            for oi, op in enumerate(loop.ops):
                if not op.name or op.kind in ("const", "input"):
                    continue
                type_str = types.get((kernel.name, loop.name, op.name))
                if type_str is None or type_str == "i1":
                    continue
                zero = 0.0 if DataType.parse(type_str).is_float else 0
                candidate = _copy(spec)
                candidate.kernels[ki].loops[li].ops[oi] = OpSpec(
                    kind="const", name=op.name, value=zero, type=type_str
                )
                yield candidate


def shrink(
    spec: ProgramSpec,
    still_fails: Callable[[ProgramSpec], bool],
    max_evals: int = 400,
) -> Optional[ProgramSpec]:
    """Greedily minimize ``spec`` under ``still_fails``.

    Returns the smallest failing spec found (possibly ``spec`` itself), or
    ``None`` when the original does not reproduce under the predicate —
    a flaky failure the caller should report unshrunk.
    """
    try:
        if not still_fails(spec):
            return None
    except SpecError:
        return None
    current = spec
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in _candidates(current):
            if candidate.size() >= current.size():
                continue
            evals += 1
            try:
                if still_fails(candidate):
                    current = candidate
                    improved = True
                    break
            except SpecError:
                continue
            if evals >= max_evals:
                break
    # Final cosmetic sweep: declarations nothing references don't affect
    # size(), so the greedy loop never removes them — do it once here.
    cleaned = _drop_unused_decls(current)
    if cleaned is not None:
        try:
            if still_fails(cleaned):
                return cleaned
        except SpecError:
            pass
    return current
