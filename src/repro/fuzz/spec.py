"""JSON-serializable fuzz program specifications.

A :class:`ProgramSpec` is the *genotype* of one fuzzed design: a flat,
purely-data description of FIFOs, buffers, kernels, loop bodies (as linear
op lists over named SSA values) and input stimuli.  Specs — not built
:class:`~repro.ir.program.Design` objects — are what the generator emits,
the shrinker mutates, and the corpus stores, because they survive a JSON
round trip byte-for-byte and rebuild deterministically.

:func:`build_program` is the phenotype mapping: it lowers a spec into a
verified design plus its stimuli.  Any structural or type error raises
:class:`SpecError`, which the shrinker uses to reject invalid mutation
candidates.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import IRError, ReproError, VerificationError
from repro.ir.builder import DFGBuilder
from repro.ir.program import Buffer, Design, Fifo, Kernel, Loop
from repro.ir.types import DataType, i1, i32
from repro.ir.values import Value

#: Schema tag of serialized fuzz programs.
PROGRAM_SCHEMA = "repro-fuzz-program/1"

#: Binary op names accepted by ``OpSpec(kind="binop")``.
BINOPS = ("add", "sub", "mul", "div", "and", "or", "xor", "shl", "shr")

#: Comparison kinds accepted by ``OpSpec(kind="cmp")``.
CMPS = ("eq", "ne", "lt", "le", "gt", "ge")

#: Cast kinds accepted by ``OpSpec(kind="cast")``.
CASTS = ("zext", "sext", "trunc")


class SpecError(ReproError):
    """A program spec cannot be built into a valid design."""


@dataclass
class OpSpec:
    """One operation of a loop body, referencing values by name.

    ``kind`` selects the shape; unused fields stay at their defaults:

    * ``input``      — declare a body input (``type``, ``invariant``);
    * ``const``      — ``value`` of ``type``;
    * ``binop``      — ``op`` in :data:`BINOPS`, ``args = [a, b]``;
    * ``not``        — ``args = [a]``;
    * ``cmp``        — ``op`` in :data:`CMPS`, ``args = [a, b]``;
    * ``select``     — ``args = [cond, a, b]``;
    * ``slice``      — ``args = [a]``, ``lsb``, result ``type``;
    * ``cast``       — ``op`` in :data:`CASTS`, ``args = [a]``, ``type``;
    * ``reg``        — ``args = [a]``;
    * ``fifo_read``  — ``fifo``;
    * ``fifo_write`` — ``fifo``, ``args = [data]``;
    * ``load``       — ``buffer``, ``args = [addr]``;
    * ``store``      — ``buffer``, ``args = [addr, data]``.
    """

    kind: str
    name: str = ""
    op: str = ""
    args: List[str] = field(default_factory=list)
    type: str = ""
    value: object = 0
    lsb: int = 0
    fifo: str = ""
    buffer: str = ""
    invariant: bool = False


@dataclass
class LoopSpec:
    name: str
    trip_count: int
    ops: List[OpSpec] = field(default_factory=list)
    pipeline: bool = True
    unroll: int = 1


@dataclass
class KernelSpec:
    name: str
    loops: List[LoopSpec] = field(default_factory=list)


@dataclass
class FifoSpec:
    name: str
    type: str
    depth: int = 16
    external: bool = False


@dataclass
class BufferSpec:
    name: str
    type: str
    depth: int = 16


@dataclass
class ProgramSpec:
    """The complete, serializable description of one fuzzed program."""

    name: str
    seed: int = 0
    config: str = "orig"
    dataflow: bool = True
    clock_mhz: float = 300.0
    fifos: List[FifoSpec] = field(default_factory=list)
    buffers: List[BufferSpec] = field(default_factory=list)
    kernels: List[KernelSpec] = field(default_factory=list)
    stimuli: Dict[str, List[object]] = field(default_factory=dict)
    params: Dict[str, object] = field(default_factory=dict)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {"schema": PROGRAM_SCHEMA, **asdict(self)}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_dict(document: Dict[str, object]) -> "ProgramSpec":
        document = dict(document)
        schema = document.pop("schema", PROGRAM_SCHEMA)
        if schema != PROGRAM_SCHEMA:
            raise SpecError(f"unknown fuzz program schema {schema!r}")
        try:
            return ProgramSpec(
                name=document["name"],
                seed=document.get("seed", 0),
                config=document.get("config", "orig"),
                dataflow=document.get("dataflow", True),
                clock_mhz=document.get("clock_mhz", 300.0),
                fifos=[FifoSpec(**f) for f in document.get("fifos", [])],
                buffers=[BufferSpec(**b) for b in document.get("buffers", [])],
                kernels=[
                    KernelSpec(
                        name=k["name"],
                        loops=[
                            LoopSpec(
                                name=l["name"],
                                trip_count=l["trip_count"],
                                ops=[OpSpec(**o) for o in l.get("ops", [])],
                                pipeline=l.get("pipeline", True),
                                unroll=l.get("unroll", 1),
                            )
                            for l in k.get("loops", [])
                        ],
                    )
                    for k in document.get("kernels", [])
                ],
                stimuli={k: list(v) for k, v in document.get("stimuli", {}).items()},
                params=dict(document.get("params", {})),
            )
        except (KeyError, TypeError) as exc:
            raise SpecError(f"malformed fuzz program document: {exc}") from exc

    @staticmethod
    def from_json(text: str) -> "ProgramSpec":
        return ProgramSpec.from_dict(json.loads(text))

    # -- metrics used by the shrinker -----------------------------------
    def size(self) -> Tuple[int, int, int]:
        """Complexity metric ``(non-const ops, total ops, trip sum)``;
        every accepted shrink step strictly decreases it."""
        total = sum(len(l.ops) for k in self.kernels for l in k.loops)
        consts = sum(
            1 for k in self.kernels for l in k.loops for o in l.ops if o.kind == "const"
        )
        trips = sum(l.trip_count for k in self.kernels for l in k.loops)
        return (total - consts, total, trips)


@dataclass
class BuiltProgram:
    """A spec lowered to a runnable design."""

    spec: ProgramSpec
    design: Design
    stimuli: Dict[str, List[object]]
    params: Dict[str, object]


def _parse_type(spec: str, where: str) -> DataType:
    try:
        return DataType.parse(spec)
    except IRError as exc:
        raise SpecError(f"{where}: bad type {spec!r}: {exc}") from exc


def _build_body(
    loop: LoopSpec,
    fifos: Dict[str, Fifo],
    buffers: Dict[str, Buffer],
    where: str,
):
    builder = DFGBuilder(f"{loop.name}_body")
    env: Dict[str, Value] = {}

    def resolve(name: str, op_name: str) -> Value:
        if name in env:
            return env[name]
        if name in ("i", "j"):
            # Implicit loop-index input, matching the simulator's feeds.
            env[name] = builder.input(name, i32)
            return env[name]
        raise SpecError(f"{where}/{op_name}: unknown value {name!r}")

    def define(op: OpSpec, value: Value) -> None:
        if not op.name:
            raise SpecError(f"{where}: {op.kind} op needs a result name")
        if op.name in env:
            raise SpecError(f"{where}: duplicate value name {op.name!r}")
        env[op.name] = value

    for op in loop.ops:
        kind = op.kind
        try:
            if kind == "input":
                define(
                    op,
                    builder.input(
                        op.name,
                        _parse_type(op.type, where),
                        loop_invariant=op.invariant,
                    ),
                )
            elif kind == "const":
                define(op, builder.const(op.value, _parse_type(op.type, where), name=op.name))
            elif kind == "binop":
                if op.op not in BINOPS:
                    raise SpecError(f"{where}: unknown binop {op.op!r}")
                a, b = (resolve(n, op.name or op.op) for n in op.args)
                method = {"and": "and_", "or": "or_"}.get(op.op, op.op)
                define(op, getattr(builder, method)(a, b, name=op.name))
            elif kind == "not":
                define(op, builder.not_(resolve(op.args[0], op.name), name=op.name))
            elif kind == "cmp":
                a, b = (resolve(n, op.name) for n in op.args)
                define(op, builder.cmp(op.op, a, b, name=op.name))
            elif kind == "select":
                cond, a, b = (resolve(n, op.name) for n in op.args)
                define(op, builder.select(cond, a, b, name=op.name))
            elif kind == "slice":
                define(
                    op,
                    builder.slice_(
                        resolve(op.args[0], op.name),
                        op.lsb,
                        _parse_type(op.type, where),
                        name=op.name,
                    ),
                )
            elif kind == "cast":
                if op.op not in CASTS:
                    raise SpecError(f"{where}: unknown cast {op.op!r}")
                define(
                    op,
                    getattr(builder, op.op)(
                        resolve(op.args[0], op.name),
                        _parse_type(op.type, where),
                        name=op.name,
                    ),
                )
            elif kind == "reg":
                define(op, builder.reg(resolve(op.args[0], op.name), name=op.name))
            elif kind == "fifo_read":
                if op.fifo not in fifos:
                    raise SpecError(f"{where}: unknown fifo {op.fifo!r}")
                define(op, builder.fifo_read(fifos[op.fifo], name=op.name))
            elif kind == "fifo_write":
                if op.fifo not in fifos:
                    raise SpecError(f"{where}: unknown fifo {op.fifo!r}")
                builder.fifo_write(fifos[op.fifo], resolve(op.args[0], f"write {op.fifo}"))
            elif kind == "load":
                if op.buffer not in buffers:
                    raise SpecError(f"{where}: unknown buffer {op.buffer!r}")
                define(
                    op,
                    builder.load(
                        buffers[op.buffer], resolve(op.args[0], op.name), name=op.name
                    ),
                )
            elif kind == "store":
                if op.buffer not in buffers:
                    raise SpecError(f"{where}: unknown buffer {op.buffer!r}")
                addr, data = (resolve(n, f"store {op.buffer}") for n in op.args)
                builder.store(buffers[op.buffer], addr, data)
            else:
                raise SpecError(f"{where}: unknown op kind {kind!r}")
        except (IRError, VerificationError, IndexError, ValueError) as exc:
            raise SpecError(f"{where}/{op.kind} {op.name or op.fifo or op.buffer}: {exc}") from exc
    try:
        return builder.build()
    except (IRError, VerificationError) as exc:
        raise SpecError(f"{where}: {exc}") from exc


def build_program(spec: ProgramSpec) -> BuiltProgram:
    """Lower a spec into a verified :class:`Design` plus stimuli.

    Raises :class:`SpecError` on any malformed spec, so callers (and the
    shrinker in particular) can tell "invalid program" from "divergence".
    """
    design = Design(
        name=spec.name,
        dataflow=spec.dataflow,
        meta={"clock_mhz": spec.clock_mhz, "origin": "fuzz", "seed": spec.seed},
    )
    fifos: Dict[str, Fifo] = {}
    buffers: Dict[str, Buffer] = {}
    try:
        for f in spec.fifos:
            fifos[f.name] = design.add_fifo(
                Fifo(f.name, _parse_type(f.type, f"fifo {f.name}"), f.depth, f.external)
            )
        for b in spec.buffers:
            buffers[b.name] = design.add_buffer(
                Buffer(b.name, _parse_type(b.type, f"buffer {b.name}"), b.depth)
            )
    except VerificationError as exc:
        raise SpecError(str(exc)) from exc
    for kspec in spec.kernels:
        kernel = Kernel(kspec.name)
        for lspec in kspec.loops:
            if lspec.trip_count <= 0:
                raise SpecError(f"{kspec.name}/{lspec.name}: non-positive trip count")
            if lspec.unroll > 1 and lspec.trip_count % lspec.unroll:
                raise SpecError(
                    f"{kspec.name}/{lspec.name}: trip {lspec.trip_count} "
                    f"not divisible by unroll {lspec.unroll}"
                )
            body = _build_body(lspec, fifos, buffers, f"{kspec.name}/{lspec.name}")
            kernel.add_loop(
                Loop(
                    lspec.name,
                    body,
                    trip_count=lspec.trip_count,
                    pipeline=lspec.pipeline,
                    unroll=lspec.unroll,
                )
            )
        try:
            design.add_kernel(kernel)
        except VerificationError as exc:
            raise SpecError(str(exc)) from exc
    for name in spec.stimuli:
        if name not in fifos:
            raise SpecError(f"stimuli for unknown fifo {name!r}")
        if not fifos[name].external:
            raise SpecError(f"stimuli for internal fifo {name!r}")
    try:
        design.verify()
    except (IRError, VerificationError) as exc:
        raise SpecError(str(exc)) from exc
    return BuiltProgram(
        spec=spec,
        design=design,
        stimuli={k: list(v) for k, v in spec.stimuli.items()},
        params=dict(spec.params),
    )
