"""Seeded random program generation.

Programs are drawn from the paper's design space: dataflow pipelines of
1–3 kernels connected by FIFO chains, 1–3 parallel lanes per pipeline
(fused into one loop per kernel — the Fig. 5a shape §4.2 splits), mixed
integer widths with casts/slices, private BRAM buffers addressed by the
loop index, loop-invariant scalar parameters (the Fig. 1/2 broadcast
sources) and unroll pragmas.

Every program is *sound by construction*:

* kernels are emitted producer-first and rate-matched (each lane moves
  exactly one element per pre-unroll iteration), so both the sequential
  reference and the concurrent simulation drain completely;
* FIFO reads of one channel stay within one loop body;
* unroll factors divide the trip count, and internal FIFO depths cover
  the widest post-unroll burst;
* divisors are non-zero constants.

Generation is deterministic per ``(seed, index)``: the RNG is seeded with
a string key, which Python hashes with SHA-512 — stable across processes
and versions.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.ir.types import DataType, f32, i1, i8, i16, i32, i64, u8, u16, u32, common_type
from repro.opt import CONFIG_LABELS

from repro.fuzz.spec import (
    BufferSpec,
    FifoSpec,
    KernelSpec,
    LoopSpec,
    OpSpec,
    ProgramSpec,
)

#: Integer element/operand types the generator draws from.
INT_TYPES = (i8, i16, i32, i64, u8, u16, u32)

#: Trip counts (weighted toward 8); every unroll candidate divides them.
TRIP_COUNTS = (4, 8, 8, 12, 16)

#: Depth of every generated FIFO — covers the widest post-unroll burst
#: (unroll 4 x 2 reads per lane iteration = 8 elements per firing).
FIFO_DEPTH = 16


def _rand_value(rng: random.Random, dtype: DataType) -> object:
    if dtype.is_float:
        return round(rng.uniform(-1000.0, 1000.0), 3)
    if dtype.is_signed:
        return rng.randrange(-(1 << (dtype.width - 1)), 1 << (dtype.width - 1))
    return rng.randrange(0, 1 << dtype.width)


class _LaneBuilder:
    """Emits a type-tracked random op DAG for one lane of one kernel."""

    def __init__(self, rng: random.Random, prefix: str, ops: List[OpSpec]) -> None:
        self.rng = rng
        self.prefix = prefix
        self.ops = ops
        self.pool: List[Tuple[str, DataType]] = []
        self._n = 0

    def fresh(self, stem: str = "v") -> str:
        self._n += 1
        return f"{self.prefix}_{stem}{self._n}"

    def emit(self, op: OpSpec, dtype: Optional[DataType]) -> Optional[str]:
        self.ops.append(op)
        if op.name and dtype is not None:
            self.pool.append((op.name, dtype))
            return op.name
        return None

    def const(self, value: object, dtype: DataType) -> str:
        name = self.fresh("c")
        self.ops.append(OpSpec(kind="const", name=name, value=value, type=str(dtype)))
        self.pool.append((name, dtype))
        return name

    def pick(self, want_float: Optional[bool] = None) -> Optional[Tuple[str, DataType]]:
        candidates = [
            (n, t)
            for n, t in self.pool
            if want_float is None or (t.is_float == want_float and t != i1)
        ]
        if not candidates:
            return None
        return self.rng.choice(candidates)

    # -- op menus -------------------------------------------------------
    def random_int_op(self) -> None:
        rng = self.rng
        picked = self.pick(want_float=False)
        if picked is None:
            return
        a, at = picked
        roll = rng.random()
        if roll < 0.40:  # plain binary arithmetic / bitwise
            b, bt = self.pick(want_float=False) or (self.const(_rand_value(rng, at), at), at)
            op = rng.choice(("add", "sub", "mul", "and", "or", "xor"))
            dtype = common_type(at, bt) if op in ("add", "sub", "mul") else at
            self.emit(OpSpec(kind="binop", name=self.fresh(), op=op, args=[a, b]), dtype)
        elif roll < 0.48:  # division by a non-zero constant
            divisor = rng.choice((1, 2, 3, 5, 7))
            if at.is_signed and rng.random() < 0.3:
                divisor = -divisor
            b = self.const(divisor, at)
            self.emit(
                OpSpec(kind="binop", name=self.fresh(), op="div", args=[a, b]),
                common_type(at, at),
            )
        elif roll < 0.58:  # shifts, sometimes deliberately oversized
            amount = rng.randrange(0, at.width + 17)
            b = self.const(amount, u8)
            op = rng.choice(("shl", "shr"))
            self.emit(OpSpec(kind="binop", name=self.fresh(), op=op, args=[a, b]), at)
        elif roll < 0.70:  # compare + select
            b, bt = self.pick(want_float=False) or (self.const(_rand_value(rng, at), at), at)
            cond = self.fresh("cc")
            self.emit(
                OpSpec(kind="cmp", name=cond, op=rng.choice(("eq", "ne", "lt", "le", "gt", "ge")),
                       args=[a, b]),
                i1,
            )
            # select arms must agree in type: reuse a twice when b differs.
            arm_b = b if bt == at else self.const(_rand_value(rng, at), at)
            self.emit(
                OpSpec(kind="select", name=self.fresh("sel"), args=[cond, a, arm_b]), at
            )
        elif roll < 0.82:  # width cast
            target = rng.choice(INT_TYPES)
            kind = rng.choice(("zext", "sext", "trunc"))
            self.emit(
                OpSpec(kind="cast", name=self.fresh("x"), op=kind, args=[a], type=str(target)),
                target,
            )
        elif roll < 0.92 and at.width >= 16:  # bit-field slice
            target = rng.choice((u8, u16))
            lsb = rng.randrange(0, max(1, at.width - target.width + 1))
            self.emit(
                OpSpec(kind="slice", name=self.fresh("sl"), args=[a], lsb=lsb,
                       type=str(target)),
                target,
            )
        elif roll < 0.96:
            self.emit(OpSpec(kind="not", name=self.fresh("n"), args=[a]), at)
        else:
            self.emit(OpSpec(kind="reg", name=self.fresh("r"), args=[a]), at)

    def random_float_op(self) -> None:
        rng = self.rng
        picked = self.pick(want_float=True)
        if picked is None:
            return
        a, at = picked
        roll = rng.random()
        if roll < 0.70:
            b, _bt = self.pick(want_float=True) or (self.const(_rand_value(rng, at), at), at)
            op = rng.choice(("add", "sub", "mul"))
            self.emit(OpSpec(kind="binop", name=self.fresh(), op=op, args=[a, b]), at)
        else:
            b, _bt = self.pick(want_float=True) or (self.const(_rand_value(rng, at), at), at)
            cond = self.fresh("cc")
            self.emit(
                OpSpec(kind="cmp", name=cond, op=rng.choice(("lt", "gt", "le", "ge")),
                       args=[a, b]),
                i1,
            )
            self.emit(OpSpec(kind="select", name=self.fresh("sel"), args=[cond, a, b]), at)

    def result_as(self, dtype: DataType) -> str:
        """A lane output value of exactly ``dtype`` (casting if needed)."""
        picked = self.pick(want_float=dtype.is_float)
        if picked is None:
            return self.const(_rand_value(self.rng, dtype), dtype)
        name, t = picked
        if t == dtype:
            return name
        if dtype.is_float or t.is_float:
            # No float<->int casts in the IR; fall back to a constant.
            return self.const(_rand_value(self.rng, dtype), dtype)
        kind = self.rng.choice(("zext", "sext", "trunc"))
        out = self.fresh("out")
        self.emit(OpSpec(kind="cast", name=out, op=kind, args=[name], type=str(dtype)), dtype)
        return out


def generate_spec(seed: int, index: int) -> ProgramSpec:
    """Deterministically generate program ``index`` of campaign ``seed``."""
    rng = random.Random(f"repro-fuzz/{seed}/{index}")
    trip = rng.choice(TRIP_COUNTS)
    n_kernels = rng.randint(1, 3)
    n_lanes = rng.randint(1, 3)
    config = rng.choice(sorted(CONFIG_LABELS))

    # Lane plumbing: lane l flows through fifo chain l across all kernels.
    lane_float = [rng.random() < 0.15 for _ in range(n_lanes)]
    # stage_types[l][s] is the element type between kernel s-1 and s
    # (s == 0 is the external input, s == n_kernels the external output).
    stage_types: List[List[DataType]] = []
    for lane in range(n_lanes):
        if lane_float[lane]:
            stage_types.append([f32] * (n_kernels + 1))
        else:
            stage_types.append([rng.choice(INT_TYPES) for _ in range(n_kernels + 1)])

    # Two integer lanes may share one external input channel: both reads
    # land in kernel 0's body — the shared-FIFO case flow splitting must
    # never separate.
    shared_input = (
        n_lanes >= 2
        and not lane_float[0]
        and not lane_float[1]
        and rng.random() < 0.30
    )
    if shared_input:
        stage_types[1][0] = stage_types[0][0]

    fifos: List[FifoSpec] = []
    fifo_of: Dict[Tuple[int, int], str] = {}  # (lane, stage) -> fifo name
    for lane in range(n_lanes):
        for stage in range(n_kernels + 1):
            if shared_input and lane == 1 and stage == 0:
                fifo_of[(lane, stage)] = fifo_of[(0, 0)]
                continue
            external = stage in (0, n_kernels)
            name = (
                f"in{lane}" if stage == 0
                else f"out{lane}" if stage == n_kernels
                else f"mid{lane}_{stage}"
            )
            fifos.append(
                FifoSpec(
                    name=name,
                    type=str(stage_types[lane][stage]),
                    depth=FIFO_DEPTH,
                    external=external,
                )
            )
            fifo_of[(lane, stage)] = name

    # Unroll pragma on at most one kernel's loop.
    unroll_candidates = [f for f in (2, 4) if trip % f == 0]
    unroll_kernel = -1
    unroll_factor = 1
    if unroll_candidates and rng.random() < 0.35:
        unroll_kernel = rng.randrange(n_kernels)
        unroll_factor = rng.choice(unroll_candidates)

    buffers: List[BufferSpec] = []
    params: Dict[str, object] = {}
    kernels: List[KernelSpec] = []
    for k in range(n_kernels):
        ops: List[OpSpec] = []
        # Optional loop-invariant scalar — the classic broadcast source.
        invariant_name = ""
        if rng.random() < 0.35:
            invariant_name = f"k{k}_p"
            ops.append(OpSpec(kind="input", name=invariant_name, type="i32", invariant=True))
            params[invariant_name] = rng.randrange(-1000, 1000)
        for lane in range(n_lanes):
            lb = _LaneBuilder(rng, f"k{k}_l{lane}", ops)
            read = lb.fresh("in")
            lb.emit(
                OpSpec(kind="fifo_read", name=read, fifo=fifo_of[(lane, k)]),
                stage_types[lane][k],
            )
            if not lane_float[lane]:
                if invariant_name and rng.random() < 0.6:
                    lb.pool.append((invariant_name, i32))
                if rng.random() < 0.4:
                    lb.pool.append(("i", i32))
            for _ in range(rng.randint(1, 5)):
                if lane_float[lane]:
                    lb.random_float_op()
                else:
                    lb.random_int_op()
            # Optional private buffer: store at the loop index, sometimes
            # load back (index-addressed BRAM — what the unroll-index fix
            # protects).
            if not lane_float[lane] and rng.random() < 0.30:
                data_name, data_type = lb.pick(want_float=False) or (read, stage_types[lane][k])
                buf = f"k{k}_l{lane}_buf"
                buffers.append(BufferSpec(name=buf, type=str(data_type), depth=trip))
                ops.append(OpSpec(kind="store", buffer=buf, args=["i", data_name]))
                if rng.random() < 0.5:
                    loaded = lb.fresh("ld")
                    lb.emit(
                        OpSpec(kind="load", name=loaded, buffer=buf, args=["i"]),
                        data_type,
                    )
            out_value = lb.result_as(stage_types[lane][k + 1])
            ops.append(OpSpec(kind="fifo_write", fifo=fifo_of[(lane, k + 1)], args=[out_value]))
        kernels.append(
            KernelSpec(
                name=f"k{k}",
                loops=[
                    LoopSpec(
                        name=f"l{k}",
                        trip_count=trip,
                        ops=ops,
                        pipeline=True,
                        unroll=unroll_factor if k == unroll_kernel else 1,
                    )
                ],
            )
        )

    # Stimuli: exactly the number of elements each external input is read.
    stimuli: Dict[str, List[object]] = {}
    reads_per_iteration: Dict[str, int] = {}
    for lane in range(n_lanes):
        name = fifo_of[(lane, 0)]
        reads_per_iteration[name] = reads_per_iteration.get(name, 0) + 1
    for fifo in fifos:
        if fifo.external and fifo.name in reads_per_iteration:
            dtype = DataType.parse(fifo.type)
            count = trip * reads_per_iteration[fifo.name]
            stimuli[fifo.name] = [_rand_value(rng, dtype) for _ in range(count)]

    return ProgramSpec(
        name=f"fuzz_s{seed}_i{index}",
        seed=seed,
        config=config,
        dataflow=True,
        clock_mhz=300.0,
        fifos=fifos,
        buffers=buffers,
        kernels=kernels,
        stimuli=stimuli,
        params=params,
    )
