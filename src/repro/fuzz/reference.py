"""Sequential reference execution — the fuzzer's functional oracle.

The reference semantics of a generated program is the simplest one that
can possibly be right: preload every external input FIFO completely, then
fire each loop exactly ``trip_count`` times in declaration order (the
generator emits kernels producer-first, so a single sweep drains the whole
pipeline).  FIFO capacity is ignored — depth only affects *timing*, never
values, which is exactly the invariant the differential comparison against
the cycle-stepped :class:`~repro.sim.dataflow.DataflowSim` checks.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.ir.interp import Evaluator
from repro.ir.program import Design
from repro.sim.dataflow import index_inputs


@dataclass
class ReferenceResult:
    """Outputs of one reference execution."""

    outputs: Dict[str, List[object]] = field(default_factory=dict)
    buffers: Dict[str, List[object]] = field(default_factory=dict)
    firings: Dict[str, int] = field(default_factory=dict)


def output_fifos(design: Design) -> List[str]:
    """External FIFOs written by some loop — the observable outputs."""
    written: set = set()
    for _kernel, loop in design.all_loops():
        _r, w = loop.fifo_endpoints()
        written.update(w)
    return [
        name
        for name, fifo in design.fifos.items()
        if fifo.external and name in written
    ]


def run_reference(
    design: Design,
    stimuli: Dict[str, List[object]],
    params: Optional[Dict[str, object]] = None,
) -> ReferenceResult:
    """Execute ``design`` sequentially; raises
    :class:`~repro.errors.SimulationError` when a loop underflows a FIFO
    (an ill-formed program, not a divergence)."""
    evaluator = Evaluator(fifos={}, buffers={})
    for name, items in stimuli.items():
        evaluator.fifos[name] = collections.deque(items)
    params = dict(params or {})
    result = ReferenceResult()
    for kernel, loop in design.all_loops():
        if loop.trip_count is None:
            raise SimulationError(
                f"{kernel.name}/{loop.name}: reference execution needs a "
                "static trip count"
            )
        for iteration in range(loop.trip_count):
            feeds = index_inputs(loop.body, iteration)
            feeds.update(params)
            evaluator.run(loop.body, inputs=feeds)
        result.firings[f"{kernel.name}/{loop.name}"] = loop.trip_count
    for name in output_fifos(design):
        result.outputs[name] = list(evaluator.fifos.get(name, ()))
    result.buffers = {k: list(v) for k, v in evaluator.buffers.items()}
    return result
