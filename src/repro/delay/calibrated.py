"""Calibration tables and the broadcast-aware delay model (§4.1).

The paper: *"we collect reusable statistics of calibrated delays for each
combination of operator, data type and broadcast factor. Each data point is
averaged with its neighbors to suppress random noise ... we choose the
maximum between the HLS-predicted delay and our experimented results as our
calibrated delay."*

:class:`CalibrationTable` stores (broadcast factor → measured delay) curves
per operator key; :class:`CalibratedDelayModel` combines them with the HLS
model exactly as quoted.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Tuple

from repro.delay.hls_model import HlsDelayModel
from repro.delay.tables import op_delay_key
from repro.errors import ReproError
from repro.ir.ops import MEM_OPS, Opcode, Operation
from repro.ir.values import Value


class CalibrationTable:
    """Measured delay (ns) per (operator key, broadcast factor)."""

    def __init__(self) -> None:
        self._curves: Dict[str, List[Tuple[int, float]]] = {}

    # -- construction ---------------------------------------------------
    def add(self, key: str, factor: int, delay_ns: float) -> None:
        if factor < 1:
            raise ReproError(f"broadcast factor must be >= 1, got {factor}")
        curve = self._curves.setdefault(key, [])
        curve.append((factor, delay_ns))
        curve.sort(key=lambda p: p[0])

    def keys(self) -> List[str]:
        return sorted(self._curves)

    def points(self, key: str) -> List[Tuple[int, float]]:
        return list(self._curves.get(key, []))

    # -- the paper's neighbor smoothing -----------------------------------
    def smoothed(self, passes: int = 1) -> "CalibrationTable":
        """Return a copy with each point averaged with its neighbors.

        Suppresses the placement-jitter noise of individual skeleton runs
        (§4.1).  Multiple passes smooth more aggressively.
        """
        table = CalibrationTable()
        for key, curve in self._curves.items():
            values = [delay for _f, delay in curve]
            for _ in range(passes):
                if len(values) >= 3:
                    values = (
                        [(values[0] + values[1]) / 2]
                        + [
                            (values[i - 1] + values[i] + values[i + 1]) / 3
                            for i in range(1, len(values) - 1)
                        ]
                        + [(values[-2] + values[-1]) / 2]
                    )
            for (factor, _), delay in zip(curve, values):
                table.add(key, factor, delay)
        return table

    # -- lookup -----------------------------------------------------------
    def lookup(self, key: str, factor: int) -> Optional[float]:
        """Interpolated measured delay, or None when the key is unknown.

        Interpolation is piecewise-linear in ``log2(factor)`` (the sweep is
        geometric); factors outside the measured range clamp to the ends.
        """
        curve = self._curves.get(key)
        if not curve:
            return None
        factor = max(1, factor)
        if factor <= curve[0][0]:
            return curve[0][1]
        if factor >= curve[-1][0]:
            return curve[-1][1]
        for (f0, d0), (f1, d1) in zip(curve, curve[1:]):
            if f0 <= factor <= f1:
                if f0 == f1:
                    return max(d0, d1)
                t = (math.log2(factor) - math.log2(f0)) / (
                    math.log2(f1) - math.log2(f0)
                )
                return d0 + t * (d1 - d0)
        return curve[-1][1]  # pragma: no cover - defensive

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, List[List[float]]]:
        return {k: [[f, d] for f, d in v] for k, v in self._curves.items()}

    @classmethod
    def from_dict(cls, data: Dict[str, List[List[float]]]) -> "CalibrationTable":
        table = cls()
        for key, curve in data.items():
            for factor, delay in curve:
                table.add(key, int(factor), float(delay))
        return table

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CalibrationTable":
        return cls.from_dict(json.loads(text))


def broadcast_factor_of(op: Operation) -> int:
    """Broadcast factor governing ``op``'s input wire delay.

    The paper analyzes RAW dependencies to count "how many times a variable
    is read by later instructions in the same cycle"; in a fully-pipelined
    (II=1) body every consumer is concurrently active, so the static fanout
    of the widest-read operand is the right statistic.  Constants do not
    broadcast (they are replicated for free into each LUT).
    """
    factor = 1
    for operand in op.operands:
        if isinstance(operand, Value) and not operand.is_const:
            factor = max(factor, operand.fanout)
    return factor


class CalibratedDelayModel:
    """``smooth(max(hls_predicted, measured))`` — the paper's model.

    Arithmetic ops look up their operand broadcast factor; memory ops look
    up the BRAM bank count of the buffer they touch.
    """

    name = "calibrated"

    def __init__(
        self,
        table: CalibrationTable,
        hls: Optional[HlsDelayModel] = None,
    ) -> None:
        self.table = table
        self.hls = hls or HlsDelayModel()

    def _factor(self, op: Operation) -> int:
        if op.opcode in MEM_OPS:
            banks = op.attrs["buffer"].bram36_units()
            group = op.attrs.get("bank_group")
            if isinstance(group, tuple):
                # Partitioned access: the port only reaches its bank group.
                banks = math.ceil(banks / group[1])
            return banks
        return broadcast_factor_of(op)

    def op_delay(self, op: Operation) -> float:
        base = self.hls.op_delay(op)
        if op.opcode is Opcode.CALL:
            return base
        measured = self.table.lookup(op_delay_key(op), self._factor(op))
        if measured is None:
            return base
        return max(base, measured)

    def describe(self, op: Operation) -> str:
        """Annotation used in schedule reports: delay plus broadcast factor."""
        return f"{self.op_delay(op):.2f}ns@bf{self._factor(op)}"
