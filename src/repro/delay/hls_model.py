"""The broadcast-blind HLS delay model (§2).

This is the model the baseline scheduler uses: a fixed, pre-characterized
delay per (opcode, type), with **no** dependence on operand fanout, buffer
size or placement.  It reproduces the production-tool limitation the paper
identifies: "The predicted delay by HLS tools for a certain operator is
fixed regardless of the actual environment."
"""

from __future__ import annotations

from repro.ir.ops import Opcode, Operation
from repro.delay.tables import hls_predicted_delay


class HlsDelayModel:
    """Fixed per-operator delay estimates.

    The interface (shared with :class:`~repro.delay.calibrated.
    CalibratedDelayModel`) is a single :meth:`op_delay` keyed on the
    operation instance; this model ignores everything about the instance's
    environment.
    """

    name = "hls"

    def op_delay(self, op: Operation) -> float:
        """Estimated combinational delay contribution of ``op``, in ns."""
        if op.opcode is Opcode.CALL:
            return 0.0
        if op.result is not None:
            dtype = op.result.type
        elif op.operands:
            dtype = op.operands[-1].type
        else:  # FIFO_READ has a result; nothing else lands here.
            return 0.0
        return hls_predicted_delay(op.opcode, dtype)

    def describe(self, op: Operation) -> str:
        """Human-readable delay annotation used in schedule reports."""
        return f"{self.op_delay(op):.2f}ns"
