"""Disk persistence for calibration tables.

The paper's calibration is a one-time per-device characterization whose
statistics are "reusable"; this module makes that literal: run the skeleton
sweeps once, save the table, and let later sessions (or CI) load it instead
of re-measuring.

JSON format (from :meth:`CalibrationTable.to_dict`) wrapped with metadata::

    {"device": "aws-f1", "seed": 2020, "smooth_passes": 1,
     "curves": {"add_i32": [[1, 0.78], ...], ...}}
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.delay.calibrated import CalibrationTable
from repro.delay.calibration import build_default_calibration
from repro.errors import ReproError

FORMAT_VERSION = 1


def save_calibration(
    table: CalibrationTable,
    path: str,
    device: str,
    seed: int = 2020,
    smooth_passes: int = 1,
) -> None:
    """Write a calibration table plus provenance metadata to ``path``."""
    payload = {
        "version": FORMAT_VERSION,
        "device": device,
        "seed": seed,
        "smooth_passes": smooth_passes,
        "curves": table.to_dict(),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def load_calibration(path: str, device: Optional[str] = None) -> CalibrationTable:
    """Load a saved table; optionally check it was built for ``device``."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("version") != FORMAT_VERSION:
        raise ReproError(
            f"calibration file {path!r} has version {payload.get('version')}, "
            f"expected {FORMAT_VERSION}"
        )
    if device is not None and payload.get("device") != device:
        raise ReproError(
            f"calibration file {path!r} was characterized for "
            f"{payload.get('device')!r}, not {device!r}"
        )
    return CalibrationTable.from_dict(payload["curves"])


def get_or_build_calibration(
    path: str,
    device: str = "aws-f1",
    seed: int = 2020,
    smooth_passes: int = 1,
) -> CalibrationTable:
    """Load ``path`` if present, otherwise characterize and save.

    The workhorse for scripts and CI: the first run pays for the skeleton
    sweeps, every later run starts instantly.
    """
    if os.path.exists(path):
        return load_calibration(path, device=device)
    table = build_default_calibration(device, seed=seed, smooth_passes=smooth_passes)
    save_calibration(table, path, device=device, seed=seed, smooth_passes=smooth_passes)
    return table
