"""Disk persistence for calibration tables.

The paper's calibration is a one-time per-device characterization whose
statistics are "reusable"; this module makes that literal: run the skeleton
sweeps once, save the table, and let later sessions (or CI, or the worker
processes of the parallel experiment engine) load it instead of
re-measuring.  Building the default table runs ~80 placements (~14 s);
loading it back costs well under a millisecond.

JSON format (from :meth:`CalibrationTable.to_dict`) wrapped with metadata::

    {"version": 1, "device": "aws-f1", "seed": 2020, "smooth_passes": 1,
     "curves": {"add_i32": [[1, 0.78], ...], ...}}

The metadata is *provenance*: a table measured on a different device, with
a different placement seed, or with different smoothing is a different
table, and silently substituting one would change every downstream
schedule.  :func:`load_calibration` therefore validates whatever subset of
the provenance the caller pins, and :func:`resolve_calibration` pins all
of it.

Concurrency: :func:`get_or_build_calibration` and
:func:`resolve_calibration` serialize the build-or-load decision through
an exclusive file lock next to the table, so N workers starting at once
produce exactly one characterization run — the first worker builds while
the rest block, then load the saved file.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro import hashing
from repro.delay.calibrated import CalibrationTable
from repro.delay.calibration import build_default_calibration
from repro.errors import ReproError
from repro.obs.journal import emit_event

FORMAT_VERSION = 1

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Set to ``off``/``0``/``no`` to bypass the on-disk cache entirely.
CACHE_TOGGLE_ENV = "REPRO_CALIBRATION_CACHE"

try:  # POSIX advisory locks; on platforms without fcntl the lock is a no-op
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: Whether the lockless-fallback warning has fired yet (once per process).
_LOCKLESS_WARNED = False


def _warn_lockless_once() -> None:
    """One warning, first time the lock degrades — not once per call site.

    The cache still works without ``fcntl`` (atomic renames keep readers
    consistent); what is lost is build-once economy: N cold processes may
    each pay for their own characterization.  Worth saying once, not worth
    crashing over, and not worth repeating on every flow run.
    """
    global _LOCKLESS_WARNED
    if _LOCKLESS_WARNED:
        return
    _LOCKLESS_WARNED = True
    warnings.warn(
        "fcntl is unavailable on this platform; calibration caching falls "
        "back to lockless best-effort mode (concurrent cold processes may "
        "each re-characterize instead of sharing one build)",
        RuntimeWarning,
        stacklevel=4,
    )


@dataclass(frozen=True)
class CalibrationProvenance:
    """What a stored table was measured with — its identity, not just tags."""

    device: str
    seed: int
    smooth_passes: int
    version: int = FORMAT_VERSION

    def mismatches(self, other: "CalibrationProvenance") -> Dict[str, Tuple]:
        """Fields where ``self`` (stored) differs from ``other`` (wanted)."""
        diffs: Dict[str, Tuple] = {}
        for name in ("version", "device", "seed", "smooth_passes"):
            stored, wanted = getattr(self, name), getattr(other, name)
            if stored != wanted:
                diffs[name] = (stored, wanted)
        return diffs

    def digest(self) -> str:
        """Canonical content digest of this provenance.

        The flow-compilation service folds this into its request digests
        (see :mod:`repro.service.request`), so a request compiled against
        one characterization identity can never alias a result compiled
        against another.  Uses the shared :mod:`repro.hashing` recipe.
        """
        return hashing.content_digest(
            {
                "kind": "calibration-provenance",
                "device": self.device,
                "seed": self.seed,
                "smooth_passes": self.smooth_passes,
                "version": self.version,
            }
        )


def save_calibration(
    table: CalibrationTable,
    path: str,
    device: str,
    seed: int = 2020,
    smooth_passes: int = 1,
) -> None:
    """Write a calibration table plus provenance metadata to ``path``.

    The write is atomic (temp file + rename) so a reader that does not hold
    the lock can never observe a half-written table.
    """
    payload = {
        "version": FORMAT_VERSION,
        "device": device,
        "seed": seed,
        "smooth_passes": smooth_passes,
        "curves": table.to_dict(),
    }
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def read_provenance(path: str) -> CalibrationProvenance:
    """The provenance block of a saved table, without loading the curves."""
    with open(path) as handle:
        payload = json.load(handle)
    return _provenance_of(payload, path)


def _provenance_of(payload: dict, path: str) -> CalibrationProvenance:
    try:
        return CalibrationProvenance(
            device=str(payload["device"]),
            seed=int(payload["seed"]),
            smooth_passes=int(payload["smooth_passes"]),
            version=int(payload.get("version", -1)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(
            f"calibration file {path!r} is missing provenance metadata: {exc}"
        ) from exc


def load_calibration(
    path: str,
    device: Optional[str] = None,
    seed: Optional[int] = None,
    smooth_passes: Optional[int] = None,
) -> CalibrationTable:
    """Load a saved table, validating its provenance.

    The format version is always checked; ``device``, ``seed`` and
    ``smooth_passes`` are checked when the caller pins them.  A stale table
    that silently changed downstream schedules would be far worse than the
    :class:`ReproError` raised here.
    """
    with open(path) as handle:
        payload = json.load(handle)
    stored = _provenance_of(payload, path)
    wanted = CalibrationProvenance(
        device=stored.device if device is None else device,
        seed=stored.seed if seed is None else seed,
        smooth_passes=stored.smooth_passes if smooth_passes is None else smooth_passes,
    )
    diffs = stored.mismatches(wanted)
    if diffs:
        detail = ", ".join(
            f"{name}: stored {got!r}, need {want!r}"
            for name, (got, want) in sorted(diffs.items())
        )
        raise ReproError(
            f"calibration file {path!r} does not match the requested "
            f"provenance ({detail}); re-characterize or point at the right file"
        )
    return CalibrationTable.from_dict(payload["curves"])


# ---------------------------------------------------------------------------
# Cache location and locking
# ---------------------------------------------------------------------------
def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def default_calibration_path(
    device: str, seed: int = 2020, smooth_passes: int = 1
) -> str:
    """Auto cache path; the full provenance is encoded in the file name, so
    distinct characterizations never collide."""
    name = f"calibration-v{FORMAT_VERSION}-{device}-seed{seed}-smooth{smooth_passes}.json"
    return os.path.join(default_cache_dir(), name)


def cache_enabled() -> bool:
    """Whether the on-disk cache is active (``REPRO_CALIBRATION_CACHE``)."""
    return os.environ.get(CACHE_TOGGLE_ENV, "").lower() not in ("off", "0", "no")


@contextmanager
def calibration_lock(path: str) -> Iterator[None]:
    """Exclusive advisory lock guarding the build-or-load of ``path``.

    Concurrent engine workers serialize here: exactly one pays for the
    characterization, the rest block and then load the saved file.  On
    platforms without ``fcntl`` the lock degrades to a no-op (the atomic
    rename in :func:`save_calibration` still keeps readers consistent).
    """
    if fcntl is None:
        _warn_lockless_once()
        yield
        return
    lock_path = path + ".lock"
    os.makedirs(os.path.dirname(os.path.abspath(lock_path)), exist_ok=True)
    with open(lock_path, "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def get_or_build_calibration(
    path: str,
    device: str = "aws-f1",
    seed: int = 2020,
    smooth_passes: int = 1,
) -> CalibrationTable:
    """Load ``path`` if present, otherwise characterize and save — under the
    file lock, so concurrent callers characterize exactly once.

    The workhorse for scripts and CI: the first run pays for the skeleton
    sweeps, every later run starts instantly.
    """
    with calibration_lock(path):
        if os.path.exists(path):
            return load_calibration(
                path, device=device, seed=seed, smooth_passes=smooth_passes
            )
        table = build_default_calibration(
            device, seed=seed, smooth_passes=smooth_passes
        )
        save_calibration(
            table, path, device=device, seed=seed, smooth_passes=smooth_passes
        )
        return table


#: In-process memo over :func:`resolve_calibration` (keyed by full identity),
#: so one process never re-reads the file it just loaded.
_MEMORY: Dict[Tuple[str, int, int, str], CalibrationTable] = {}

#: ``source`` values :func:`resolve_calibration` can report.
SOURCE_MEMORY = "memory"
SOURCE_DISK = "disk"
SOURCE_BUILT = "built"


def resolve_calibration(
    device: str,
    seed: int = 2020,
    smooth_passes: int = 1,
    path: Optional[str] = None,
) -> Tuple[CalibrationTable, str]:
    """The one-stop calibration lookup the flow and engine workers use.

    Resolution order: in-process memo → on-disk cache (``path`` or the auto
    path under :func:`default_cache_dir`) → build and save.  Returns the
    table plus where it came from (``"memory"``/``"disk"``/``"built"``) so
    callers can report cache effectiveness.

    With the disk cache disabled (:data:`CACHE_TOGGLE_ENV`) and no explicit
    ``path``, falls back to the in-memory characterization only.
    """
    target = path or default_calibration_path(device, seed, smooth_passes)
    key = (device, seed, smooth_passes, os.path.abspath(target))
    if key in _MEMORY:
        return _MEMORY[key], SOURCE_MEMORY
    if path is None and not cache_enabled():
        table = build_default_calibration(
            device, seed=seed, smooth_passes=smooth_passes
        )
        emit_event(
            "calibration.build",
            device=device,
            seed=seed,
            smooth_passes=smooth_passes,
            cached=False,
        )
        _MEMORY[key] = table
        return table, SOURCE_BUILT
    with calibration_lock(target):
        if os.path.exists(target):
            table = load_calibration(
                target, device=device, seed=seed, smooth_passes=smooth_passes
            )
            source = SOURCE_DISK
        else:
            table = build_default_calibration(
                device, seed=seed, smooth_passes=smooth_passes
            )
            save_calibration(
                table, target, device=device, seed=seed, smooth_passes=smooth_passes
            )
            emit_event(
                "calibration.build",
                device=device,
                seed=seed,
                smooth_passes=smooth_passes,
                path=target,
            )
            source = SOURCE_BUILT
    _MEMORY[key] = table
    return table, source
