"""Operator delay models.

* :class:`~repro.delay.hls_model.HlsDelayModel` — the broadcast-blind,
  pre-characterized model production HLS schedulers use (§2).
* :mod:`repro.delay.calibration` — the skeleton-design characterization
  harness of §4.1, measuring post-placement delay vs broadcast factor.
* :class:`~repro.delay.calibrated.CalibratedDelayModel` — the paper's
  calibrated model: ``smooth(max(hls_predicted, measured))``.
"""

from repro.delay.hls_model import HlsDelayModel
from repro.delay.calibrated import CalibratedDelayModel, CalibrationTable
from repro.delay.calibration import (
    build_default_calibration,
    characterize_memory,
    characterize_operator,
)

__all__ = [
    "HlsDelayModel",
    "CalibratedDelayModel",
    "CalibrationTable",
    "build_default_calibration",
    "characterize_operator",
    "characterize_memory",
]
