"""Skeleton-design characterization (§4.1).

    "We implement skeleton broadcast structures on an empty FPGA to obtain
    the post-routed delay. For example, in one skeleton design, we
    instantiate 64 adders, and one of the two input ports of every adder is
    connected to a common source register."

We do the same, against our physical model instead of a Vivado board run:
build the skeleton netlist, place it on an empty device, run the backend
fanout optimization, and read the critical register-to-register path from
STA.  Because the *same* physical model later times the full designs, the
calibration is ground truth for the scheduler, just as on-silicon
characterization is for the paper.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

from repro.delay.tables import (
    BRAM_CLK_Q_NS,
    CLK_Q_NS,
    LOAD_ADDR_LOGIC_NS,
    LOAD_MUX_LOGIC_NS,
    STORE_PORT_LOGIC_NS,
    op_resources,
    physical_cell_delay,
)
from repro.errors import PlacementError, ReproError
from repro.ir.ops import Opcode
from repro.ir.types import DataType
from repro.physical.device import get_device
from repro.physical.fabric import Fabric
from repro.physical.placement import Placer
from repro.physical.replication import ReplicationConfig, replicate_high_fanout
from repro.physical.timing import SETUP_NS, TimingAnalyzer
from repro.rtl.netlist import CellKind, Netlist, NetKind

#: Default geometric sweep of broadcast factors, as in Fig. 9's x axis.
DEFAULT_FACTORS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def _measure(netlist: Netlist, device: str, seed: int, replicate: bool = True) -> float:
    """Place, fanout-optimize and time a skeleton; returns the raw critical
    path (ns), *not* floored to the device minimum period."""
    fabric = Fabric(get_device(device))
    placement = Placer(fabric, seed=seed).place(netlist)
    if replicate:
        replicate_high_fanout(netlist, placement, ReplicationConfig())
    result = TimingAnalyzer(netlist, placement).analyze()
    return result.raw_period_ns


def build_arith_skeleton(opcode: Opcode, dtype: DataType, factor: int) -> Netlist:
    """``factor`` operator instances sharing one source register input.

    Every instance also has a private second-operand register and a private
    result register, so the only multi-sink net is the broadcast under test.
    """
    netlist = Netlist(f"skel_{opcode.value}_{dtype}_x{factor}")
    width = dtype.bits
    src = netlist.new_cell("src", CellKind.FF, delay_ns=CLK_Q_NS, ffs=width, width=width)
    luts, ffs, dsps = op_resources(opcode, dtype)
    kind = CellKind.DSP if dsps else CellKind.LOGIC
    sinks = []
    for i in range(factor):
        op_cell = netlist.new_cell(
            f"op{i}",
            kind,
            delay_ns=physical_cell_delay(opcode, dtype),
            luts=luts,
            ffs=ffs,
            dsps=dsps,
            width=width,
        )
        b_reg = netlist.new_cell(
            f"b{i}", CellKind.FF, delay_ns=CLK_Q_NS, ffs=width, width=width
        )
        out_reg = netlist.new_cell(
            f"q{i}", CellKind.FF, delay_ns=CLK_Q_NS, ffs=width, width=width
        )
        netlist.connect(f"b{i}_net", b_reg, [(op_cell, "b")], width=width)
        netlist.connect(f"q{i}_net", op_cell, [(out_reg, "d")], width=width)
        sinks.append((op_cell, "a"))
    netlist.connect("bcast", src, sinks, kind=NetKind.DATA, width=width)
    return netlist


def build_store_skeleton(bram_units: int, width: int = 32) -> Netlist:
    """A data register driving the write ports of ``bram_units`` BRAMs
    through shared port logic — the Fig. 3/4 structure."""
    netlist = Netlist(f"skel_store_x{bram_units}")
    src = netlist.new_cell("src", CellKind.FF, delay_ns=CLK_Q_NS, ffs=width, width=width)
    port = netlist.new_cell(
        "wport", CellKind.LOGIC, delay_ns=STORE_PORT_LOGIC_NS, luts=24, width=width
    )
    netlist.connect("src_net", src, [(port, "d")], width=width)
    sinks = []
    for i in range(bram_units):
        bram = netlist.new_cell(
            f"bram{i}", CellKind.BRAM, delay_ns=BRAM_CLK_Q_NS, brams=1, width=width
        )
        sinks.append((bram, "din"))
    netlist.connect("wdata", port, sinks, kind=NetKind.MEM, width=width)
    return netlist


def build_load_skeleton(bram_units: int, width: int = 32) -> Netlist:
    """Address broadcast to ``bram_units`` BRAMs plus the read-side mux."""
    netlist = Netlist(f"skel_load_x{bram_units}")
    addr = netlist.new_cell("addr", CellKind.FF, delay_ns=CLK_Q_NS, ffs=20, width=20)
    aport = netlist.new_cell(
        "aport", CellKind.LOGIC, delay_ns=LOAD_ADDR_LOGIC_NS, luts=12, width=20
    )
    netlist.connect("addr_net", addr, [(aport, "a")], width=20)
    mux = netlist.new_cell(
        "rmux", CellKind.LOGIC, delay_ns=LOAD_MUX_LOGIC_NS, luts=12 * bram_units, width=width
    )
    out = netlist.new_cell("rdata", CellKind.FF, delay_ns=CLK_Q_NS, ffs=width, width=width)
    addr_sinks = []
    for i in range(bram_units):
        bram = netlist.new_cell(
            f"bram{i}", CellKind.BRAM, delay_ns=BRAM_CLK_Q_NS, brams=1, width=width
        )
        addr_sinks.append((bram, "addr"))
        netlist.connect(f"dout{i}", bram, [(mux, f"i{i}")], kind=NetKind.MEM, width=width)
    netlist.connect("abcast", aport, addr_sinks, kind=NetKind.MEM, width=20)
    netlist.connect("rnet", mux, [(out, "d")], width=width)
    return netlist


def characterize_operator(
    opcode: Opcode,
    dtype: DataType,
    factors: Sequence[int] = DEFAULT_FACTORS,
    device: str = "aws-f1",
    seed: int = 2020,
) -> List[Tuple[int, float]]:
    """Measured operator delay (ns) at each broadcast factor.

    The measurement convention matches the HLS tables: the raw
    register-to-register critical path minus launch clock-to-out and capture
    setup, i.e. "wire + operator" as an HLS per-op estimate would count it.
    """
    points: List[Tuple[int, float]] = []
    for factor in factors:
        netlist = build_arith_skeleton(opcode, dtype, factor)
        try:
            raw = _measure(netlist, device, seed=seed * 1000 + factor)
        except PlacementError:
            # The skeleton outgrew the (empty) device — sweep what fits,
            # the lookup clamps to the largest measured factor.
            break
        points.append((factor, raw - CLK_Q_NS - SETUP_NS))
    return points


def characterize_memory(
    op: str,
    bram_counts: Sequence[int] = DEFAULT_FACTORS,
    device: str = "aws-f1",
    seed: int = 2020,
    width: int = 32,
) -> List[Tuple[int, float]]:
    """Measured ``load``/``store`` path delay (ns) per BRAM bank count."""
    if op not in ("load", "store"):
        raise ReproError(f"memory op must be 'load' or 'store', got {op!r}")
    build = build_store_skeleton if op == "store" else build_load_skeleton
    points: List[Tuple[int, float]] = []
    for count in bram_counts:
        netlist = build(count, width=width)
        try:
            raw = _measure(netlist, device, seed=seed * 1000 + count)
        except PlacementError:
            break
        points.append((count, raw - CLK_Q_NS - SETUP_NS))
    return points


@lru_cache(maxsize=8)
def _default_calibration_cached(device: str, seed: int, smooth_passes: int):
    from repro.delay.calibrated import CalibrationTable
    from repro.ir.types import f32, i32

    table = CalibrationTable()
    sweeps = [
        ("add_i32", Opcode.ADD, i32),
        ("sub_i32", Opcode.SUB, i32),
        ("mul_i32", Opcode.MUL, i32),
        ("add_f32", Opcode.ADD, f32),
        ("sub_f32", Opcode.SUB, f32),
        ("mul_f32", Opcode.MUL, f32),
    ]
    for key, opcode, dtype in sweeps:
        for factor, delay in characterize_operator(
            opcode, dtype, device=device, seed=seed
        ):
            table.add(key, factor, delay)
    for mem in ("load", "store"):
        for count, delay in characterize_memory(mem, device=device, seed=seed):
            table.add(f"{mem}_bram", count, delay)
    return table.smoothed(passes=smooth_passes) if smooth_passes else table


def build_default_calibration(
    device: str = "aws-f1", seed: int = 2020, smooth_passes: int = 1
):
    """The full §4.1 characterization for the common operators.

    Cached per (device, seed, smoothing) — building it runs ~80 placements
    and takes a little while, exactly like the paper's one-off skeleton runs
    whose statistics are "reusable" afterwards.

    Returns a :class:`~repro.delay.calibrated.CalibrationTable`.
    """
    return _default_calibration_cached(device, seed, smooth_passes)
