"""Pre-characterized operator delay and area tables.

Two delay views exist for every operator:

* :func:`hls_predicted_delay` — what the HLS scheduler believes (§2).  Fixed
  per opcode/type/width; never depends on fanout or buffer size.  For
  floating-point multiply it is deliberately conservative, mirroring the
  paper's observation about Vivado HLS (Fig. 9, right panel).
* :func:`physical_cell_delay` — the intrinsic cell delay used by the
  physical model.  Chosen so that a factor-1 skeleton measurement (cell +
  one short net) lands on top of the HLS prediction for integer ops, exactly
  as the paper reports ("perfectly match ... when the broadcast factor is
  small"), while float multiply measures *below* prediction.

Values approximate an UltraScale+ speed grade; absolute numbers matter less
than the relationships between them.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import ReproError
from repro.ir.ops import CMP_OPS, Opcode, Operation
from repro.ir.types import DataType

#: Register clock-to-out (ns) — all sequential cells default to this.
CLK_Q_NS = 0.10
#: BRAM clock-to-dout (ns).
BRAM_CLK_Q_NS = 0.80
#: FIFO status-flag clock-to-out (ns).
FIFO_CLK_Q_NS = 0.45
#: FSM state register clock-to-out (ns).
CTRL_CLK_Q_NS = 0.25
#: Typical connection overhead absorbed into HLS per-op predictions (ns):
#: two short placed nets (operand in, result out) at broadcast factor 1.
TYP_CONNECT_NS = 0.32

#: Intrinsic delay of the memory-port logic cells the RTL generator and the
#: calibration skeletons share.  Chosen so a 1-BRAM buffer access measures
#: on top of the HLS prediction (Fig. 9, middle panel).
STORE_PORT_LOGIC_NS = 0.70
LOAD_ADDR_LOGIC_NS = 0.40
LOAD_MUX_LOGIC_NS = 0.80

#: HLS-side fixed predictions for memory ports ("the predicted delay remains
#: the same regardless of the size of the buffer", §3.1).
HLS_LOAD_NS = 2.10
HLS_STORE_NS = 1.60
HLS_FIFO_READ_NS = 1.00
HLS_FIFO_WRITE_NS = 0.80


def hls_predicted_delay(opcode: Opcode, dtype: DataType) -> float:
    """The scheduler's static delay estimate for one operator, in ns."""
    width = dtype.width
    if dtype.is_float:
        if opcode in (Opcode.ADD, Opcode.SUB):
            return 2.90 if width <= 32 else 3.60
        if opcode is Opcode.MUL:
            # Deliberately conservative, as the paper observes of Vivado.
            return 3.25 if width <= 32 else 4.20
        if opcode is Opcode.DIV:
            return 9.50
        if opcode in CMP_OPS:
            return 1.10
        if opcode is Opcode.SELECT:
            return 0.40 + 0.002 * width
    if opcode in (Opcode.ADD, Opcode.SUB):
        return 0.45 + 0.0103 * width  # carry chain: ~0.78 ns at 32 bits
    if opcode is Opcode.MUL:
        return 2.30 if width <= 18 else 2.95
    if opcode is Opcode.DIV:
        return 0.45 + 0.24 * width
    if opcode in (Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOT):
        return 0.12
    if opcode in (Opcode.SHL, Opcode.SHR):
        return 0.55 + 0.006 * width
    if opcode in CMP_OPS:
        return 0.35 + 0.0045 * width
    if opcode is Opcode.SELECT:
        return 0.30 + 0.002 * width
    if opcode in (Opcode.TRUNC, Opcode.ZEXT, Opcode.SEXT, Opcode.CONST):
        return 0.0
    if opcode is Opcode.LOAD:
        return HLS_LOAD_NS
    if opcode is Opcode.STORE:
        return HLS_STORE_NS
    if opcode is Opcode.FIFO_READ:
        return HLS_FIFO_READ_NS
    if opcode is Opcode.FIFO_WRITE:
        return HLS_FIFO_WRITE_NS
    if opcode in (Opcode.REG, Opcode.CALL):
        return 0.0
    raise ReproError(f"no delay entry for {opcode} {dtype}")


def physical_cell_delay(opcode: Opcode, dtype: DataType) -> float:
    """Intrinsic combinational delay of the implementing cell, in ns."""
    if dtype.is_float and opcode is Opcode.MUL:
        # Measures well below the conservative HLS prediction (Fig. 9).
        return 2.20 if dtype.width <= 32 else 3.00
    if dtype.is_float and opcode in (Opcode.ADD, Opcode.SUB):
        return 2.55 if dtype.width <= 32 else 3.20
    predicted = hls_predicted_delay(opcode, dtype)
    return max(0.05, predicted - TYP_CONNECT_NS)


def op_resources(opcode: Opcode, dtype: DataType) -> Tuple[int, int, int]:
    """Area of one operator instance as ``(luts, ffs, dsps)``."""
    width = dtype.width
    if dtype.is_float:
        if opcode is Opcode.MUL:
            return (90, 120, 3) if width <= 32 else (220, 300, 8)
        if opcode in (Opcode.ADD, Opcode.SUB):
            return (210, 180, 2) if width <= 32 else (450, 400, 3)
        if opcode is Opcode.DIV:
            return (800, 900, 0)
        if opcode in CMP_OPS:
            return (70, 0, 0)
        if opcode is Opcode.SELECT:
            return (width, 0, 0)
    if opcode in (Opcode.ADD, Opcode.SUB):
        return (width, 0, 0)
    if opcode is Opcode.MUL:
        return (width // 2, 0, 1 if width <= 18 else 3)
    if opcode is Opcode.DIV:
        return (width * width // 2, width * 2, 0)
    if opcode in (Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOT):
        return (math.ceil(width / 2), 0, 0)
    if opcode in (Opcode.SHL, Opcode.SHR):
        return (2 * width, 0, 0)
    if opcode in CMP_OPS:
        return (math.ceil(width / 3), 0, 0)
    if opcode is Opcode.SELECT:
        return (math.ceil(width / 2), 0, 0)
    if opcode in (Opcode.TRUNC, Opcode.ZEXT, Opcode.SEXT, Opcode.CONST):
        return (0, 0, 0)
    if opcode is Opcode.REG:
        return (0, width, 0)
    if opcode in (Opcode.LOAD, Opcode.STORE):
        return (8, 0, 0)
    if opcode in (Opcode.FIFO_READ, Opcode.FIFO_WRITE):
        return (6, 0, 0)
    if opcode is Opcode.CALL:
        return (0, 0, 0)  # CALL areas come from attrs, see generator
    raise ReproError(f"no resource entry for {opcode} {dtype}")


def op_delay_key(op: Operation) -> str:
    """Stable string key identifying the (opcode, type) delay class of an op.

    Used to index calibration tables: e.g. ``add_i32``, ``mul_f32``,
    ``load_bram``, ``store_bram``.
    """
    if op.opcode in (Opcode.LOAD, Opcode.STORE):
        return f"{op.opcode.value}_bram"
    if op.result is not None:
        dtype = op.result.type
    elif op.operands:
        dtype = op.operands[-1].type
    else:  # pragma: no cover - CONST handled by result branch
        raise ReproError(f"cannot key {op}")
    return f"{op.opcode.value}_{dtype}"


def dtype_of_key(key: str) -> Tuple[Opcode, DataType]:
    """Inverse of :func:`op_delay_key` for arithmetic keys.

    >>> dtype_of_key("add_i32")
    (<Opcode.ADD: 'add'>, DataType(kind='int', width=32))
    """
    opname, _, typespec = key.rpartition("_")
    if typespec == "bram":
        raise ReproError("memory keys carry no scalar type")
    return Opcode(opname), DataType.parse(typespec)
