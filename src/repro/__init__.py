"""repro — reproduction of "Analysis and Optimization of the Implicit
Broadcasts in FPGA HLS to Improve Maximum Frequency" (DAC 2020).

Public API tour:

* Build designs with :mod:`repro.ir` (:class:`DFGBuilder`, :class:`Design`,
  :class:`Loop`, :class:`Buffer`, :class:`Fifo`) or load one of the paper's
  nine benchmarks from :mod:`repro.designs`.
* Run the end-to-end HLS → placement → timing flow with :class:`Flow`,
  selecting paper techniques via :class:`OptimizationConfig` presets
  (:data:`BASELINE`, :data:`FULL`, :data:`DATA_ONLY`, ...).
* Inspect broadcasts with :mod:`repro.analysis` and regenerate every table
  and figure of the paper from :mod:`repro.experiments`.
* Capture per-stage traces and metrics of any run with :mod:`repro.obs`
  (``obs.Tracer`` + ``obs.activate``), and export them as Chrome traces or
  machine-readable run reports.
"""

from repro import obs
from repro.autotune import AutoTuneResult, auto_optimize
from repro.flow import Flow, FlowResult
from repro.opt import (
    BASELINE,
    CTRL_ONLY,
    DATA_ONLY,
    FULL,
    SKID_NAIVE,
    OptimizationConfig,
)
from repro.control.styles import ControlStyle
from repro.ir import (
    DFG,
    Buffer,
    DataType,
    Design,
    DFGBuilder,
    Fifo,
    Kernel,
    Loop,
    Opcode,
    Operation,
    Value,
)
from repro.delay import (
    CalibratedDelayModel,
    CalibrationTable,
    HlsDelayModel,
    build_default_calibration,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "obs",
    "Flow",
    "auto_optimize",
    "AutoTuneResult",
    "FlowResult",
    "OptimizationConfig",
    "BASELINE",
    "FULL",
    "DATA_ONLY",
    "CTRL_ONLY",
    "SKID_NAIVE",
    "ControlStyle",
    "DFG",
    "DFGBuilder",
    "DataType",
    "Design",
    "Kernel",
    "Loop",
    "Buffer",
    "Fifo",
    "Opcode",
    "Operation",
    "Value",
    "HlsDelayModel",
    "CalibratedDelayModel",
    "CalibrationTable",
    "build_default_calibration",
    "ReproError",
    "__version__",
]
