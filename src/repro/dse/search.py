"""Seeded population search over ``TransformPlan × config × clock``.

The explorer grows a population from the six named configurations (so the
hand-tuned ``full`` point is always generation 0 — the search can only do
better), then mutates survivors: append an applicable transform, drop one,
retarget the clock, or switch the technique set.  Three mechanisms keep
the compile count far below the enumerated point count:

1. **Point coalescing** — proposals are keyed by
   :meth:`~repro.dse.points.DsePoint.digest`; a mutation path that
   re-derives a seen point costs nothing.
2. **Lowering coalescing** — two points whose plans lower to
   byte-identical designs under the same config and clock share one
   compile (e.g. an ``unroll`` override restating the built factor).
3. **Dominance pruning** — before compiling, a candidate's cheap signals
   (post-lowering op count and worst broadcast fanout, the paper's §3
   predictor) are compared against already-evaluated *losers* with the
   same config and clock: if some loser was no bigger and no more
   broadcast-pressured, the candidate is predicted dominated and skipped.

Everything is driven by one ``random.Random(seed)`` and all orderings are
content-digest tie-broken, so the same (design, seed, budget, backend
kind) reproduces the same search — winner digest included.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.designs import build_design
from repro.errors import ReproError
from repro.ir.transforms import TransformPlan, all_candidates
from repro.opt import CONFIG_LABELS
from repro.dse.backends import Backend, PointOutcome, make_backend
from repro.dse.points import DsePoint, PointSignals, point_signals

#: Clock-target factors mutations may retarget to (× the design's own).
CLOCK_FACTORS = (0.8, 1.0, 1.25)

#: Survivors carried into each next generation.
SURVIVORS = 3

#: Mutation proposals drawn per generation.  Deliberately larger than the
#: per-generation compile budget typically allows: surplus proposals feed
#: the dedup/coalesce/prune filters, which are free.
PROPOSALS_PER_GENERATION = 16


@dataclass
class Evaluation:
    """One point's journey through the search."""

    point: DsePoint
    digest: str
    generation: int
    status: str  # "compiled" | "coalesced" | "pruned" | "failed"
    fmax_mhz: float = 0.0
    result_digest: Optional[str] = None
    error: Optional[str] = None
    signals: Optional[PointSignals] = None

    def record(self) -> Dict[str, Any]:
        rec: Dict[str, Any] = {
            "digest": self.digest,
            "generation": self.generation,
            "status": self.status,
            "point": self.point.spec(),
            "label": self.point.config_label,
            "fmax_mhz": round(self.fmax_mhz, 3),
        }
        if self.result_digest:
            rec["result_digest"] = self.result_digest
        if self.error:
            rec["error"] = self.error
        return rec


@dataclass
class DseReport:
    """Outcome of one exploration."""

    design: str
    params: Dict[str, Any]
    seed: int
    budget: int
    backend: str
    winner: Optional[Evaluation] = None
    evaluations: List[Evaluation] = field(default_factory=list)
    enumerated: int = 0
    deduplicated: int = 0
    coalesced: int = 0
    pruned: int = 0
    compiled: int = 0
    failed: int = 0
    generations: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "design": self.design,
            "params": dict(self.params),
            "seed": self.seed,
            "budget": self.budget,
            "backend": self.backend,
            "winner": self.winner.record() if self.winner else None,
            "counters": {
                "enumerated": self.enumerated,
                "deduplicated": self.deduplicated,
                "coalesced": self.coalesced,
                "pruned": self.pruned,
                "compiled": self.compiled,
                "failed": self.failed,
                "generations": self.generations,
            },
            "evaluations": [e.record() for e in self.evaluations],
        }

    def summary(self) -> str:
        lines = [
            f"dse {self.design} seed={self.seed} budget={self.budget} "
            f"backend={self.backend}: {self.enumerated} points enumerated, "
            f"{self.compiled} compiled ({self.deduplicated} duplicate, "
            f"{self.coalesced} coalesced, {self.pruned} pruned, "
            f"{self.failed} failed) over {self.generations} generation(s)"
        ]
        if self.winner is not None:
            lines.append(
                f"winner: {self.winner.point.describe()} "
                f"Fmax={self.winner.fmax_mhz:.0f}MHz "
                f"digest={self.winner.digest[:16]}"
            )
        for ev in sorted(
            (e for e in self.evaluations if e.status == "compiled"),
            key=lambda e: (-e.fmax_mhz, e.digest),
        )[:5]:
            lines.append(
                f"  {ev.fmax_mhz:7.1f} MHz  gen{ev.generation}  "
                f"{ev.point.describe()}"
            )
        return "\n".join(lines)


class _Explorer:
    def __init__(
        self,
        design_name: str,
        params: Dict[str, Any],
        backend: Backend,
        budget: int,
        seed: int,
        clocks: Sequence[float],
    ) -> None:
        self.design_name = design_name
        self.params = dict(params)
        self.backend = backend
        self.budget = budget
        self.seed = seed
        self.rng = random.Random(seed)
        self.design = build_design(design_name, **self.params)
        base_clock = float(self.design.meta.get("clock_mhz", 300.0))
        self.clocks: Tuple[Optional[float], ...] = tuple(
            None if factor == 1.0 else round(base_clock * factor, 1)
            for factor in clocks
        )
        self.report = DseReport(
            design=design_name,
            params=self.params,
            seed=seed,
            budget=budget,
            backend=backend.name,
        )
        #: point digest → Evaluation (level-1 coalescing).
        self.seen: Dict[str, Evaluation] = {}
        #: (lowered digest, config json, clock) → Evaluation (level 2).
        self.by_lowering: Dict[Tuple, Evaluation] = {}
        #: plan digest → signals memo (plans recur across configs/clocks).
        self._signals: Dict[str, PointSignals] = {}

    # -- signals ---------------------------------------------------------
    def signals_for(self, point: DsePoint) -> Optional[PointSignals]:
        plan = point.transform_plan()
        key = plan.digest()
        if key not in self._signals:
            try:
                self._signals[key] = point_signals(self.design, plan)
            except ReproError as exc:
                # Inapplicable plan: record the failure without compiling.
                self._signals[key] = PointSignals("", -1, -1)
                self._signals[key + "/error"] = str(exc)  # type: ignore[assignment]
        sig = self._signals[key]
        return None if sig.ops < 0 else sig

    def _lowering_key(self, point: DsePoint, sig: PointSignals) -> Tuple:
        from repro.hashing import canonical_json

        return (sig.lowered_digest, canonical_json(point.config.to_json()),
                point.clock_mhz)

    # -- admission -------------------------------------------------------
    def admit(
        self, generation: int, batch: Sequence[DsePoint], limit: int
    ) -> List[Evaluation]:
        """Filter proposals down to the points worth compiling.

        Proposals past the compile ``limit`` are not consumed at all — they
        stay unseen (and uncounted), so the enumerated counter only covers
        points the search actually considered.
        """
        admitted: List[Evaluation] = []
        for point in batch:
            if len(admitted) >= limit:
                break
            self.report.enumerated += 1
            digest = point.digest()
            if digest in self.seen:
                self.report.deduplicated += 1
                continue
            sig = self.signals_for(point)
            if sig is None:
                error = self._signals.get(point.transform_plan().digest() + "/error")
                ev = Evaluation(
                    point=point,
                    digest=digest,
                    generation=generation,
                    status="failed",
                    error=str(error or "plan not applicable"),
                )
                self.seen[digest] = ev
                self.report.evaluations.append(ev)
                self.report.failed += 1
                continue
            key = self._lowering_key(point, sig)
            prior = self.by_lowering.get(key)
            if prior is not None:
                ev = Evaluation(
                    point=point,
                    digest=digest,
                    generation=generation,
                    status="coalesced",
                    fmax_mhz=prior.fmax_mhz,
                    result_digest=prior.result_digest,
                    error=prior.error,
                    signals=sig,
                )
                self.seen[digest] = ev
                self.report.evaluations.append(ev)
                self.report.coalesced += 1
                continue
            if self._dominated(point, sig):
                ev = Evaluation(
                    point=point,
                    digest=digest,
                    generation=generation,
                    status="pruned",
                    signals=sig,
                )
                self.seen[digest] = ev
                self.report.evaluations.append(ev)
                self.report.pruned += 1
                continue
            ev = Evaluation(
                point=point,
                digest=digest,
                generation=generation,
                status="compiled",
                signals=sig,
            )
            self.seen[digest] = ev
            admitted.append(ev)
        return admitted

    def _dominated(self, point: DsePoint, sig: PointSignals) -> bool:
        """Predicted no better than an evaluated loser with the same
        config and clock (cheap signals: fewer ops and lower fanout win)."""
        best = self._best()
        for ev in self.report.evaluations:
            if ev.status != "compiled" or ev.signals is None:
                continue
            if best is not None and ev.digest == best.digest:
                continue  # the incumbent's neighborhood stays explorable
            if (
                ev.point.config == point.config
                and ev.point.clock_mhz == point.clock_mhz
                and ev.signals.dominates(sig)
                and not sig.dominates(ev.signals)
            ):
                return True
        return False

    # -- evaluation ------------------------------------------------------
    def evaluate(self, admitted: List[Evaluation]) -> None:
        if not admitted:
            return
        outcomes = self.backend.evaluate(
            self.design_name,
            self.params,
            self.seed,
            [ev.point for ev in admitted],
        )
        for ev, outcome in zip(admitted, outcomes):
            self.report.compiled += 1
            if outcome.ok:
                ev.fmax_mhz = outcome.fmax_mhz
                ev.result_digest = outcome.result_digest
            else:
                ev.status = "failed"
                ev.error = outcome.error
                self.report.failed += 1
            self.report.evaluations.append(ev)
            if ev.signals is not None and ev.status == "compiled":
                self.by_lowering.setdefault(
                    self._lowering_key(ev.point, ev.signals), ev
                )

    def _best(self) -> Optional[Evaluation]:
        compiled = [
            e
            for e in self.report.evaluations
            if e.status in ("compiled", "coalesced") and e.error is None
        ]
        if not compiled:
            return None
        return min(compiled, key=lambda e: (-e.fmax_mhz, e.digest))

    # -- proposal generation ---------------------------------------------
    def generation_zero(self) -> List[DsePoint]:
        return [
            DsePoint.make(CONFIG_LABELS[label])
            for label in sorted(CONFIG_LABELS)
        ]

    def mutate(self, parent: DsePoint) -> Optional[DsePoint]:
        """One seeded mutation of ``parent`` (None = nothing applicable)."""
        moves = ["config", "clock", "add"]
        if parent.plan:
            moves.append("drop")
        move = self.rng.choice(moves)
        if move == "config":
            labels = [
                l for l in sorted(CONFIG_LABELS)
                if CONFIG_LABELS[l] != parent.config
            ]
            return DsePoint.make(
                CONFIG_LABELS[self.rng.choice(labels)],
                plan=parent.plan_spec(),
                clock_mhz=parent.clock_mhz,
            )
        if move == "clock":
            choices = [c for c in self.clocks if c != parent.clock_mhz]
            if not choices:
                return None
            return DsePoint.make(
                parent.config,
                plan=parent.plan_spec(),
                clock_mhz=self.rng.choice(choices),
            )
        if move == "drop":
            return DsePoint.make(
                parent.config,
                plan=parent.plan_spec()[:-1],
                clock_mhz=parent.clock_mhz,
            )
        # "add": extend the plan with a transform applicable to the
        # *plan-applied* design, so compositions (unroll → tile) emerge.
        try:
            transformed = parent.transform_plan().apply(self.design)
        except ReproError:
            return None
        candidates = all_candidates(transformed)
        if not candidates:
            return None
        transform = self.rng.choice(candidates)
        return DsePoint.make(
            parent.config,
            plan=parent.plan_spec() + [transform.spec()],
            clock_mhz=parent.clock_mhz,
        )

    def survivors(self) -> List[DsePoint]:
        ranked = sorted(
            (
                e
                for e in self.report.evaluations
                if e.status == "compiled" and e.error is None
            ),
            key=lambda e: (-e.fmax_mhz, e.digest),
        )
        return [e.point for e in ranked[:SURVIVORS]]

    # -- main loop -------------------------------------------------------
    def run(self, max_generations: int) -> DseReport:
        budget_left = self.budget
        batch = self.generation_zero()
        generation = 0
        while budget_left > 0 and batch:
            admitted = self.admit(generation, batch, budget_left)
            self.evaluate(admitted)
            budget_left = self.budget - self.report.compiled
            self.report.generations = generation + 1
            generation += 1
            if generation > max_generations:
                break
            parents = self.survivors()
            if not parents:
                break
            batch = []
            for _ in range(PROPOSALS_PER_GENERATION):
                parent = parents[
                    self.rng.randrange(len(parents))
                ]
                child = self.mutate(parent)
                if child is not None:
                    batch.append(child)
        self.report.winner = self._best()
        return self.report


def explore(
    design: str,
    params: Optional[Dict[str, Any]] = None,
    backend: Any = "inline",
    budget: int = 24,
    seed: int = 2020,
    max_generations: int = 8,
    clocks: Sequence[float] = CLOCK_FACTORS,
    jobs: int = 1,
    host: str = "127.0.0.1",
    port: int = 9321,
) -> DseReport:
    """Explore ``design``'s transform × config × clock space.

    Args:
        design: Registry name (see :func:`repro.designs.build_design`).
        params: Design-builder kwargs.
        backend: Backend name (``inline`` / ``engine`` / ``service`` /
            ``cluster``) or a :class:`~repro.dse.backends.Backend`.
        budget: Maximum number of flow compiles (coalesced/pruned points
            are free).
        seed: Drives the mutation stream *and* every flow compile, so a
            (design, seed, budget) triple is fully reproducible.
        max_generations: Upper bound on mutation rounds.
        clocks: Clock-retarget factors relative to the design's target.
        jobs / host / port: Backend transport knobs (engine worker count,
            service/cluster address).
    """
    backend = make_backend(backend, jobs=jobs, host=host, port=port)
    explorer = _Explorer(
        design_name=design,
        params=params or {},
        backend=backend,
        budget=int(budget),
        seed=int(seed),
        clocks=clocks,
    )
    return explorer.run(int(max_generations))
