"""Design-space points and their cheap pre-compile signals.

A :class:`DsePoint` is one coordinate of the explored space:
``TransformPlan × OptimizationConfig × clock target``.  Points are
immutable, hashable and digest-stable (:meth:`DsePoint.digest` uses the
shared :mod:`repro.hashing` recipe), so the explorer can coalesce
duplicate proposals no matter which mutation path produced them.

:func:`point_signals` computes the *cheap* signals the pruner consults
before paying for a compile: the plan-applied, pragma-lowered design's op
count and worst broadcast fanout (the paper's §3 predictor of broadcast-
limited Fmax), plus the lowered design's content digest — two points whose
plans lower to byte-identical designs under the same config and clock
cannot differ in outcome, so the explorer reuses the first result
(second-level coalescing, above the point-digest dedup).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.hashing import content_digest
from repro.ir.passes import apply_pragmas
from repro.ir.program import Design
from repro.ir.transforms import TransformPlan
from repro.opt import CONFIG_LABELS, OptimizationConfig
from repro.pipeline.digest import design_digest
from repro.service.request import plan_to_spec, plan_to_tuple

#: Version tag of the point digest encoding.
POINT_SCHEMA = "repro-dse-point/1"


@dataclass(frozen=True)
class DsePoint:
    """One ``plan × config × clock`` coordinate of the search space.

    ``clock_mhz = None`` means the design's own clock target (the
    hand-tuned baseline every search must be able to reproduce).
    """

    config: OptimizationConfig
    plan: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...] = field(
        default_factory=tuple
    )
    clock_mhz: Optional[float] = None

    @classmethod
    def make(
        cls,
        config: OptimizationConfig,
        plan: Any = None,
        clock_mhz: Optional[float] = None,
    ) -> "DsePoint":
        return cls(
            config=config,
            plan=plan_to_tuple(plan),
            clock_mhz=None if clock_mhz is None else float(clock_mhz),
        )

    # -- views -----------------------------------------------------------
    def plan_spec(self) -> list:
        return plan_to_spec(self.plan)

    def transform_plan(self) -> TransformPlan:
        return TransformPlan.from_spec(self.plan_spec())

    @property
    def config_label(self) -> str:
        """The named label when the config is one of the canonical six."""
        for label, config in CONFIG_LABELS.items():
            if config == self.config:
                return label
        return self.config.label

    def spec(self) -> Dict[str, Any]:
        """Canonical JSON encoding (also the digest payload)."""
        return {
            "config": self.config.to_json(),
            "plan": self.plan_spec(),
            "clock_mhz": self.clock_mhz,
        }

    def digest(self) -> str:
        """The coalescing identity of this point (stable across processes)."""
        return content_digest({"schema": POINT_SCHEMA, **self.spec()})

    def describe(self) -> str:
        names = "+".join(name for name, _params in self.plan) or "-"
        clock = "design" if self.clock_mhz is None else f"{self.clock_mhz:.0f}MHz"
        return f"[{self.config_label}] plan={names} clock={clock}"


@dataclass(frozen=True)
class PointSignals:
    """Pre-compile signals of one point (config/clock-independent).

    Attributes:
        lowered_digest: Content digest of the plan-applied, pragma-lowered
            design — the second-level coalescing key.
        ops: Total operation count after lowering (predicted stage cost).
        max_fanout: Worst value fanout after lowering (the §3 predictor of
            broadcast-limited Fmax).
    """

    lowered_digest: str
    ops: int
    max_fanout: int

    def dominates(self, other: "PointSignals") -> bool:
        """Whether this point is predicted no worse than ``other`` on every
        cheap axis (smaller-or-equal pressure and cost)."""
        return self.ops <= other.ops and self.max_fanout <= other.max_fanout


def point_signals(design: Design, plan: TransformPlan) -> PointSignals:
    """Compute the cheap signals of ``plan`` applied to ``design``."""
    transformed = plan.apply(design)
    lowered = apply_pragmas(transformed)
    ops = 0
    max_fanout = 0
    for _kernel, loop in lowered.all_loops():
        ops += len(loop.body.ops)
        for value in loop.body.values.values():
            fanout = len(value.uses)
            if fanout > max_fanout:
                max_fanout = fanout
    return PointSignals(
        lowered_digest=design_digest(lowered), ops=ops, max_fanout=max_fanout
    )
