"""Evaluation backends for the design-space explorer.

A backend turns a batch of :class:`~repro.dse.points.DsePoint` into
observed Fmax numbers.  All four run the *same* flow code path — the
explorer's results are backend-independent, only wall-clock and placement
differ:

* :class:`InlineBackend` — a :class:`~repro.flow.Flow` in this process
  (warm stage/memo caches, no pickling; the default);
* :class:`EngineBackend` — the multiprocessing experiment engine
  (:class:`repro.engine.pool.Engine`), one worker per ``--jobs``;
* :class:`ServiceBackend` — a single-node flow service
  (:class:`~repro.service.client.ServiceClient`): submissions coalesce
  with whatever else the daemon is compiling, and results persist in its
  store;
* :class:`ClusterBackend` — the consistent-hash cluster router
  (:class:`~repro.cluster.router.ClusterRouter`): points scatter across
  the fleet by request digest.

A failed compile is *data*, not an abort: the point comes back with
``error`` set and the search treats it as dominated by everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.designs import build_design
from repro.engine.jobs import FlowFailure, FlowJob
from repro.errors import ReproError
from repro.flow import Flow
from repro.dse.points import DsePoint

#: Names accepted by :func:`make_backend` (the CLI's ``--backend``).
BACKEND_NAMES = ("inline", "engine", "service", "cluster")


@dataclass
class PointOutcome:
    """What evaluating one point produced."""

    point: DsePoint
    fmax_mhz: float = 0.0
    result_digest: Optional[str] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class Backend:
    """Batch evaluator protocol."""

    name = "backend"

    def evaluate(
        self,
        design: str,
        params: Dict[str, Any],
        seed: int,
        batch: Sequence[DsePoint],
    ) -> List[PointOutcome]:
        raise NotImplementedError


class InlineBackend(Backend):
    """Evaluate points with a flow in this process."""

    name = "inline"

    def __init__(self, flow: Optional[Flow] = None) -> None:
        self.flow = flow

    def evaluate(self, design, params, seed, batch):
        if self.flow is None:
            self.flow = Flow(seed=seed)
        built = build_design(design, **params)
        outcomes: List[PointOutcome] = []
        for point in batch:
            try:
                result = self.flow.run(
                    built,
                    point.config,
                    plan=point.transform_plan(),
                    clock_mhz=point.clock_mhz,
                )
            except ReproError as exc:
                outcomes.append(PointOutcome(point=point, error=str(exc)))
                continue
            outcomes.append(
                PointOutcome(
                    point=point,
                    fmax_mhz=result.fmax_mhz,
                    result_digest=result.result_digest(),
                )
            )
        return outcomes


class EngineBackend(Backend):
    """Evaluate a batch across engine worker processes."""

    name = "engine"

    def __init__(self, jobs: int = 1, flow: Optional[Flow] = None) -> None:
        self.jobs = jobs
        self.flow = flow

    def evaluate(self, design, params, seed, batch):
        from repro.engine.pool import Engine

        engine = Engine(jobs=self.jobs, flow=self.flow or Flow(seed=seed))
        flow_jobs = [
            FlowJob.make(
                design,
                point.config,
                plan=point.plan_spec(),
                clock_mhz=point.clock_mhz,
                tag=point.digest(),
                **params,
            )
            for point in batch
        ]
        results = engine.run_flows(flow_jobs, collect_errors=True)
        outcomes: List[PointOutcome] = []
        for point, result in zip(batch, results):
            if isinstance(result, FlowFailure):
                outcomes.append(PointOutcome(point=point, error=result.error))
            else:
                outcomes.append(
                    PointOutcome(
                        point=point,
                        fmax_mhz=result.fmax_mhz,
                        result_digest=result.result_digest(),
                    )
                )
        return outcomes


def _outcome_from_record(point: DsePoint, record: Dict[str, Any]) -> PointOutcome:
    summary = record.get("summary") or {}
    if record.get("state") == "failed" or "fmax_mhz" not in summary:
        return PointOutcome(
            point=point, error=str(record.get("error") or "no result")
        )
    return PointOutcome(
        point=point,
        fmax_mhz=float(summary["fmax_mhz"]),
        result_digest=record.get("result_digest"),
    )


class ServiceBackend(Backend):
    """Evaluate points through one flow-service daemon."""

    name = "service"

    def __init__(self, client) -> None:
        self.client = client

    def evaluate(self, design, params, seed, batch):
        from repro.service.client import ServiceError

        outcomes: List[PointOutcome] = []
        for point in batch:
            try:
                record = self.client.submit(
                    design,
                    config=point.config.to_json(),
                    params=dict(params),
                    seed=seed,
                    clock_mhz=point.clock_mhz,
                    plan=point.plan_spec(),
                    wait=True,
                )
            except ServiceError as exc:
                outcomes.append(PointOutcome(point=point, error=str(exc)))
                continue
            outcomes.append(_outcome_from_record(point, record))
        return outcomes


class ClusterBackend(Backend):
    """Evaluate points through the cluster router (digest-sharded fleet).

    ``router`` is anything with the router submit signature: an in-process
    :class:`~repro.cluster.router.ClusterRouter`, or a
    :class:`~repro.service.client.ServiceClient` pointed at a
    :class:`~repro.cluster.server.RouterServer` (the router's HTTP
    ``/submit`` speaks the node protocol).
    """

    name = "cluster"

    def __init__(self, router) -> None:
        self.router = router

    def evaluate(self, design, params, seed, batch):
        from repro.service.client import ServiceError

        outcomes: List[PointOutcome] = []
        for point in batch:
            try:
                record = self.router.submit(
                    design,
                    config=point.config.to_json(),
                    params=dict(params),
                    seed=seed,
                    clock_mhz=point.clock_mhz,
                    plan=point.plan_spec(),
                    wait=True,
                )
            except ServiceError as exc:
                outcomes.append(PointOutcome(point=point, error=str(exc)))
                continue
            outcomes.append(_outcome_from_record(point, record))
        return outcomes


def make_backend(
    spec: Any = "inline",
    jobs: int = 1,
    host: str = "127.0.0.1",
    port: int = 9321,
    flow: Optional[Flow] = None,
) -> Backend:
    """Materialize a backend from a name (the CLI) or pass one through."""
    if isinstance(spec, Backend):
        return spec
    name = str(spec or "inline").strip().lower()
    if name == "inline":
        return InlineBackend(flow=flow)
    if name == "engine":
        return EngineBackend(jobs=jobs, flow=flow)
    if name == "service":
        from repro.service.client import ServiceClient

        return ServiceBackend(ServiceClient(host=host, port=port))
    if name == "cluster":
        from repro.service.client import ServiceClient

        # A router server's /submit speaks the node protocol, so the plain
        # service client is the transport; routing happens server-side.
        return ClusterBackend(ServiceClient(host=host, port=port))
    raise ReproError(
        f"unknown DSE backend {spec!r}; valid backends: {', '.join(BACKEND_NAMES)}"
    )
