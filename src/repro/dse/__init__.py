"""Design-space exploration over ``TransformPlan × config × clock``.

Public surface:

* :func:`~repro.dse.search.explore` — the seeded population search;
* :class:`~repro.dse.search.DseReport` — its deterministic result;
* :class:`~repro.dse.points.DsePoint` / :func:`~repro.dse.points.point_signals`
  — the explored coordinates and their cheap pre-compile signals;
* :func:`~repro.dse.backends.make_backend` and the four backend classes —
  inline flow, multiprocessing engine, flow service, cluster router.
"""

from repro.dse.backends import (
    BACKEND_NAMES,
    Backend,
    ClusterBackend,
    EngineBackend,
    InlineBackend,
    PointOutcome,
    ServiceBackend,
    make_backend,
)
from repro.dse.points import POINT_SCHEMA, DsePoint, PointSignals, point_signals
from repro.dse.search import DseReport, Evaluation, explore

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "ClusterBackend",
    "DsePoint",
    "DseReport",
    "EngineBackend",
    "Evaluation",
    "InlineBackend",
    "POINT_SCHEMA",
    "PointOutcome",
    "PointSignals",
    "ServiceBackend",
    "explore",
    "make_backend",
    "point_signals",
]
