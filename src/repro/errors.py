"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the flow boundary.  Sub-classes are grouped by
pipeline phase: IR construction, scheduling, RTL generation, physical design,
and simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed IR: bad types, dangling values, cyclic dataflow, etc."""


class TypeMismatchError(IRError):
    """An operation was given operands of incompatible types."""


class VerificationError(IRError):
    """A dataflow graph or design failed structural verification."""


class TransformError(IRError):
    """A design transform is inapplicable or would change semantics."""


class SchedulingError(ReproError):
    """The scheduler could not produce a legal schedule."""


class UnschedulableError(SchedulingError):
    """A single operation cannot fit in the clock target even alone."""


class ReportParseError(SchedulingError):
    """A schedule report could not be parsed back into a Schedule."""


class RTLError(ReproError):
    """Netlist generation failed or produced an inconsistent netlist."""


class ControlError(RTLError):
    """Flow-control generation failed (e.g. invalid skid-buffer cuts)."""


class SyncPruningError(ReproError):
    """Synchronization pruning was asked to do something unsound."""


class DynamicLatencyError(SyncPruningError):
    """Longest-latency pruning refused a module with dynamic latency."""


class PhysicalError(ReproError):
    """Placement, replication, retiming or timing analysis failed."""


class PlacementError(PhysicalError):
    """The placer ran out of sites of a required type."""


class SimulationError(ReproError):
    """Cycle-accurate simulation hit an illegal condition."""


class FifoOverflowError(SimulationError):
    """A bounded FIFO was pushed while full (data would be lost)."""


class FifoUnderflowError(SimulationError):
    """A FIFO was popped while empty."""
