"""repro.engine — the parallel experiment engine.

Fans independent ``design × config`` flow runs out over a
``multiprocessing`` pool with deterministic result ordering, merged
observability, and a shared on-disk calibration cache::

    from repro.engine import Engine, FlowJob
    from repro.opt import BASELINE, FULL

    engine = Engine(jobs=4)
    results = engine.run_flows([
        FlowJob.make("matmul", BASELINE),
        FlowJob.make("matmul", FULL),
        FlowJob.make("stencil", BASELINE, iterations=4),
    ])  # results[i] corresponds to jobs[i], always

Every experiment driver in :mod:`repro.experiments` accepts an
``engine=`` argument, and the CLI exposes it as ``--jobs N`` on ``run``,
``all`` and the table/figure commands.
"""

from repro.engine.jobs import FlowFailure, FlowJob, run_flow_job
from repro.engine.merge import graft_trace
from repro.engine.pool import Engine, default_jobs, ensure_pickle_depth

__all__ = [
    "Engine",
    "FlowJob",
    "FlowFailure",
    "run_flow_job",
    "graft_trace",
    "default_jobs",
    "ensure_pickle_depth",
]
