"""Job descriptions for the parallel experiment engine.

A :class:`FlowJob` names everything a worker process needs to reproduce
one ``design × config`` flow run: the registry name of the design, the
builder parameters, and the :class:`~repro.opt.OptimizationConfig`.  Jobs
are small, immutable, and picklable — the *results* travel back from the
workers, the inputs travel out as these specs.

Keeping the design as a (name, params) pair rather than a built
:class:`~repro.ir.program.Design` is deliberate: designs can be large, and
every builder in :mod:`repro.designs` is deterministic, so rebuilding in
the worker is cheaper than shipping the IR across the process boundary.
"""

from __future__ import annotations

import traceback as _traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.designs import build_design
from repro.opt import OptimizationConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.flow import Flow, FlowResult


@dataclass(frozen=True)
class FlowJob:
    """One ``design × config`` unit of work.

    Attributes:
        design: Registry name (see :func:`repro.designs.build_design`).
        config: The optimization techniques to apply.
        params: Design-builder keyword arguments, as a sorted tuple of
            ``(name, value)`` pairs so the job is hashable.
        tag: Free-form caller label (experiments use it to map results
            back to table rows / figure points).
        plan: Transform plan applied before lowering, in the same hashable
            nested-tuple form as :attr:`repro.service.request.FlowRequest.plan`
            (empty = plain design).
        clock_mhz: Per-job HLS clock-target override (``None`` keeps the
            flow's / the design's target).
    """

    design: str
    config: OptimizationConfig
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)
    tag: Optional[str] = None
    plan: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...] = field(
        default_factory=tuple
    )
    clock_mhz: Optional[float] = None

    @classmethod
    def make(
        cls,
        design: str,
        config: OptimizationConfig,
        tag: Optional[str] = None,
        plan: Any = None,
        clock_mhz: Optional[float] = None,
        **params: Any,
    ) -> "FlowJob":
        from repro.service.request import plan_to_tuple

        return cls(
            design=design,
            config=config,
            params=tuple(sorted(params.items())),
            tag=tag,
            plan=plan_to_tuple(plan),
            clock_mhz=None if clock_mhz is None else float(clock_mhz),
        )

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def describe(self) -> str:
        extra = ", ".join(f"{k}={v}" for k, v in self.params)
        suffix = f" ({extra})" if extra else ""
        return f"{self.design}[{self.config.label}]{suffix}"


@dataclass(frozen=True)
class FlowFailure:
    """One job of a batch that raised instead of producing a result.

    Returned in a job's result slot by ``Engine.run_flows(...,
    collect_errors=True)``, so one bad ``design × config`` point no longer
    kills the sibling runs of the batch — the CLI reports every failure and
    exits nonzero while still printing the results that did complete.
    """

    job: FlowJob
    error: str
    error_type: str
    traceback: str = ""

    @classmethod
    def from_exception(cls, job: FlowJob, exc: BaseException) -> "FlowFailure":
        return cls(
            job=job,
            error=str(exc),
            error_type=type(exc).__name__,
            traceback="".join(
                _traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
        )

    def describe(self) -> str:
        return f"{self.job.describe()} failed: {self.error_type}: {self.error}"

    def record(self) -> Dict[str, Any]:
        """JSON-ready record (the ``failures`` list of ``--json`` reports)."""
        return {
            "design": self.job.design,
            "config": self.job.config.label,
            "tag": self.job.tag,
            "error_type": self.error_type,
            "error": self.error,
        }


def run_flow_job(flow: "Flow", job: FlowJob) -> "FlowResult":
    """Execute one job with ``flow`` — the same code path sequential and
    parallel execution share, so ``--jobs N`` cannot change results."""
    design = build_design(job.design, **job.param_dict)
    plan = None
    if job.plan:
        from repro.ir.transforms import TransformPlan
        from repro.service.request import plan_to_spec

        plan = TransformPlan.from_spec(plan_to_spec(job.plan))
    return flow.run(design, job.config, plan=plan, clock_mhz=job.clock_mhz)
