"""Job descriptions for the parallel experiment engine.

A :class:`FlowJob` names everything a worker process needs to reproduce
one ``design × config`` flow run: the registry name of the design, the
builder parameters, and the :class:`~repro.opt.OptimizationConfig`.  Jobs
are small, immutable, and picklable — the *results* travel back from the
workers, the inputs travel out as these specs.

Keeping the design as a (name, params) pair rather than a built
:class:`~repro.ir.program.Design` is deliberate: designs can be large, and
every builder in :mod:`repro.designs` is deterministic, so rebuilding in
the worker is cheaper than shipping the IR across the process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.designs import build_design
from repro.opt import OptimizationConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.flow import Flow, FlowResult


@dataclass(frozen=True)
class FlowJob:
    """One ``design × config`` unit of work.

    Attributes:
        design: Registry name (see :func:`repro.designs.build_design`).
        config: The optimization techniques to apply.
        params: Design-builder keyword arguments, as a sorted tuple of
            ``(name, value)`` pairs so the job is hashable.
        tag: Free-form caller label (experiments use it to map results
            back to table rows / figure points).
    """

    design: str
    config: OptimizationConfig
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)
    tag: Optional[str] = None

    @classmethod
    def make(
        cls,
        design: str,
        config: OptimizationConfig,
        tag: Optional[str] = None,
        **params: Any,
    ) -> "FlowJob":
        return cls(
            design=design,
            config=config,
            params=tuple(sorted(params.items())),
            tag=tag,
        )

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def describe(self) -> str:
        extra = ", ".join(f"{k}={v}" for k, v in self.params)
        suffix = f" ({extra})" if extra else ""
        return f"{self.design}[{self.config.label}]{suffix}"


def run_flow_job(flow: "Flow", job: FlowJob) -> "FlowResult":
    """Execute one job with ``flow`` — the same code path sequential and
    parallel execution share, so ``--jobs N`` cannot change results."""
    design = build_design(job.design, **job.param_dict)
    return flow.run(design, job.config)
