"""The parallel experiment engine.

One :class:`Engine` fans independent flow runs (or arbitrary picklable
tasks) out over a ``multiprocessing`` pool:

* **Determinism** — results come back in *submission* order no matter
  which worker finished first, and every job runs through the exact same
  :func:`~repro.engine.jobs.run_flow_job` code path as a sequential run,
  so ``--jobs N`` can never change a table, only the wall clock.
* **Observability** — each worker traces its jobs into a private
  :class:`~repro.obs.tracer.Tracer`; the engine grafts those forests into
  the caller's ambient tracer (see :mod:`repro.engine.merge`), so
  ``--json`` reports and Chrome traces keep working under parallelism,
  with one ``tid`` lane per worker.
* **Calibration economy** — workers resolve the §4.1 characterization
  through the persistent disk cache (:mod:`repro.delay.cache`); the file
  lock there guarantees N cold workers run exactly one characterization
  between them.
* **Stage-artifact economy** — workers inherit the flow's stage-cache
  policy (:mod:`repro.pipeline`), so all of them read and write the same
  content-addressed store under ``$REPRO_CACHE_DIR/stages``: a pipeline
  stage computed by any worker (or any earlier run) is skipped by every
  other worker whose inputs hash the same, and concurrent same-digest
  writes are idempotent by the store's atomic-replace discipline.

The pool prefers the ``fork`` start method where available: it is fast
and lets workers inherit an already-memoized calibration table from the
parent for free.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.engine.jobs import FlowFailure, FlowJob, run_flow_job
from repro.engine.merge import graft_trace
from repro.errors import ReproError
from repro.flow import Flow, FlowResult


def default_jobs() -> int:
    """Worker count for ``--jobs 0`` / "use the machine": the CPU count."""
    return os.cpu_count() or 1


#: A FlowResult embeds full schedules whose DFG object graph is as deep as
#: the longest def-use chain (thousands of ops for genome/lstm), and pickle
#: recurses once per level.  Both ends of the pipe need headroom beyond the
#: default limit of 1000; 50k levels are still far from the C stack limit.
PICKLE_RECURSION_LIMIT = 50_000


def ensure_pickle_depth() -> None:
    """Raise the recursion limit so deep FlowResult graphs (de)serialize.

    Used by both pool workers here and the flow service's result store,
    which pickles the same object graphs to disk.
    """
    if sys.getrecursionlimit() < PICKLE_RECURSION_LIMIT:
        sys.setrecursionlimit(PICKLE_RECURSION_LIMIT)


#: Backwards-compatible private alias (pre-service name).
_ensure_pickle_depth = ensure_pickle_depth


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# -- worker side ------------------------------------------------------------
#: Per-worker state installed by the pool initializer.
_WORKER_FLOW: Optional[Flow] = None


def _init_worker(flow: Flow, journal_path: Optional[str] = None) -> None:
    global _WORKER_FLOW
    _WORKER_FLOW = flow
    _ensure_pickle_depth()  # results are pickled on the worker side
    if journal_path:
        # Re-activate the parent's event journal under this worker's pid,
        # so stage cache hit/miss and calibration-build events emitted
        # inside pool workers land in the same JSONL stream.  (A fork
        # start method would inherit the parent's handle, but spawn would
        # not — activating explicitly covers both.)
        from repro.obs.journal import EventJournal, activate_journal

        activate_journal(EventJournal(journal_path, source="engine-worker"))


def _run_task(payload: Tuple[int, Any]) -> Tuple[int, Any, "obs.Tracer", int]:
    """Execute one indexed task under a private tracer.

    The index travels with the result so the parent can restore submission
    order; the tracer travels back whole so the parent can graft it.  Both
    are pickled in one tuple, which preserves the identity link between a
    ``FlowResult.trace`` span and the tracer that owns it.
    """
    index, task = payload
    tracer = obs.Tracer()
    with obs.activate(tracer):
        if isinstance(task, FlowJob):
            assert _WORKER_FLOW is not None, "worker used before initialization"
            # A raising job must come home as data, not as an exception:
            # letting it propagate would abort the pool iteration in the
            # parent and throw away every sibling result of the batch.
            try:
                result: Any = run_flow_job(_WORKER_FLOW, task)
            except Exception as exc:
                result = FlowFailure.from_exception(task, exc)
        else:
            func, item = task
            result = func(item)
    return index, result, tracer, os.getpid()


# -- engine -----------------------------------------------------------------
class Engine:
    """Runs experiment workloads, sequentially or across worker processes.

    Args:
        jobs: Worker count.  ``1`` (the default) runs everything inline in
            the calling process — the exact legacy behavior.  ``0`` means
            "one per CPU".
        flow: The :class:`~repro.flow.Flow` executing flow jobs; workers
            receive a pickled copy, so seeds, clock overrides, injected
            calibration tables and cache paths all apply identically in
            every process.
    """

    def __init__(self, jobs: int = 1, flow: Optional[Flow] = None) -> None:
        jobs = int(jobs)
        if jobs < 0:
            raise ReproError(f"--jobs must be >= 0, got {jobs}")
        self.jobs = jobs if jobs > 0 else default_jobs()
        self.flow = flow or Flow()

    # -- public API ------------------------------------------------------
    def run_flows(
        self, jobs: Sequence[FlowJob], collect_errors: bool = False
    ) -> List[FlowResult]:
        """Run every job; results are positionally aligned with ``jobs``.

        With ``collect_errors=False`` (the default) the first failing job
        raises, exactly like a sequential loop would.  With
        ``collect_errors=True`` a failing job yields a
        :class:`~repro.engine.jobs.FlowFailure` in its result slot instead,
        and every other job still runs to completion — the CLI uses this so
        a partial batch failure reports every outcome and exits nonzero.
        """
        jobs = list(jobs)
        if self.jobs == 1 or len(jobs) <= 1:
            results: List[Any] = []
            for job in jobs:
                try:
                    results.append(run_flow_job(self.flow, job))
                except Exception as exc:
                    if not collect_errors:
                        raise
                    results.append(FlowFailure.from_exception(job, exc))
            return results
        return self._run_parallel(jobs, collect_errors=collect_errors)

    def map(
        self,
        func: Callable[[Any], Any],
        items: Iterable[Any],
    ) -> List[Any]:
        """Parallel ``[func(x) for x in items]`` for non-flow work.

        ``func`` must be a module-level (picklable) callable.  Like
        :meth:`run_flows`, results keep submission order and worker traces
        are grafted into the ambient tracer.
        """
        items = list(items)
        if self.jobs == 1 or len(items) <= 1:
            return [func(item) for item in items]
        return self._run_parallel([(func, item) for item in items])

    # -- execution -------------------------------------------------------
    def _run_parallel(
        self, tasks: List[Any], collect_errors: bool = False
    ) -> List[Any]:
        # Unpickling happens in the pool's result-handler thread, which
        # shares the process-wide recursion limit; raise it before any
        # result can arrive (the limit is never lowered back — lowering it
        # under a live thread would race).
        ensure_pickle_depth()
        parent = obs.current_tracer()
        workers = min(self.jobs, len(tasks))
        results: List[Any] = [None] * len(tasks)
        traces: List[Optional[Tuple["obs.Tracer", int]]] = [None] * len(tasks)
        ctx = _pool_context()
        journal = obs.current_journal()
        journal_path = str(journal.path) if journal is not None else None
        obs.emit_event("engine.pool_start", workers=workers, tasks=len(tasks))
        with ctx.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(self.flow, journal_path),
        ) as pool:
            completed = pool.imap_unordered(
                _run_task, list(enumerate(tasks)), chunksize=1
            )
            for index, result, tracer, pid in completed:
                results[index] = result
                traces[index] = (tracer, pid)
        obs.emit_event("engine.pool_done", workers=workers, tasks=len(tasks))
        # Graft in submission order so the merged report lists runs exactly
        # as a sequential execution would, regardless of completion order.
        for entry in traces:
            if entry is not None:
                tracer, pid = entry
                graft_trace(parent, tracer, worker=pid)
        if not collect_errors:
            for result in results:  # earliest submitted failure wins
                if isinstance(result, FlowFailure):
                    raise ReproError(result.describe())
        return results
