"""Merging worker-process traces into the parent's tracer.

Each engine worker runs its jobs under a private
:class:`~repro.obs.tracer.Tracer` (the ambient-tracer stack is per
process).  When results come home, the worker's span forest is grafted
into the parent tracer so ``--json`` run reports and ``--trace-out``
Chrome traces look exactly like a sequential run's — one tracer, every
flow span present, deterministic order.

Two adjustments happen during the graft:

* **Time rebasing** — each tracer's span times are relative to its own
  construction epoch (``time.perf_counter()``).  On the platforms we care
  about ``perf_counter`` is a system-wide monotonic clock, so the child
  epoch minus the parent epoch is the real offset between the two
  timelines; shifting the child spans by it makes the merged Chrome trace
  show true wall-clock overlap of the workers.
* **Worker tagging** — every grafted root gains a ``worker`` attribute
  (the worker's PID).  The Chrome exporter maps it to the ``tid`` lane, so
  parallel runs render as stacked per-worker swimlanes.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.tracer import NullTracer, Tracer


def graft_trace(
    parent: Tracer,
    child: Tracer,
    worker: Optional[int] = None,
) -> None:
    """Move ``child``'s span forest and metrics into ``parent``.

    No-op when ``parent`` is the inert :class:`NullTracer` (nothing is
    observing, so nothing is kept — same contract as the rest of
    :mod:`repro.obs`).
    """
    if isinstance(parent, NullTracer):
        return
    # Rebase child times onto the parent's epoch.  A negative delta means
    # the clocks are not comparable (exotic platform); clamp to zero so
    # spans stay well-formed rather than travelling back in time.
    delta = max(0.0, child._epoch - parent._epoch)
    for root in child.roots:
        for node in root.walk():
            node.start_s += delta
            if node.end_s is not None:
                node.end_s += delta
        if worker is not None:
            root.attrs.setdefault("worker", worker)
        parent.roots.append(root)
    parent.metrics.merge([child.metrics])
    child.roots = []
