"""Zero-dependency HTTP/1.1 front end for the flow service.

A deliberately small server over ``asyncio`` streams — no web framework,
matching the repository's no-runtime-deps rule.  JSON in, JSON out,
``Connection: close`` per request (clients are the CLI and short-lived
scripts; connection reuse buys nothing here).

Routes:

* ``GET  /healthz``      — liveness probe;
* ``GET  /health``       — cheap per-node vitals (queue depth, lanes,
  inflight, store size) for cluster heartbeats and ``status --cluster``;
* ``GET  /result/<digest>`` — the raw result-store payload (pickle bytes)
  for peer fetch: a cluster node missing a digest locally downloads the
  owner's entry instead of recompiling.  Strictly local lookup;
* ``GET  /status``       — the daemon snapshot (queue, metrics, store);
* ``GET  /metrics``      — Prometheus-style text exposition of the
  process-wide metrics registry (queue depth per lane, coalesce/hit
  counters, compile-latency summaries, worker restarts);
* ``GET  /trace/<digest>`` — the merged per-request trace document
  (daemon span + every worker attempt, partial spans included);
* ``GET  /jobs/<id>``    — one job record (404 for unknown ids);
* ``POST /submit``       — admit a request.  Body fields: ``design``
  (required), ``config`` (label or canonical dict), ``params``,
  ``priority``, ``seed``, ``clock_mhz``, ``calibration_path``,
  ``timeout_s``, ``wait`` (block until the job finishes),
  ``wait_timeout_s``, ``trace`` (a client-minted trace context, see
  :mod:`repro.obs.context`).  Statuses: 200 job finished / served from
  store, 202 accepted (non-wait), 400 bad request, 404 unknown design,
  429 queue full (backpressure), 500 job failed under ``wait``;
* ``POST /shutdown``     — graceful stop.

:func:`serve_in_thread` runs a whole service + server on a private event
loop in a daemon thread — the embedding used by tests, benchmarks and
``examples/service_demo.py``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from contextlib import contextmanager
from typing import Any, Dict, Optional, Tuple, Union

from repro.designs import design_names
from repro.errors import ReproError
from repro.obs.context import TraceContext
from repro.obs.exposition import (
    CONTENT_TYPE as EXPOSITION_CONTENT_TYPE,
    Family,
    Sample,
    render_exposition,
)
from repro.service.daemon import FlowService, QueueFullError, UnknownJobError
from repro.service.request import FlowRequest

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ServiceServer:
    """Binds a :class:`FlowService` to a TCP port."""

    def __init__(
        self,
        service: Optional[FlowService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service or FlowService()
        self.host = host
        self.port = port  # 0 = ephemeral; real port is filled in by start()
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.service._emit("http.listen", host=self.host, port=self.port)

    async def wait_shutdown(self) -> None:
        await self._shutdown.wait()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def serve_forever(self) -> None:
        """``start`` → run until ``/shutdown`` (or cancellation) → ``stop``."""
        await self.start()
        try:
            await self.wait_shutdown()
        finally:
            await self.stop()

    # -- HTTP plumbing ---------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._handle_one(reader)
        except Exception as exc:  # a handler bug must not kill the daemon
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        if isinstance(payload, bytes):  # binary routes (/result/<digest>)
            body = payload
            content_type = "application/octet-stream"
        elif isinstance(payload, str):  # text routes (/metrics)
            body = payload.encode()
            content_type = EXPOSITION_CONTENT_TYPE
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client hung up; its problem
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Union[Dict[str, Any], str, bytes]]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        raw = await reader.readexactly(length) if length else b""
        if raw:
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                return 400, {"error": f"bad JSON body: {exc}"}
        else:
            body = {}
        return await self._route(method, path, body)

    # -- routing ---------------------------------------------------------
    async def _route(
        self, method: str, path: str, body: Dict[str, Any]
    ) -> Tuple[int, Union[Dict[str, Any], str, bytes]]:
        if method == "GET" and path == "/healthz":
            return 200, {"ok": True, "schema": "repro-service/1"}
        if method == "GET" and path == "/health":
            return 200, self.service.health()
        if method == "GET" and path.startswith("/result/"):
            digest = path[len("/result/"):]
            payload = self.service.store.get_bytes(digest)
            if payload is None:
                return 404, {"error": f"no stored result for digest {digest!r}"}
            return 200, payload
        if method == "GET" and path == "/status":
            return 200, self.service.snapshot()
        if method == "GET" and path == "/metrics":
            return 200, self.metrics_text()
        if method == "GET" and path.startswith("/trace/"):
            document = self.service.traces.get(path[len("/trace/"):])
            if document is None:
                return 404, {"error": f"no trace for digest {path[len('/trace/'):]!r}"}
            return 200, document
        if method == "GET" and path.startswith("/jobs/"):
            try:
                return 200, self.service.job(path[len("/jobs/"):]).record()
            except UnknownJobError as exc:
                return 404, {"error": str(exc)}
        if method == "POST" and path == "/submit":
            return await self._submit(body)
        if method == "POST" and path == "/shutdown":
            self.request_shutdown()
            return 200, {"ok": True}
        return (405 if path in ("/submit", "/shutdown", "/status") else 404), {
            "error": f"no route {method} {path}"
        }

    def metrics_text(self) -> str:
        """The ``/metrics`` exposition document: the process-wide registry
        plus live labeled lane depths and the daemon uptime."""
        lane_family = Family(
            name="repro_service_lane_queue_depth",
            kind="gauge",
            help="Queued jobs per priority lane",
        )
        for lane, depth in self.service.lane_depths().items():
            lane_family.samples.append(
                Sample(
                    "repro_service_lane_queue_depth",
                    depth,
                    labels=(("lane", lane),),
                )
            )
        uptime = Family(
            name="repro_service_uptime_s",
            kind="gauge",
            samples=[Sample("repro_service_uptime_s", self.service.uptime_s())],
        )
        return render_exposition(
            self.service.registry, extra_families=[lane_family, uptime]
        )

    async def _submit(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        design = body.get("design")
        if not design or design not in design_names(include_extra=True):
            return 404, {
                "error": f"unknown design {design!r}; valid designs: "
                f"{', '.join(design_names(include_extra=True))}"
            }
        try:
            request = FlowRequest.make(
                design,
                config=body.get("config", "orig"),
                clock_mhz=body.get("clock_mhz"),
                seed=body.get("seed", 2020),
                smooth_passes=body.get("smooth_passes", 1),
                calibration_path=body.get("calibration_path"),
                plan=body.get("plan"),
                **dict(body.get("params") or {}),
            )
        except (ReproError, TypeError, ValueError) as exc:
            return 400, {"error": str(exc)}
        try:
            job, how = self.service.submit(
                request,
                priority=body.get("priority", "normal"),
                timeout_s=body.get("timeout_s"),
                trace=TraceContext.from_dict(body.get("trace")),
            )
        except QueueFullError as exc:
            return 429, {"error": str(exc)}
        except ReproError as exc:
            return 400, {"error": str(exc)}

        if body.get("wait"):
            try:
                await self.service.wait(job, timeout=body.get("wait_timeout_s"))
            except asyncio.TimeoutError:
                record = job.record()
                record["submitted_as"] = how
                return 202, record
        record = job.record()
        record["submitted_as"] = how
        if job.state == "failed":
            return 500, record
        if job.finished:
            return 200, record
        return 202, record


@contextmanager
def serve_in_thread(
    service: Optional[FlowService] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    **service_kwargs: Any,
):
    """Run a live service on a private event loop in a daemon thread.

    Yields the started :class:`ServiceServer` (``server.port`` holds the
    bound port, ``server.service`` the daemon).  On exit the service is
    shut down and the thread joined — worker processes included.
    """
    svc = service or FlowService(**service_kwargs)
    server = ServiceServer(svc, host=host, port=port)
    started = threading.Event()
    failure: Dict[str, BaseException] = {}
    loop = asyncio.new_event_loop()

    async def _main() -> None:
        try:
            await server.start()
        except BaseException as exc:  # surface bind errors to the caller
            failure["exc"] = exc
            started.set()
            raise
        started.set()
        try:
            await server.wait_shutdown()
        finally:
            await server.stop()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(_main())
        except BaseException:
            pass
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-service", daemon=True)
    thread.start()
    if not started.wait(timeout=15):
        raise ReproError("flow service failed to start within 15s")
    if "exc" in failure:
        thread.join(timeout=5)
        raise ReproError(f"flow service failed to start: {failure['exc']}")
    try:
        yield server
    finally:
        try:
            loop.call_soon_threadsafe(server.request_shutdown)
        except RuntimeError:
            pass  # loop already closed (e.g. a client POSTed /shutdown)
        thread.join(timeout=15)
