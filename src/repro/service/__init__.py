"""repro.service — the flow-compilation service.

Turns the one-shot :class:`~repro.flow.Flow` + :class:`~repro.engine.Engine`
pipeline into a long-lived daemon that serves repeated flow-compilation
requests the way production HLS evaluation farms do:

* :mod:`repro.service.request` — :class:`FlowRequest`, the canonical
  description of one compilation (design, params, config, clock, seed,
  calibration provenance) with a deterministic content digest;
* :mod:`repro.service.store` — :class:`ResultStore`, a content-addressed
  on-disk cache of finished :class:`~repro.flow.FlowResult` objects under
  ``$REPRO_CACHE_DIR/results/`` (atomic writes, LRU eviction), so repeat
  requests return without recompiling;
* :mod:`repro.service.daemon` — :class:`FlowService`, the asyncio job
  queue: request deduplication/coalescing, bounded queue with
  backpressure, priority lanes, per-job timeout, and fault-tolerant worker
  processes (crash/hang detection, exponential-backoff retries, poison-job
  quarantine);
* :mod:`repro.service.server` — a zero-dependency HTTP/1.1 front end over
  asyncio streams (``repro serve``), plus :func:`serve_in_thread` for
  embedding a live service in tests, benchmarks, and examples;
* :mod:`repro.service.client` — :class:`ServiceClient` (stdlib
  ``http.client``) and the errors the CLI maps to exit codes.

Quick tour::

    from repro.service import FlowRequest, FlowService, serve_in_thread
    from repro.service.client import ServiceClient

    with serve_in_thread(workers=2) as server:
        client = ServiceClient(port=server.port)
        record = client.submit("matmul", config="orig", wait=True)
        again = client.submit("matmul", config="orig", wait=True)
        assert again["served_from"] == "store"   # no recompilation
"""

from repro.service.client import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ServiceBusyError,
    ServiceClient,
    ServiceError,
)
from repro.service.daemon import FlowService, Job, QueueFullError, UnknownJobError
from repro.service.request import FlowRequest, config_from_spec, config_to_dict
from repro.service.server import ServiceServer, serve_in_thread
from repro.service.store import ResultStore, StoredResult
from repro.service.traces import TRACE_SCHEMA, TraceStore, rebuild_trace
from repro.service.worker import TELEMETRY_KEY, execute_request, worker_entry

__all__ = [
    "FlowRequest",
    "config_from_spec",
    "config_to_dict",
    "ResultStore",
    "StoredResult",
    "FlowService",
    "Job",
    "QueueFullError",
    "UnknownJobError",
    "ServiceServer",
    "serve_in_thread",
    "ServiceClient",
    "ServiceError",
    "ServiceBusyError",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "execute_request",
    "worker_entry",
    "TELEMETRY_KEY",
    "TRACE_SCHEMA",
    "TraceStore",
    "rebuild_trace",
]
