"""Content-addressed result store: ``$REPRO_CACHE_DIR/results/``.

Every entry is one finished flow compilation, keyed by the
:meth:`~repro.service.request.FlowRequest.digest` of the request that
produced it.  Two files per entry:

* ``<digest>.pkl`` — the pickled payload (request encoding, summary, and
  the full :class:`~repro.flow.FlowResult`);
* ``<digest>.json`` — a small metadata sidecar (design, config, Fmax,
  result digest, sizes) readable without unpickling, used for listings and
  the daemon's status endpoint.

Guarantees:

* **Atomic writes** — both files are written to a temp name and
  ``os.replace``'d, the same discipline as the calibration cache, so a
  concurrent reader (another daemon, a worker retry racing its
  predecessor's corpse) can never observe a half-written entry.  Writes of
  the same digest are idempotent by construction: the flow is
  deterministic, so last-writer-wins replaces equal bytes with equal bytes.
* **LRU eviction** — the store is bounded (``max_entries``); a successful
  :meth:`ResultStore.get` refreshes the entry's recency (mtime), and
  :meth:`ResultStore.put` evicts the least-recently-used entries beyond
  the bound.  Eviction is crash-safe: a missing sidecar or payload is
  treated as a miss, never an error.
* **Write/evict exclusion** — writers and evictors (possibly in different
  processes: every cluster node worker shares its node's store) serialize
  on an ``flock`` over ``<root>/.lock``, and eviction re-checks each
  victim's mtime against its directory-scan snapshot before unlinking.
  Without this, an evictor working from a stale scan could delete the
  entry a concurrent ``put`` just (re)wrote — the race
  ``tests/test_store_concurrency.py`` hammers.  Reads stay lock-free.
"""

from __future__ import annotations

import contextlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

try:
    import fcntl
except ImportError:  # non-POSIX: degrade to unserialized writes
    fcntl = None  # type: ignore[assignment]

from repro.delay.cache import default_cache_dir
from repro.engine.pool import ensure_pickle_depth
from repro.errors import ReproError
from repro.flow import FlowResult
from repro.service.request import FlowRequest

#: Version tag of the on-disk entry layout.
STORE_SCHEMA = "repro-result-store/1"

#: Default LRU bound.  A FlowResult pickle runs tens of KB to a few MB
#: depending on design depth; 256 entries keeps the store well under a GB
#: while covering every design × config × seed point a realistic sweep hits.
DEFAULT_MAX_ENTRIES = 256


def default_store_dir() -> str:
    """``$REPRO_CACHE_DIR/results`` (see :func:`default_cache_dir`)."""
    return os.path.join(default_cache_dir(), "results")


@dataclass
class StoredResult:
    """One store hit: the sidecar metadata plus a lazy payload loader."""

    digest: str
    meta: Dict[str, Any]
    path: str

    @property
    def result_digest(self) -> str:
        return self.meta.get("result_digest", "")

    @property
    def summary(self) -> Dict[str, Any]:
        return self.meta.get("summary", {})

    def load(self) -> FlowResult:
        """Unpickle the full :class:`FlowResult` (the expensive half)."""
        ensure_pickle_depth()
        with open(self.path, "rb") as handle:
            payload = pickle.load(handle)
        if payload.get("schema") != STORE_SCHEMA:
            raise ReproError(
                f"result-store entry {self.path!r} has schema "
                f"{payload.get('schema')!r}, expected {STORE_SCHEMA!r}"
            )
        return payload["result"]


class ResultStore:
    """Bounded, content-addressed cache of finished flow compilations."""

    def __init__(
        self,
        root: Optional[str] = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        if max_entries < 1:
            raise ReproError(f"max_entries must be >= 1, got {max_entries}")
        self.root = root or default_store_dir()
        self.max_entries = max_entries

    # -- locking ---------------------------------------------------------
    @contextlib.contextmanager
    def _exclusive(self) -> Iterator[None]:
        """Cross-process writer/evictor mutual exclusion.

        ``flock`` is per open-file-description, so a fresh handle per
        acquisition keeps this usable from any process or thread; the
        lock file itself is never an entry (no ``.pkl``/``.json`` suffix).
        Callers must not nest acquisitions (same-thread re-acquisition on
        a second handle would deadlock) — ``put``/``put_bytes`` therefore
        call :meth:`_evict_locked` directly, not :meth:`evict`.
        """
        os.makedirs(self.root, exist_ok=True)
        if fcntl is None:
            yield
            return
        handle = open(os.path.join(self.root, ".lock"), "ab")
        try:
            fcntl.flock(handle, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(handle, fcntl.LOCK_UN)
            finally:
                handle.close()

    # -- paths -----------------------------------------------------------
    def _payload_path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.pkl")

    def _meta_path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.json")

    # -- read side -------------------------------------------------------
    def get(self, digest: str) -> Optional[StoredResult]:
        """Look up ``digest``; a hit refreshes the entry's LRU recency."""
        payload_path = self._payload_path(digest)
        meta_path = self._meta_path(digest)
        try:
            with open(meta_path) as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not os.path.exists(payload_path):
            return None
        now = time.time()
        for path in (payload_path, meta_path):
            try:
                os.utime(path, (now, now))
            except OSError:  # entry raced an eviction; treat as a miss
                return None
        return StoredResult(digest=digest, meta=meta, path=payload_path)

    def load_result(self, digest: str) -> Optional[FlowResult]:
        """Convenience: ``get`` + ``load`` in one call."""
        hit = self.get(digest)
        return hit.load() if hit is not None else None

    def get_bytes(self, digest: str) -> Optional[bytes]:
        """Raw payload pickle for ``digest`` (the ``/result/<digest>`` wire
        format), or ``None`` on a miss.  Strictly local — the explicit
        base-class call bypasses peer-fetch subclasses, so a node serving
        its ``/result`` route can never recurse into the fleet."""
        if ResultStore.get(self, digest) is None:  # sidecar check + LRU refresh
            return None
        try:
            with open(self._payload_path(digest), "rb") as handle:
                return handle.read()
        except OSError:  # raced an eviction
            return None

    def put_bytes(self, digest: str, payload: bytes) -> Optional[StoredResult]:
        """Install a payload fetched from a peer (write-through caching).

        The payload embeds its own metadata, so a transferred entry is
        self-describing: validate the schema and digest, then write
        payload-first/sidecar-last exactly like :meth:`put`.  Returns
        ``None`` (and stores nothing) for corrupt or mismatched payloads.
        """
        ensure_pickle_depth()
        try:
            document = pickle.loads(payload)
        except Exception:
            return None
        if not isinstance(document, dict) or document.get("schema") != STORE_SCHEMA:
            return None
        meta = document.get("meta")
        if not isinstance(meta, dict) or meta.get("digest") != digest:
            return None
        meta = dict(meta)
        meta.pop("evicted", None)
        with self._exclusive():
            self._atomic_write(self._payload_path(digest), payload)
            meta["payload_bytes"] = len(payload)
            self._atomic_write(
                self._meta_path(digest),
                (json.dumps(meta, indent=2, sort_keys=True) + "\n").encode(),
            )
            self._evict_locked()
        return StoredResult(digest=digest, meta=meta, path=self._payload_path(digest))

    def entries(self) -> List[Dict[str, Any]]:
        """All sidecar records, least-recently-used first."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        records = []
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.root, name)
            try:
                with open(path) as handle:
                    meta = json.load(handle)
                mtime = os.path.getmtime(path)
            except (OSError, json.JSONDecodeError):
                continue
            meta["_mtime"] = mtime
            records.append(meta)
        records.sort(key=lambda rec: (rec["_mtime"], rec.get("digest", "")))
        return records

    def __len__(self) -> int:
        try:
            return sum(1 for n in os.listdir(self.root) if n.endswith(".pkl"))
        except OSError:
            return 0

    def __bool__(self) -> bool:
        # Without this, an *empty* store is falsy (via __len__) and
        # ``store or ResultStore()`` silently swaps in the default root.
        return True

    # -- write side ------------------------------------------------------
    def put(self, request: FlowRequest, result: FlowResult) -> StoredResult:
        """Store ``result`` under ``request``'s digest (atomic), then evict
        down to ``max_entries``.  Returns the stored entry; the eviction
        count is available on ``entry.meta["evicted"]`` for observability.
        """
        digest = request.digest()
        meta = {
            "schema": STORE_SCHEMA,
            "digest": digest,
            "result_digest": result.result_digest(),
            "request": request.to_dict(),
            "summary": {
                "design": result.design,
                "config": result.config_label,
                "clock_target_mhz": result.clock_target_mhz,
                "fmax_mhz": result.fmax_mhz,
                "period_ns": result.period_ns,
                "critical_path_class": result.timing.path_class.value,
            },
            "created_s": time.time(),
        }
        ensure_pickle_depth()
        payload = {"schema": STORE_SCHEMA, "meta": meta, "result": result}
        blob = pickle.dumps(payload, protocol=4)  # pickle outside the lock
        with self._exclusive():
            # Payload first, sidecar last: a reader that sees the sidecar
            # is guaranteed the payload already exists.
            self._atomic_write(self._payload_path(digest), blob)
            meta["payload_bytes"] = len(blob)
            self._atomic_write(
                self._meta_path(digest),
                (json.dumps(meta, indent=2, sort_keys=True) + "\n").encode(),
            )
            evicted = self._evict_locked()
        meta["evicted"] = evicted
        return StoredResult(digest=digest, meta=meta, path=self._payload_path(digest))

    def _atomic_write(self, path: str, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def evict(self) -> int:
        """Drop least-recently-used entries beyond ``max_entries``."""
        with self._exclusive():
            return self._evict_locked()

    def _evict_locked(self) -> int:
        """Eviction body; caller holds :meth:`_exclusive`.

        The writer lock rules out racing a ``put``, but lock-free readers
        still refresh mtimes underneath us — so re-check each victim's
        mtime against the scan snapshot and spare entries touched since
        (they are no longer least-recently-used)."""
        records = self.entries()
        excess = len(records) - self.max_entries
        if excess <= 0:
            return 0
        evicted = 0
        for record in records[:excess]:
            digest = record.get("digest")
            if not digest:
                continue
            meta_path = self._meta_path(digest)
            try:
                if os.path.getmtime(meta_path) != record["_mtime"]:
                    continue
            except OSError:
                continue  # already gone
            for path in (self._payload_path(digest), meta_path):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            evicted += 1
        return evicted
