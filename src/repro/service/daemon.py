"""The flow-compilation daemon: an asyncio job queue over worker processes.

:class:`FlowService` is the long-lived heart of ``repro serve``.  It takes
:class:`~repro.service.request.FlowRequest` submissions and guarantees:

* **Request coalescing** — N concurrent submissions of the same request
  digest share one compile; later arrivals attach to the in-flight job
  (counter ``service.coalesced``).
* **Result reuse** — a request whose digest is already in the
  content-addressed :class:`~repro.service.store.ResultStore` completes
  instantly without compiling (counter ``service.result_hits``).
* **Backpressure** — the queue is bounded; a submission beyond the bound
  raises :class:`QueueFullError`, which the HTTP front end maps to 429 and
  the CLI to exit code 3.  Nothing queues unboundedly.
* **Priority lanes** — ``high`` / ``normal`` / ``low`` deques; the
  dispatcher always drains the highest non-empty lane first.
* **Fault tolerance** — every job runs in its own worker process.  A
  worker that crashes (nonzero exit, SIGKILL, silence on the pipe) is
  retried with exponential backoff up to ``max_attempts``; a worker that
  hangs past the per-job timeout is killed and retried the same way.  A
  job whose flow raises *cleanly* is deterministic poison — it is not
  retried but quarantined immediately with a structured error record
  under ``$REPRO_CACHE_DIR/quarantine/``, as is a job that exhausts its
  retries.

Observability: the service owns a :class:`~repro.obs.tracer.Tracer`.  Each
job contributes a ``service.job`` span (queue wait, attempts, outcome) and
the worker's own flow spans are grafted in with their PID lane, so a
daemon trace reads exactly like an engine run's.  Gauges/counters:
``service.queue_depth``, ``service.submitted``, ``service.compiles``,
``service.result_hits``, ``service.coalesced``, ``service.retries``,
``service.crashes``, ``service.timeouts``, ``service.quarantined``,
``service.rejected``, plus ``service.stages_skipped`` /
``service.stages_run`` aggregated from each compiled job's pipeline
journal — after a crash-retry, ``stages_skipped`` counts the checkpointed
prefix the retry resumed from (see :mod:`repro.pipeline`).

Threading contract: all public methods must be called on the event loop
that ran :meth:`FlowService.start` (the HTTP server does; tests drive it
inside ``asyncio.run``).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing
import os
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro import obs
from repro.delay.cache import default_cache_dir
from repro.designs import design_names
from repro.engine.merge import graft_trace
from repro.errors import ReproError
from repro.obs.context import TraceContext, new_span_id, new_trace_id
from repro.obs.journal import EventJournal
from repro.service.request import FlowRequest
from repro.service.store import ResultStore
from repro.service.traces import (
    TRACE_SCHEMA,
    TraceStore,
    discard_spool,
    read_spool,
)
from repro.service.worker import TELEMETRY_KEY, worker_entry

#: Dispatch order of the priority lanes.
PRIORITIES = ("high", "normal", "low")

#: Version tag of quarantine records.
QUARANTINE_SCHEMA = "repro-quarantine/1"

#: Poll interval of the worker-process supervisor (s).
SUPERVISE_TICK_S = 0.02


class QueueFullError(ReproError):
    """The bounded queue rejected a submission (HTTP 429, CLI exit 3)."""


class UnknownJobError(ReproError):
    """A status query named a job id the daemon has never seen."""


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:  # fast + inherits warm calibration memo
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass
class Job:
    """One queued/running/finished compilation inside the daemon."""

    id: str
    request: FlowRequest
    digest: str
    priority: str = "normal"
    state: str = "queued"  # queued|running|retrying|done|failed|aborted
    served_from: Optional[str] = None  # compile|store|None
    attempts: int = 0
    coalesced: int = 0
    worker_pid: Optional[int] = None
    timeout_s: Optional[float] = None
    result_digest: Optional[str] = None
    #: Trace identity: the request-wide trace id (client-minted or minted
    #: here) and the daemon span's own id — the parent of worker spans.
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    #: Span snapshots of every worker attempt (partial ones from the trace
    #: spool when an attempt was killed mid-flow).
    worker_spans: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-stage pipeline journal from the winning attempt; after a
    #: crash-retry it shows the resumed prefix as ``skipped`` entries.
    journal: Optional[List[Dict[str, Any]]] = None
    summary: Dict[str, Any] = field(default_factory=dict)
    error: Optional[Dict[str, Any]] = None
    created_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    #: Monotonic twins of the wall-clock stamps above.  The wall clock is
    #: what humans and the job record see; durations (queue wait, compile
    #: latency) are computed from these, so an NTP step or DST jump while
    #: a job is in flight cannot produce negative or wildly wrong numbers.
    created_mono: float = field(default_factory=time.perf_counter)
    started_mono: Optional[float] = None
    finished_mono: Optional[float] = None
    done: asyncio.Event = field(default_factory=asyncio.Event)
    span: Optional[obs.Span] = None

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed", "aborted")

    def record(self) -> Dict[str, Any]:
        """JSON-safe view served by ``/jobs/<id>`` and ``repro status``."""
        return {
            "id": self.id,
            "design": self.request.design,
            "config": self.request.config.label,
            "params": {str(k): v for k, v in self.request.params},
            "seed": self.request.seed,
            "digest": self.digest,
            "priority": self.priority,
            "state": self.state,
            "served_from": self.served_from,
            "attempts": self.attempts,
            "coalesced": self.coalesced,
            "worker_pid": self.worker_pid,
            "result_digest": self.result_digest,
            "trace_id": self.trace_id,
            "journal": self.journal,
            "summary": dict(self.summary),
            "error": self.error,
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
        }


class FlowService:
    """The request-coalescing, fault-tolerant flow-compilation queue.

    Args:
        store: Result store (defaults to ``$REPRO_CACHE_DIR/results``).
        workers: Concurrent worker processes (dispatcher tasks).
        queue_limit: Max *queued* (not yet running) jobs before
            submissions are rejected with :class:`QueueFullError`.
        max_attempts: Attempt cap per job; crashes/timeouts retry until it.
        backoff_s / backoff_cap_s: Exponential retry backoff
            (``backoff_s * 2**(attempt-1)``, capped).
        job_timeout_s: Default per-job wall-clock budget; a worker alive
            past it is killed and the attempt counted as a timeout.
        quarantine_dir: Where poison-job records land.
        tracer: Observability sink (a private one is created by default).
        entry: Worker process target — overridable so tests can wrap
            :func:`~repro.service.worker.worker_entry` with fault hooks.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 2,
        queue_limit: int = 32,
        max_attempts: int = 3,
        backoff_s: float = 0.25,
        backoff_cap_s: float = 5.0,
        job_timeout_s: float = 600.0,
        quarantine_dir: Optional[str] = None,
        tracer: Optional[obs.Tracer] = None,
        entry: Optional[Callable] = None,
        journal: Optional[EventJournal] = None,
        trace_store: Optional[TraceStore] = None,
        node_id: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if queue_limit < 0:
            raise ReproError(f"queue_limit must be >= 0, got {queue_limit}")
        if max_attempts < 1:
            raise ReproError(f"max_attempts must be >= 1, got {max_attempts}")
        self.store = store if store is not None else ResultStore()
        self.workers = workers
        self.queue_limit = queue_limit
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.job_timeout_s = job_timeout_s
        self.quarantine_dir = quarantine_dir or os.path.join(
            default_cache_dir(), "quarantine"
        )
        self.tracer = tracer or obs.Tracer()
        #: Process-wide registry mirrored by every service counter/gauge/
        #: histogram write — the substrate of ``GET /metrics``.
        self.registry = obs.global_registry()
        self.journal = journal or EventJournal(
            os.path.join(default_cache_dir(), "journal", "events.jsonl"),
            source="daemon",
        )
        self.traces = trace_store or TraceStore()
        #: Cluster identity: stamped into ``/health``, ``/status`` and the
        #: journal so multi-node logs stay attributable per node.
        self.node_id = node_id or f"node-{os.getpid()}"
        self.created_s = time.time()
        self._created_mono = time.perf_counter()
        self._entry = entry or worker_entry
        self._lanes: Dict[str, Deque[Job]] = {p: deque() for p in PRIORITIES}
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}
        self._procs: Dict[str, Any] = {}
        self._ids = itertools.count(1)
        self._work_available = asyncio.Event()
        self._tasks: List[asyncio.Task] = []
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    # -- telemetry sinks -------------------------------------------------
    def _emit(self, event: str, **fields: Any) -> None:
        """Journal one event; telemetry never fails the service."""
        try:
            self.journal.emit(event, **fields)
        except OSError:
            pass

    def _count(self, name: str, amount: float = 1) -> None:
        self.tracer.add(name, amount)
        self.registry.add(name, amount)

    def _gauge(self, name: str, value: float) -> None:
        self.tracer.set_gauge(name, value)
        self.registry.set_gauge(name, value)

    def _observe(self, name: str, value: float) -> None:
        self.tracer.observe(name, value)
        self.registry.observe(name, value)

    async def start(self) -> None:
        """Spawn the dispatcher tasks (idempotent)."""
        if self._started:
            return
        self._started = True
        self._emit(
            "service.start",
            workers=self.workers,
            queue_limit=self.queue_limit,
            max_attempts=self.max_attempts,
            job_timeout_s=self.job_timeout_s,
            store=self.store.root,
            quarantine_dir=self.quarantine_dir,
            journal=str(self.journal.path),
            traces=self.traces.root,
        )
        self._tasks = [
            asyncio.create_task(self._worker_loop(), name=f"repro-service-w{i}")
            for i in range(self.workers)
        ]

    async def stop(self) -> None:
        """Cancel dispatchers, kill live worker processes, release waiters."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        self._started = False
        for proc in list(self._procs.values()):
            try:
                proc.kill()
            except Exception:
                pass
        self._procs.clear()
        for job in self._jobs.values():
            if not job.finished:
                job.state = "aborted"
                self._finish_span(job)
                job.done.set()
        self._inflight.clear()
        for lane in self._lanes.values():
            lane.clear()
        self._set_queue_gauge()
        self._emit("service.stop", uptime_s=self.uptime_s())

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        request: FlowRequest,
        priority: str = "normal",
        timeout_s: Optional[float] = None,
        trace: Optional[TraceContext] = None,
    ) -> Tuple[Job, str]:
        """Admit one request; returns ``(job, how)`` with ``how`` one of
        ``"store"`` (instant result-store hit), ``"coalesced"`` (attached
        to an identical in-flight job) or ``"queued"``.

        Raises :class:`QueueFullError` when the bounded queue is full and
        :class:`ReproError` for an unknown design or priority.
        """
        if priority not in PRIORITIES:
            raise ReproError(
                f"unknown priority {priority!r}; valid: {', '.join(PRIORITIES)}"
            )
        if request.design not in design_names(include_extra=True):
            raise ReproError(
                f"unknown design {request.design!r}; valid designs: "
                f"{', '.join(design_names(include_extra=True))}"
            )
        digest = request.digest()

        existing = self._inflight.get(digest)
        if existing is not None:
            existing.coalesced += 1
            if trace is not None and existing.span is not None:
                # Later arrivals keep their own trace ids; record them so
                # the merged trace names every client that shared this job.
                existing.span.attrs.setdefault("coalesced_trace_ids", []).append(
                    trace.trace_id
                )
            self._count("service.coalesced")
            self._emit(
                "job.coalesced",
                job_id=existing.id,
                digest=digest,
                design=request.design,
                trace_id=trace.trace_id if trace else None,
            )
            return existing, "coalesced"

        stored = self.store.get(digest)
        if stored is not None:
            job = self._new_job(request, digest, priority, trace)
            job.state = "done"
            job.served_from = "store"
            job.result_digest = stored.result_digest
            job.summary = dict(stored.summary)
            job.started_s = job.finished_s = time.time()
            job.started_mono = job.finished_mono = time.perf_counter()
            self._finish_span(job)
            self._store_trace(job)
            job.done.set()
            self._count("service.result_hits")
            self._emit(
                "job.store_hit",
                job_id=job.id,
                digest=digest,
                design=request.design,
                trace_id=job.trace_id,
            )
            return job, "store"

        if self._queued_count() >= self.queue_limit:
            self._count("service.rejected")
            self._emit("job.rejected", digest=digest, design=request.design)
            raise QueueFullError(
                f"queue is full ({self._queued_count()}/{self.queue_limit} "
                f"queued); retry later"
            )

        job = self._new_job(request, digest, priority, trace)
        job.timeout_s = timeout_s
        self._inflight[digest] = job
        self._lanes[priority].append(job)
        self._count("service.submitted")
        self._emit(
            "job.accepted",
            job_id=job.id,
            digest=digest,
            design=request.design,
            config=request.config.label,
            priority=priority,
            trace_id=job.trace_id,
        )
        self._set_queue_gauge()
        self._work_available.set()
        return job, "queued"

    async def wait(self, job: Job, timeout: Optional[float] = None) -> Job:
        """Block until ``job`` finishes (or ``asyncio.TimeoutError``)."""
        if timeout is None:
            await job.done.wait()
        else:
            await asyncio.wait_for(job.done.wait(), timeout)
        return job

    def job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(f"unknown job id {job_id!r}") from None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self, jobs_limit: int = 50) -> Dict[str, Any]:
        """The ``/status`` document: queue, metrics, store, recent jobs."""
        records = [job.record() for job in self._jobs.values()]
        return {
            "schema": "repro-service-status/1",
            "node_id": self.node_id,
            "queue": {
                "depth": self._queued_count(),
                "limit": self.queue_limit,
                "by_priority": {p: len(self._lanes[p]) for p in PRIORITIES},
            },
            "workers": self.workers,
            "inflight": len(self._inflight),
            "uptime_s": self.uptime_s(),
            "jobs": records[-jobs_limit:],
            "metrics": self.tracer.aggregate_metrics().to_dict(),
            "store": {"root": self.store.root, "entries": len(self.store)},
            "quarantine_dir": self.quarantine_dir,
            "journal": str(self.journal.path),
            "traces": self.traces.root,
        }

    def counter(self, name: str) -> float:
        """Convenience for tests/CI: one aggregated counter value."""
        return self.tracer.aggregate_metrics().counter(name)

    def health(self) -> Dict[str, Any]:
        """The ``/health`` document: a cheap per-node vitals record the
        cluster router's heartbeat and ``repro status --cluster`` consume
        (``/status`` serializes every job record — too heavy to poll)."""
        return {
            "ok": True,
            "schema": "repro-node-health/1",
            "node_id": self.node_id,
            "queue_depth": self._queued_count(),
            "queue_limit": self.queue_limit,
            "lanes": self.lane_depths(),
            "inflight": len(self._inflight),
            "workers": self.workers,
            "store_entries": len(self.store),
            "uptime_s": self.uptime_s(),
        }

    def lane_depths(self) -> Dict[str, int]:
        """Queued jobs per priority lane (the ``/metrics`` label source)."""
        return {p: len(self._lanes[p]) for p in PRIORITIES}

    def uptime_s(self) -> float:
        # Monotonic: a wall-clock adjustment must not shrink (or inflate)
        # the reported uptime.  ``created_s`` stays wall-clock for display.
        return round(time.perf_counter() - self._created_mono, 3)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _new_job(
        self,
        request: FlowRequest,
        digest: str,
        priority: str,
        trace: Optional[TraceContext] = None,
    ) -> Job:
        job = Job(
            id=f"job-{next(self._ids):04d}",
            request=request,
            digest=digest,
            priority=priority,
        )
        # Adopt the client-minted trace id or mint one — either way every
        # job belongs to exactly one trace, with the daemon span as the
        # parent of whatever the worker attempts produce.
        job.trace_id = trace.trace_id if trace is not None else new_trace_id()
        job.span_id = new_span_id()
        span = obs.Span(
            name="service.job",
            attrs={
                "job_id": job.id,
                "design": request.design,
                "config": request.config.label,
                "digest": digest,
                "priority": priority,
                "trace_id": job.trace_id,
                "span_id": job.span_id,
            },
            start_s=self.tracer._now(),
        )
        if trace is not None and trace.parent_span_id:
            span.attrs["parent_span_id"] = trace.parent_span_id
        self.tracer.roots.append(span)
        job.span = span
        self._jobs[job.id] = job
        return job

    def _queued_count(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    def _set_queue_gauge(self) -> None:
        self._gauge("service.queue_depth", self._queued_count())
        self._gauge("service.inflight", len(self._inflight))
        for priority in PRIORITIES:
            self._gauge(
                f"service.lane_depth.{priority}", len(self._lanes[priority])
            )

    def _pop_job(self) -> Optional[Job]:
        for priority in PRIORITIES:
            lane = self._lanes[priority]
            if lane:
                job = lane.popleft()
                self._set_queue_gauge()
                return job
        return None

    async def _worker_loop(self) -> None:
        while True:
            job = self._pop_job()
            if job is None:
                self._work_available.clear()
                await self._work_available.wait()
                continue
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        job.state = "running"
        job.started_s = time.time()
        job.started_mono = time.perf_counter()
        queue_wait_s = round(job.started_mono - job.created_mono, 4)
        if job.span is not None:
            job.span.set("queue_wait_s", queue_wait_s)
        self._observe("service.queue_wait_s", queue_wait_s)
        self._emit(
            "job.started",
            job_id=job.id,
            digest=job.digest,
            design=job.request.design,
            trace_id=job.trace_id,
            queue_wait_s=queue_wait_s,
        )
        attempt = 0
        while True:
            attempt += 1
            job.attempts = attempt
            kind, payload, exitcode = await self._run_attempt(job)

            if kind == "ok":
                tracer = payload.pop("tracer", None)
                if tracer is not None:
                    for root in tracer.roots:
                        job.worker_spans.append(obs.snapshot_span(root))
                    graft_trace(self.tracer, tracer, worker=payload.get("pid"))
                job.served_from = "compile"
                job.result_digest = payload.get("result_digest")
                job.summary = dict(payload.get("summary") or {})
                job.journal = payload.get("journal")
                for entry in job.journal or ():
                    if entry.get("action") == "skipped":
                        self._count("service.stages_skipped")
                    else:
                        self._count("service.stages_run")
                self._count("service.compiles")
                self._observe(
                    "service.compile_latency_s",
                    round(
                        time.perf_counter()
                        - (job.started_mono or job.created_mono),
                        4,
                    ),
                )
                if payload.get("evicted"):
                    self._count("service.store_evictions", payload["evicted"])
                self._finish(job, "done")
                return

            if kind == "error":
                # The flow raised cleanly: deterministic poison.  Retrying
                # would reproduce the same exception, so quarantine now.
                job.error = {
                    "error_type": payload.get("error_type", "Exception"),
                    "error": payload.get("error", ""),
                    "traceback": payload.get("traceback", ""),
                }
                self._quarantine(job, reason="error")
                self._finish(job, "failed")
                return

            # Crash (silent death / signal) or timeout (killed by us).
            self._count(
                "service.timeouts" if kind == "timeout" else "service.crashes"
            )
            job.error = {
                "error_type": "WorkerTimeout" if kind == "timeout" else "WorkerCrash",
                "error": (
                    f"worker attempt {attempt} "
                    + ("exceeded its deadline" if kind == "timeout" else "died")
                    + f" (exitcode={exitcode})"
                ),
            }
            if attempt >= self.max_attempts:
                self._quarantine(job, reason=kind)
                self._finish(job, "failed")
                return
            self._count("service.retries")
            delay = min(self.backoff_cap_s, self.backoff_s * (2 ** (attempt - 1)))
            self._emit(
                "job.retried",
                job_id=job.id,
                attempt=attempt,
                kind=kind,
                exitcode=exitcode,
                backoff_s=delay,
                trace_id=job.trace_id,
            )
            job.state = "retrying"
            await asyncio.sleep(delay)
            job.state = "running"

    async def _run_attempt(
        self, job: Job
    ) -> Tuple[str, Dict[str, Any], Optional[int]]:
        """One worker process: returns ``(kind, payload, exitcode)`` with
        ``kind`` in ``ok | error | crash | timeout``."""
        ctx = _mp_context()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        wire = job.request.to_dict()
        spool = os.path.join(
            self.traces.root, "spool", f"{job.id}-a{job.attempts}.json"
        )
        wire[TELEMETRY_KEY] = {
            "trace": {
                "trace_id": job.trace_id,
                "parent_span_id": job.span_id,
            },
            "attempt": job.attempts,
            "spool": spool,
            "journal": str(self.journal.path),
        }
        proc = ctx.Process(
            target=self._entry,
            args=(wire, self.store.root, child_conn),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        job.worker_pid = proc.pid
        self._procs[job.id] = proc
        self._emit(
            "worker.spawned",
            job_id=job.id,
            worker_pid=proc.pid,
            attempt=job.attempts,
            trace_id=job.trace_id,
        )
        loop = asyncio.get_running_loop()
        deadline = loop.time() + (job.timeout_s or self.job_timeout_s)
        payload: Optional[Dict[str, Any]] = None
        timed_out = False
        try:
            while True:
                if parent_conn.poll():
                    try:
                        payload = parent_conn.recv()
                    except Exception:
                        payload = None  # half-written message from a corpse
                    break
                if not proc.is_alive():
                    break
                if loop.time() >= deadline:
                    timed_out = True
                    proc.kill()
                    break
                await asyncio.sleep(SUPERVISE_TICK_S)
            await loop.run_in_executor(None, proc.join, 5)
            exitcode = proc.exitcode
        finally:
            self._procs.pop(job.id, None)
            parent_conn.close()
        if payload is not None and payload.get("ok"):
            kind = "ok"
        elif payload is not None:
            kind = "error"
        else:
            kind = "timeout" if timed_out else "crash"
        self._emit(
            "worker.exit",
            job_id=job.id,
            worker_pid=proc.pid,
            attempt=job.attempts,
            exitcode=exitcode,
            outcome=kind,
            trace_id=job.trace_id,
        )
        if kind == "ok":
            discard_spool(spool)
        else:
            # The attempt died (or raised) before delivering its tracer:
            # salvage whatever the spool thread managed to write, so the
            # merged trace shows how far this attempt got.
            self._salvage_spool(job, spool)
        return kind, payload if payload is not None else {}, exitcode

    def _salvage_spool(self, job: Job, spool: str) -> None:
        document = read_spool(spool)
        discard_spool(spool)
        if not document:
            return
        meta = document.get("meta") or {}
        salvaged = obs.Tracer()
        for snapshot in document.get("spans") or ():
            span = obs.rebuild_span(snapshot)
            if span is None:
                continue
            span.set("partial", True)
            span.set("attempt", meta.get("attempt") or job.attempts)
            if job.trace_id:
                span.set("trace_id", job.trace_id)
            if job.span_id:
                span.set("parent_span_id", job.span_id)
            if meta.get("pid"):
                span.set("pid", meta["pid"])
            if span.end_s is None:
                span.end_s = span.start_s
            job.worker_spans.append(obs.snapshot_span(span))
            salvaged.roots.append(span)
        if salvaged.roots:
            graft_trace(self.tracer, salvaged, worker=meta.get("pid"))

    def _finish(self, job: Job, state: str) -> None:
        job.state = state
        job.finished_s = time.time()
        job.finished_mono = time.perf_counter()
        if self._inflight.get(job.digest) is job:
            del self._inflight[job.digest]
        self._set_queue_gauge()
        self._finish_span(job)
        self._store_trace(job)
        self._emit(
            "job.completed",
            job_id=job.id,
            digest=job.digest,
            state=state,
            served_from=job.served_from,
            attempts=job.attempts,
            trace_id=job.trace_id,
            duration_s=round(
                job.finished_mono - (job.started_mono or job.created_mono), 4
            ),
        )
        job.done.set()

    def _store_trace(self, job: Job) -> None:
        """Write the merged per-request trace document: the daemon's job
        span plus every worker attempt's span snapshots (partial ones from
        the spool included).  Keyed by request digest — what ``repro trace
        --request`` and ``GET /trace/<digest>`` read."""
        self.traces.put(
            job.digest,
            {
                "schema": TRACE_SCHEMA,
                "trace_id": job.trace_id,
                "digest": job.digest,
                "job_id": job.id,
                "state": job.state,
                "served_from": job.served_from,
                "attempts": job.attempts,
                "daemon_span": obs.snapshot_span(job.span) if job.span else {},
                "worker_spans": list(job.worker_spans),
            },
        )

    def _finish_span(self, job: Job) -> None:
        if job.span is None or job.span.end_s is not None:
            return
        job.span.end_s = self.tracer._now()
        job.span.set("state", job.state)
        job.span.set("attempts", job.attempts)
        job.span.set("coalesced", job.coalesced)
        if job.served_from:
            job.span.set("served_from", job.served_from)
        if job.result_digest:
            job.span.set("result_digest", job.result_digest)

    def _quarantine(self, job: Job, reason: str) -> None:
        """Write the structured poison-job record (atomic, like the store)."""
        record = {
            "schema": QUARANTINE_SCHEMA,
            "job_id": job.id,
            "digest": job.digest,
            "request": job.request.to_dict(),
            "reason": reason,  # error | crash | timeout
            "attempts": job.attempts,
            "error": job.error,
            "quarantined_s": time.time(),
        }
        try:
            os.makedirs(self.quarantine_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.quarantine_dir, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, os.path.join(self.quarantine_dir, f"{job.digest}.json"))
        except OSError:
            pass  # quarantine is best-effort forensics; the job record has it all
        self._count("service.quarantined")
        self._emit(
            "job.quarantined",
            job_id=job.id,
            digest=job.digest,
            reason=reason,
            attempts=job.attempts,
            trace_id=job.trace_id,
        )
