"""The flow-compilation daemon: an asyncio job queue over worker processes.

:class:`FlowService` is the long-lived heart of ``repro serve``.  It takes
:class:`~repro.service.request.FlowRequest` submissions and guarantees:

* **Request coalescing** — N concurrent submissions of the same request
  digest share one compile; later arrivals attach to the in-flight job
  (counter ``service.coalesced``).
* **Result reuse** — a request whose digest is already in the
  content-addressed :class:`~repro.service.store.ResultStore` completes
  instantly without compiling (counter ``service.result_hits``).
* **Backpressure** — the queue is bounded; a submission beyond the bound
  raises :class:`QueueFullError`, which the HTTP front end maps to 429 and
  the CLI to exit code 3.  Nothing queues unboundedly.
* **Priority lanes** — ``high`` / ``normal`` / ``low`` deques; the
  dispatcher always drains the highest non-empty lane first.
* **Fault tolerance** — every job runs in its own worker process.  A
  worker that crashes (nonzero exit, SIGKILL, silence on the pipe) is
  retried with exponential backoff up to ``max_attempts``; a worker that
  hangs past the per-job timeout is killed and retried the same way.  A
  job whose flow raises *cleanly* is deterministic poison — it is not
  retried but quarantined immediately with a structured error record
  under ``$REPRO_CACHE_DIR/quarantine/``, as is a job that exhausts its
  retries.

Observability: the service owns a :class:`~repro.obs.tracer.Tracer`.  Each
job contributes a ``service.job`` span (queue wait, attempts, outcome) and
the worker's own flow spans are grafted in with their PID lane, so a
daemon trace reads exactly like an engine run's.  Gauges/counters:
``service.queue_depth``, ``service.submitted``, ``service.compiles``,
``service.result_hits``, ``service.coalesced``, ``service.retries``,
``service.crashes``, ``service.timeouts``, ``service.quarantined``,
``service.rejected``, plus ``service.stages_skipped`` /
``service.stages_run`` aggregated from each compiled job's pipeline
journal — after a crash-retry, ``stages_skipped`` counts the checkpointed
prefix the retry resumed from (see :mod:`repro.pipeline`).

Threading contract: all public methods must be called on the event loop
that ran :meth:`FlowService.start` (the HTTP server does; tests drive it
inside ``asyncio.run``).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing
import os
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro import obs
from repro.delay.cache import default_cache_dir
from repro.designs import design_names
from repro.engine.merge import graft_trace
from repro.errors import ReproError
from repro.service.request import FlowRequest
from repro.service.store import ResultStore
from repro.service.worker import worker_entry

#: Dispatch order of the priority lanes.
PRIORITIES = ("high", "normal", "low")

#: Version tag of quarantine records.
QUARANTINE_SCHEMA = "repro-quarantine/1"

#: Poll interval of the worker-process supervisor (s).
SUPERVISE_TICK_S = 0.02


class QueueFullError(ReproError):
    """The bounded queue rejected a submission (HTTP 429, CLI exit 3)."""


class UnknownJobError(ReproError):
    """A status query named a job id the daemon has never seen."""


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:  # fast + inherits warm calibration memo
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass
class Job:
    """One queued/running/finished compilation inside the daemon."""

    id: str
    request: FlowRequest
    digest: str
    priority: str = "normal"
    state: str = "queued"  # queued|running|retrying|done|failed|aborted
    served_from: Optional[str] = None  # compile|store|None
    attempts: int = 0
    coalesced: int = 0
    worker_pid: Optional[int] = None
    timeout_s: Optional[float] = None
    result_digest: Optional[str] = None
    #: Per-stage pipeline journal from the winning attempt; after a
    #: crash-retry it shows the resumed prefix as ``skipped`` entries.
    journal: Optional[List[Dict[str, Any]]] = None
    summary: Dict[str, Any] = field(default_factory=dict)
    error: Optional[Dict[str, Any]] = None
    created_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    done: asyncio.Event = field(default_factory=asyncio.Event)
    span: Optional[obs.Span] = None

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed", "aborted")

    def record(self) -> Dict[str, Any]:
        """JSON-safe view served by ``/jobs/<id>`` and ``repro status``."""
        return {
            "id": self.id,
            "design": self.request.design,
            "config": self.request.config.label,
            "params": {str(k): v for k, v in self.request.params},
            "seed": self.request.seed,
            "digest": self.digest,
            "priority": self.priority,
            "state": self.state,
            "served_from": self.served_from,
            "attempts": self.attempts,
            "coalesced": self.coalesced,
            "worker_pid": self.worker_pid,
            "result_digest": self.result_digest,
            "journal": self.journal,
            "summary": dict(self.summary),
            "error": self.error,
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
        }


class FlowService:
    """The request-coalescing, fault-tolerant flow-compilation queue.

    Args:
        store: Result store (defaults to ``$REPRO_CACHE_DIR/results``).
        workers: Concurrent worker processes (dispatcher tasks).
        queue_limit: Max *queued* (not yet running) jobs before
            submissions are rejected with :class:`QueueFullError`.
        max_attempts: Attempt cap per job; crashes/timeouts retry until it.
        backoff_s / backoff_cap_s: Exponential retry backoff
            (``backoff_s * 2**(attempt-1)``, capped).
        job_timeout_s: Default per-job wall-clock budget; a worker alive
            past it is killed and the attempt counted as a timeout.
        quarantine_dir: Where poison-job records land.
        tracer: Observability sink (a private one is created by default).
        entry: Worker process target — overridable so tests can wrap
            :func:`~repro.service.worker.worker_entry` with fault hooks.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 2,
        queue_limit: int = 32,
        max_attempts: int = 3,
        backoff_s: float = 0.25,
        backoff_cap_s: float = 5.0,
        job_timeout_s: float = 600.0,
        quarantine_dir: Optional[str] = None,
        tracer: Optional[obs.Tracer] = None,
        entry: Optional[Callable] = None,
    ) -> None:
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if queue_limit < 0:
            raise ReproError(f"queue_limit must be >= 0, got {queue_limit}")
        if max_attempts < 1:
            raise ReproError(f"max_attempts must be >= 1, got {max_attempts}")
        self.store = store if store is not None else ResultStore()
        self.workers = workers
        self.queue_limit = queue_limit
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.job_timeout_s = job_timeout_s
        self.quarantine_dir = quarantine_dir or os.path.join(
            default_cache_dir(), "quarantine"
        )
        self.tracer = tracer or obs.Tracer()
        self._entry = entry or worker_entry
        self._lanes: Dict[str, Deque[Job]] = {p: deque() for p in PRIORITIES}
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}
        self._procs: Dict[str, Any] = {}
        self._ids = itertools.count(1)
        self._work_available = asyncio.Event()
        self._tasks: List[asyncio.Task] = []
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the dispatcher tasks (idempotent)."""
        if self._started:
            return
        self._started = True
        self._tasks = [
            asyncio.create_task(self._worker_loop(), name=f"repro-service-w{i}")
            for i in range(self.workers)
        ]

    async def stop(self) -> None:
        """Cancel dispatchers, kill live worker processes, release waiters."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        self._started = False
        for proc in list(self._procs.values()):
            try:
                proc.kill()
            except Exception:
                pass
        self._procs.clear()
        for job in self._jobs.values():
            if not job.finished:
                job.state = "aborted"
                self._finish_span(job)
                job.done.set()
        self._inflight.clear()
        for lane in self._lanes.values():
            lane.clear()
        self._set_queue_gauge()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        request: FlowRequest,
        priority: str = "normal",
        timeout_s: Optional[float] = None,
    ) -> Tuple[Job, str]:
        """Admit one request; returns ``(job, how)`` with ``how`` one of
        ``"store"`` (instant result-store hit), ``"coalesced"`` (attached
        to an identical in-flight job) or ``"queued"``.

        Raises :class:`QueueFullError` when the bounded queue is full and
        :class:`ReproError` for an unknown design or priority.
        """
        if priority not in PRIORITIES:
            raise ReproError(
                f"unknown priority {priority!r}; valid: {', '.join(PRIORITIES)}"
            )
        if request.design not in design_names(include_extra=True):
            raise ReproError(
                f"unknown design {request.design!r}; valid designs: "
                f"{', '.join(design_names(include_extra=True))}"
            )
        digest = request.digest()

        existing = self._inflight.get(digest)
        if existing is not None:
            existing.coalesced += 1
            self.tracer.add("service.coalesced")
            return existing, "coalesced"

        stored = self.store.get(digest)
        if stored is not None:
            job = self._new_job(request, digest, priority)
            job.state = "done"
            job.served_from = "store"
            job.result_digest = stored.result_digest
            job.summary = dict(stored.summary)
            job.started_s = job.finished_s = time.time()
            job.done.set()
            self.tracer.add("service.result_hits")
            return job, "store"

        if self._queued_count() >= self.queue_limit:
            self.tracer.add("service.rejected")
            raise QueueFullError(
                f"queue is full ({self._queued_count()}/{self.queue_limit} "
                f"queued); retry later"
            )

        job = self._new_job(request, digest, priority)
        job.timeout_s = timeout_s
        self._inflight[digest] = job
        self._lanes[priority].append(job)
        self.tracer.add("service.submitted")
        self._set_queue_gauge()
        self._work_available.set()
        return job, "queued"

    async def wait(self, job: Job, timeout: Optional[float] = None) -> Job:
        """Block until ``job`` finishes (or ``asyncio.TimeoutError``)."""
        if timeout is None:
            await job.done.wait()
        else:
            await asyncio.wait_for(job.done.wait(), timeout)
        return job

    def job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(f"unknown job id {job_id!r}") from None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self, jobs_limit: int = 50) -> Dict[str, Any]:
        """The ``/status`` document: queue, metrics, store, recent jobs."""
        records = [job.record() for job in self._jobs.values()]
        return {
            "schema": "repro-service-status/1",
            "queue": {
                "depth": self._queued_count(),
                "limit": self.queue_limit,
                "by_priority": {p: len(self._lanes[p]) for p in PRIORITIES},
            },
            "workers": self.workers,
            "inflight": len(self._inflight),
            "jobs": records[-jobs_limit:],
            "metrics": self.tracer.aggregate_metrics().to_dict(),
            "store": {"root": self.store.root, "entries": len(self.store)},
            "quarantine_dir": self.quarantine_dir,
        }

    def counter(self, name: str) -> float:
        """Convenience for tests/CI: one aggregated counter value."""
        return self.tracer.aggregate_metrics().counter(name)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _new_job(self, request: FlowRequest, digest: str, priority: str) -> Job:
        job = Job(
            id=f"job-{next(self._ids):04d}",
            request=request,
            digest=digest,
            priority=priority,
        )
        span = obs.Span(
            name="service.job",
            attrs={
                "job_id": job.id,
                "design": request.design,
                "config": request.config.label,
                "digest": digest,
                "priority": priority,
            },
            start_s=self.tracer._now(),
        )
        self.tracer.roots.append(span)
        job.span = span
        self._jobs[job.id] = job
        return job

    def _queued_count(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    def _set_queue_gauge(self) -> None:
        self.tracer.set_gauge("service.queue_depth", self._queued_count())
        self.tracer.set_gauge("service.inflight", len(self._inflight))

    def _pop_job(self) -> Optional[Job]:
        for priority in PRIORITIES:
            lane = self._lanes[priority]
            if lane:
                job = lane.popleft()
                self._set_queue_gauge()
                return job
        return None

    async def _worker_loop(self) -> None:
        while True:
            job = self._pop_job()
            if job is None:
                self._work_available.clear()
                await self._work_available.wait()
                continue
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        job.state = "running"
        job.started_s = time.time()
        if job.span is not None:
            job.span.set("queue_wait_s", round(job.started_s - job.created_s, 4))
        attempt = 0
        while True:
            attempt += 1
            job.attempts = attempt
            kind, payload, exitcode = await self._run_attempt(job)

            if kind == "ok":
                tracer = payload.pop("tracer", None)
                if tracer is not None:
                    graft_trace(self.tracer, tracer, worker=payload.get("pid"))
                job.served_from = "compile"
                job.result_digest = payload.get("result_digest")
                job.summary = dict(payload.get("summary") or {})
                job.journal = payload.get("journal")
                for entry in job.journal or ():
                    if entry.get("action") == "skipped":
                        self.tracer.add("service.stages_skipped")
                    else:
                        self.tracer.add("service.stages_run")
                self.tracer.add("service.compiles")
                if payload.get("evicted"):
                    self.tracer.add("service.store_evictions", payload["evicted"])
                self._finish(job, "done")
                return

            if kind == "error":
                # The flow raised cleanly: deterministic poison.  Retrying
                # would reproduce the same exception, so quarantine now.
                job.error = {
                    "error_type": payload.get("error_type", "Exception"),
                    "error": payload.get("error", ""),
                    "traceback": payload.get("traceback", ""),
                }
                self._quarantine(job, reason="error")
                self._finish(job, "failed")
                return

            # Crash (silent death / signal) or timeout (killed by us).
            self.tracer.add(
                "service.timeouts" if kind == "timeout" else "service.crashes"
            )
            job.error = {
                "error_type": "WorkerTimeout" if kind == "timeout" else "WorkerCrash",
                "error": (
                    f"worker attempt {attempt} "
                    + ("exceeded its deadline" if kind == "timeout" else "died")
                    + f" (exitcode={exitcode})"
                ),
            }
            if attempt >= self.max_attempts:
                self._quarantine(job, reason=kind)
                self._finish(job, "failed")
                return
            self.tracer.add("service.retries")
            delay = min(self.backoff_cap_s, self.backoff_s * (2 ** (attempt - 1)))
            job.state = "retrying"
            await asyncio.sleep(delay)
            job.state = "running"

    async def _run_attempt(
        self, job: Job
    ) -> Tuple[str, Dict[str, Any], Optional[int]]:
        """One worker process: returns ``(kind, payload, exitcode)`` with
        ``kind`` in ``ok | error | crash | timeout``."""
        ctx = _mp_context()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=self._entry,
            args=(job.request.to_dict(), self.store.root, child_conn),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        job.worker_pid = proc.pid
        self._procs[job.id] = proc
        loop = asyncio.get_running_loop()
        deadline = loop.time() + (job.timeout_s or self.job_timeout_s)
        payload: Optional[Dict[str, Any]] = None
        timed_out = False
        try:
            while True:
                if parent_conn.poll():
                    try:
                        payload = parent_conn.recv()
                    except Exception:
                        payload = None  # half-written message from a corpse
                    break
                if not proc.is_alive():
                    break
                if loop.time() >= deadline:
                    timed_out = True
                    proc.kill()
                    break
                await asyncio.sleep(SUPERVISE_TICK_S)
            await loop.run_in_executor(None, proc.join, 5)
            exitcode = proc.exitcode
        finally:
            self._procs.pop(job.id, None)
            parent_conn.close()
        if payload is not None and payload.get("ok"):
            return "ok", payload, exitcode
        if payload is not None:
            return "error", payload, exitcode
        return ("timeout" if timed_out else "crash"), {}, exitcode

    def _finish(self, job: Job, state: str) -> None:
        job.state = state
        job.finished_s = time.time()
        if self._inflight.get(job.digest) is job:
            del self._inflight[job.digest]
        self._set_queue_gauge()
        self._finish_span(job)
        job.done.set()

    def _finish_span(self, job: Job) -> None:
        if job.span is None or job.span.end_s is not None:
            return
        job.span.end_s = self.tracer._now()
        job.span.set("state", job.state)
        job.span.set("attempts", job.attempts)
        job.span.set("coalesced", job.coalesced)
        if job.served_from:
            job.span.set("served_from", job.served_from)
        if job.result_digest:
            job.span.set("result_digest", job.result_digest)

    def _quarantine(self, job: Job, reason: str) -> None:
        """Write the structured poison-job record (atomic, like the store)."""
        record = {
            "schema": QUARANTINE_SCHEMA,
            "job_id": job.id,
            "digest": job.digest,
            "request": job.request.to_dict(),
            "reason": reason,  # error | crash | timeout
            "attempts": job.attempts,
            "error": job.error,
            "quarantined_s": time.time(),
        }
        try:
            os.makedirs(self.quarantine_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.quarantine_dir, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, os.path.join(self.quarantine_dir, f"{job.digest}.json"))
        except OSError:
            pass  # quarantine is best-effort forensics; the job record has it all
        self.tracer.add("service.quarantined")
