"""Per-request merged traces and the worker trace spool.

Two pieces of the cross-process trace story live here:

* :class:`TraceStore` — a tiny content-addressed store of **merged trace
  documents** (``repro-trace/1``), one per request digest: the daemon's
  ``service.job`` span plus the span forest of *every* worker attempt,
  partial ones included.  ``repro trace --request <digest>`` and
  ``GET /trace/<digest>`` read from it.
* the **trace spool** — how spans survive a SIGKILL'd worker.  The worker
  runs a background thread that periodically snapshots its live tracer to
  a spool file (atomic temp+rename, so the daemon never reads a torn
  file).  When an attempt dies without delivering its payload, the daemon
  rebuilds the spooled snapshots via :func:`repro.obs.snapshot.rebuild_span`
  and merges them as ``partial`` spans — the trace shows exactly how far
  the dead attempt got.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import Any, Dict, List, Optional

from repro import obs
from repro.delay.cache import default_cache_dir
from repro.obs.journal import emit_event

#: Version tag of merged per-request trace documents.
TRACE_SCHEMA = "repro-trace/1"

#: How often the worker spools its live tracer (s).  Low enough that even
#: a worker killed a few ms into a stage leaves evidence.
SPOOL_INTERVAL_S = 0.05


def default_trace_dir() -> str:
    return os.path.join(default_cache_dir(), "traces")


class TraceStore:
    """Merged trace documents keyed by request digest (atomic writes)."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_trace_dir()

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.json")

    def put(self, digest: str, document: Dict[str, Any]) -> None:
        try:
            os.makedirs(self.root, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, self._path(digest))
        except OSError:
            pass  # traces are forensics, never a reason to fail the job

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._path(digest)) as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return document if isinstance(document, dict) else None


def rebuild_trace(document: Dict[str, Any]) -> List[obs.Span]:
    """All spans of a merged trace document as live :class:`~repro.obs.Span`
    trees (daemon span first, then every attempt's roots)."""
    roots: List[obs.Span] = []
    daemon_span = obs.rebuild_span(document.get("daemon_span") or {})
    if daemon_span is not None:
        roots.append(daemon_span)
    for snapshot in document.get("worker_spans") or ():
        span = obs.rebuild_span(snapshot)
        if span is not None:
            roots.append(span)
    return roots


# ---------------------------------------------------------------------------
# Worker-side spool
# ---------------------------------------------------------------------------
def write_spool(path: str, tracer: obs.Tracer, meta: Dict[str, Any]) -> None:
    """Snapshot ``tracer``'s current forest to ``path`` atomically.

    The tracer is live (spans still mutating on the worker's main thread),
    so the snapshot is best-effort: a torn read of an in-flight list raises
    and this write round is simply skipped — the previous spool generation
    stays in place.
    """
    spans = [obs.snapshot_span(root) for root in list(tracer.roots)]
    document = {"meta": meta, "spans": [s for s in spans if s]}
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    with os.fdopen(fd, "w") as handle:
        json.dump(document, handle, default=str)
    os.replace(tmp, path)


def read_spool(path: str) -> Optional[Dict[str, Any]]:
    """The last complete spool generation, or ``None``."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return document if isinstance(document, dict) else None


def discard_spool(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


class TraceSpool:
    """Background thread spooling a live tracer for crash forensics."""

    def __init__(
        self,
        tracer: obs.Tracer,
        path: str,
        meta: Optional[Dict[str, Any]] = None,
        interval_s: float = SPOOL_INTERVAL_S,
    ) -> None:
        self.tracer = tracer
        self.path = path
        self.meta = dict(meta or {})
        self.interval_s = interval_s
        #: Consecutive failed write rounds; exposed for tests/forensics.
        self.failures = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-trace-spool", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._write_once()

    def _write_once(self) -> None:
        """One best-effort spool round.

        Transient failures (a torn read of a span list mutating on the
        main thread, a disk hiccup) are expected — the next round wins and
        the previous spool generation stays readable.  But they must not
        be *silent*: a spool that has quietly stopped writing means a
        killed worker leaves no forensics.  The first failure of a streak
        and the eventual recovery each emit one journal event (not one per
        round — at 50ms intervals that would flood the journal).
        Programming errors (``TypeError``/``AttributeError``) re-raise:
        those never heal on retry.
        """
        try:
            write_spool(self.path, self.tracer, self.meta)
        except (TypeError, AttributeError):
            raise
        except Exception as exc:
            self.failures += 1
            if self.failures == 1:
                emit_event(
                    "trace.spool_write_failed",
                    path=self.path,
                    error=f"{type(exc).__name__}: {exc}",
                )
            return
        if self.failures:
            emit_event(
                "trace.spool_recovered", path=self.path, failures=self.failures
            )
            self.failures = 0

    def start(self) -> "TraceSpool":
        self._thread.start()
        return self

    def stop(self, final_write: bool = True) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)
        if final_write:
            self._write_once()
