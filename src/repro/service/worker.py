"""Worker-process side of the flow service.

One job = one worker process.  The daemon spawns :func:`worker_entry` with
the request's wire encoding, the store root, and one end of a pipe; the
worker compiles, writes the result into the content-addressed store
*itself* (atomically), and sends back only a small completion payload —
the request digest, the result digest, a summary, and its private tracer.

Writing the store entry on the worker side makes retries idempotent: if
the daemon kills a hung worker after the store write but before the pipe
message, the retry simply overwrites the entry with identical content.
And keeping the heavyweight :class:`~repro.flow.FlowResult` out of the
pipe keeps the supervision protocol tiny — the daemon (or any local
client) loads the full result from the store by digest when it wants it.

Process isolation is the whole point: a worker that segfaults, is
OOM-killed, or hangs takes down *its process*, not the daemon; the daemon
observes the corpse (exit code, missing payload, or deadline) and retries.

Checkpoint/resume rides on the staged pipeline (:mod:`repro.pipeline`):
the flow inside the worker writes each completed stage's artifact to the
shared ``$REPRO_CACHE_DIR/stages`` store as it goes, so a retry after a
mid-flow kill resumes from the last completed stage — its journal shows
the prefix as ``skipped`` — and reproduces the original result digest.

Telemetry rides in on the reserved ``_telemetry`` key of the wire dict
(reserved precisely because :meth:`FlowRequest.from_dict` ignores it, so
it can never perturb the request digest): the trace context minted by the
client, the spool path for SIGKILL-surviving span snapshots, and the
daemon's event-journal path.  All of it is optional — a bare request dict
compiles exactly as before.
"""

from __future__ import annotations

import os
import traceback
from typing import Any, Dict, Optional

from repro import obs
from repro.designs import build_design
from repro.engine.pool import ensure_pickle_depth
from repro.flow import Flow, FlowResult
from repro.obs.journal import EventJournal, activate_journal
from repro.service.request import FlowRequest
from repro.service.store import ResultStore
from repro.service.traces import TraceSpool

#: Reserved key of the request wire dict carrying telemetry sidecar data.
#: :meth:`FlowRequest.from_dict` does not read it, so its presence (or any
#: change to its contents) cannot alter the request digest — coalescing
#: and store identity stay purely content-addressed.
TELEMETRY_KEY = "_telemetry"


def execute_request(request: FlowRequest) -> FlowResult:
    """Run one request through the exact same code path as the CLI: build
    the design from the registry, build a seeded flow, run the config."""
    flow = Flow(
        clock_mhz=request.clock_mhz,
        seed=request.seed,
        calibration_path=request.calibration_path,
    )
    flow.SMOOTH_PASSES = request.smooth_passes
    design = build_design(request.design, **request.param_dict)
    return flow.run(design, request.config, plan=request.transform_plan())


def _tag_roots(tracer: obs.Tracer, telemetry: Dict[str, Any]) -> None:
    """Stamp the trace identity onto every root span the worker produced,
    so the spans stay attributable after grafting into the daemon trace."""
    trace = telemetry.get("trace") or {}
    for root in tracer.roots:
        if trace.get("trace_id"):
            root.set("trace_id", trace["trace_id"])
        if trace.get("parent_span_id"):
            root.set("parent_span_id", trace["parent_span_id"])
        if telemetry.get("attempt"):
            root.set("attempt", telemetry["attempt"])
        root.set("pid", os.getpid())


def worker_entry(request_dict: Dict[str, Any], store_root: str, conn) -> None:
    """Process target: compile ``request_dict``, store the result, report.

    Sends exactly one message on ``conn``:

    * success — ``{"ok": True, "digest", "result_digest", "summary",
      "tracer", "journal", "pid"}``;
    * clean failure (the flow raised) — ``{"ok": False, "error",
      "error_type", "traceback", "pid"}``.

    A crash or kill sends nothing; the daemon reads that silence (plus the
    exit code) as a crash and retries — and rebuilds this attempt's spans
    from the trace spool the background thread kept writing.
    """
    telemetry = dict(request_dict.pop(TELEMETRY_KEY, None) or {})
    spool: Optional[TraceSpool] = None
    if telemetry.get("journal"):
        activate_journal(
            EventJournal(telemetry["journal"], source="worker")
        )
    try:
        ensure_pickle_depth()
        request = FlowRequest.from_dict(request_dict)
        tracer = obs.Tracer()
        if telemetry.get("spool"):
            spool = TraceSpool(
                tracer,
                telemetry["spool"],
                meta={
                    "trace": telemetry.get("trace") or {},
                    "attempt": telemetry.get("attempt"),
                    "pid": os.getpid(),
                },
            ).start()
        with obs.activate(tracer):
            result = execute_request(request)
        entry = ResultStore(store_root).put(request, result)
        _tag_roots(tracer, telemetry)
        if spool is not None:
            spool.stop(final_write=True)
            spool = None
        conn.send(
            {
                "ok": True,
                "digest": entry.digest,
                "result_digest": entry.result_digest,
                "summary": entry.summary,
                "evicted": entry.meta.get("evicted", 0),
                "tracer": tracer,
                "journal": result.journal,
                "pid": os.getpid(),
            }
        )
    except BaseException as exc:  # report *everything* — the pipe is the
        # daemon's only window into this process
        try:
            conn.send(
                {
                    "ok": False,
                    "error": str(exc),
                    "error_type": type(exc).__name__,
                    "traceback": traceback.format_exc(),
                    "pid": os.getpid(),
                }
            )
        except (BrokenPipeError, OSError):  # daemon died first; nothing to do
            pass
    finally:
        if spool is not None:
            spool.stop(final_write=False)
        conn.close()
