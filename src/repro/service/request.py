"""Canonical flow-compilation requests.

A :class:`FlowRequest` names everything that can change the outcome of one
flow run — and nothing else:

* the design (registry name + builder params, like
  :class:`~repro.engine.jobs.FlowJob`);
* the :class:`~repro.opt.OptimizationConfig` (which paper techniques run);
* the clock target override and the placement/characterization seed;
* the §4.1 calibration provenance (seed, smoothing, cache format version,
  and the explicit table path if one is pinned).

:meth:`FlowRequest.digest` hashes the canonical encoding of all of it with
the shared :mod:`repro.hashing` recipe, so the digest is identical across
processes, machines and sessions, and *any* field change — including a
calibration-provenance change that would alter downstream schedules —
produces a different digest.  That digest is the key of the
content-addressed result store and the coalescing identity of the daemon's
job queue: two clients asking for the same digest share one compile.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro import hashing
from repro.delay.cache import FORMAT_VERSION, CalibrationProvenance
from repro.errors import ReproError
from repro.opt import BASELINE, CONFIG_LABELS, OptimizationConfig

#: Version tag of the canonical request encoding.  Bumping it invalidates
#: every stored result, which is exactly what a format change must do.
REQUEST_SCHEMA = "repro-flow-request/1"

#: Smoothing passes the flow requests from the §4.1 characterization
#: (mirrors :attr:`repro.flow.Flow.SMOOTH_PASSES`; kept literal here so a
#: request encodes its provenance without importing the flow).
DEFAULT_SMOOTH_PASSES = 1


def config_to_dict(config: OptimizationConfig) -> Dict[str, Any]:
    """The canonical (JSON-able, hash-stable) encoding of a config.

    Thin alias of :meth:`OptimizationConfig.to_json` — the config owns its
    canonical form; this name survives for existing call sites.
    """
    return config.to_json()


def config_from_spec(spec: Any) -> OptimizationConfig:
    """Turn a wire-format config spec into an :class:`OptimizationConfig`.

    Accepts a label from :data:`repro.opt.CONFIG_LABELS` (``"orig"``,
    ``"full"``, ...), a dict as produced by :func:`config_to_dict`, or an
    already-built config (passed through).
    """
    if isinstance(spec, OptimizationConfig):
        return spec
    if isinstance(spec, str):
        try:
            return CONFIG_LABELS[spec]
        except KeyError:
            raise ReproError(
                f"unknown config {spec!r}; valid configs: "
                f"{', '.join(sorted(CONFIG_LABELS))}"
            ) from None
    if isinstance(spec, dict):
        try:
            return OptimizationConfig.from_json(spec)
        except ValueError as exc:
            raise ReproError(f"bad config spec {spec!r}: {exc}") from exc
    raise ReproError(f"bad config spec of type {type(spec).__name__}: {spec!r}")


def plan_to_tuple(plan: Any) -> Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...]:
    """Normalize a plan spec to the hashable nested-tuple form.

    Accepts ``None`` (empty plan), a :class:`~repro.ir.transforms.TransformPlan`,
    or the wire list-of-``[name, {params}]`` form.  Going through
    ``TransformPlan.from_spec`` validates transform names and parameters,
    so a request can never carry a plan the worker would fail to decode.
    """
    from repro.ir.transforms import TransformPlan

    try:
        plan = TransformPlan.from_spec(plan)
    except ReproError as exc:
        raise ReproError(f"bad transform plan: {exc}") from exc
    return tuple(
        (name, tuple(sorted(params.items())))
        for name, params in plan.to_spec()
    )


def plan_to_spec(plan: Tuple) -> list:
    """The wire form (list of ``[name, {params}]``) of a plan tuple."""
    return [[name, dict(params)] for name, params in plan]


@dataclass(frozen=True)
class FlowRequest:
    """One flow compilation, canonically described.

    Attributes:
        design: Registry name (see :func:`repro.designs.build_design`).
        config: The optimization techniques to apply.
        params: Design-builder kwargs as a sorted ``(name, value)`` tuple
            (hashable, canonical ordering).
        clock_mhz: HLS clock-target override; ``None`` uses the design's.
        seed: Placement *and* characterization seed (a seeded flow is
            seeded end to end — see :class:`repro.flow.Flow`).
        smooth_passes: Smoothing passes of the §4.1 characterization.
        calibration_path: Explicit calibration file to pin, or ``None`` for
            the automatic provenance-keyed cache path.
        plan: Transform plan applied before pragma lowering, in hashable
            nested-tuple form (see :func:`plan_to_tuple`).  Empty for the
            plain design; a non-empty plan changes the request digest, so
            differently-transformed compiles of one design never coalesce.
    """

    design: str
    config: OptimizationConfig = BASELINE
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)
    clock_mhz: Optional[float] = None
    seed: int = 2020
    smooth_passes: int = DEFAULT_SMOOTH_PASSES
    calibration_path: Optional[str] = None
    plan: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...] = field(
        default_factory=tuple
    )

    @classmethod
    def make(
        cls,
        design: str,
        config: Any = BASELINE,
        clock_mhz: Optional[float] = None,
        seed: int = 2020,
        smooth_passes: int = DEFAULT_SMOOTH_PASSES,
        calibration_path: Optional[str] = None,
        plan: Any = None,
        **params: Any,
    ) -> "FlowRequest":
        return cls(
            design=design,
            config=config_from_spec(config),
            params=tuple(sorted(params.items())),
            clock_mhz=None if clock_mhz is None else float(clock_mhz),
            seed=int(seed),
            smooth_passes=int(smooth_passes),
            calibration_path=calibration_path,
            plan=plan_to_tuple(plan),
        )

    # -- views -----------------------------------------------------------
    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def provenance_dict(self) -> Dict[str, Any]:
        """The calibration identity this request would compile against.

        The device half of a full :class:`CalibrationProvenance` is a
        function of ``design`` + ``params`` (already hashed); the rest —
        seed, smoothing, cache format version, pinned path — is recorded
        here so a provenance change always changes the request digest.
        """
        return {
            "seed": self.seed,
            "smooth_passes": self.smooth_passes,
            "version": FORMAT_VERSION,
            "path": self.calibration_path,
        }

    def provenance_for(self, device: str) -> CalibrationProvenance:
        """The full provenance once the design's device is known."""
        return CalibrationProvenance(
            device=device, seed=self.seed, smooth_passes=self.smooth_passes
        )

    def plan_spec(self) -> list:
        """The plan's wire form (list of ``[name, {params}]``)."""
        return plan_to_spec(self.plan)

    def transform_plan(self):
        """The plan as an applicable :class:`~repro.ir.transforms.TransformPlan`."""
        from repro.ir.transforms import TransformPlan

        return TransformPlan.from_spec(self.plan_spec())

    def to_dict(self) -> Dict[str, Any]:
        """Canonical wire/hash encoding (round-trips via :meth:`from_dict`).

        The ``plan`` key is present only when a plan is — plan-free
        requests keep the exact pre-plan encoding, so every digest minted
        before transform plans existed still matches its stored result.
        """
        payload: Dict[str, Any] = {
            "design": self.design,
            "config": config_to_dict(self.config),
            "params": {str(k): v for k, v in self.params},
            "clock_mhz": self.clock_mhz,
            "seed": self.seed,
            "calibration": self.provenance_dict(),
        }
        if self.plan:
            payload["plan"] = self.plan_spec()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FlowRequest":
        try:
            calibration = dict(payload.get("calibration") or {})
            return cls.make(
                str(payload["design"]),
                config=payload.get("config", "orig"),
                clock_mhz=payload.get("clock_mhz"),
                seed=int(payload.get("seed", 2020)),
                smooth_passes=int(
                    calibration.get("smooth_passes", DEFAULT_SMOOTH_PASSES)
                ),
                calibration_path=calibration.get("path"),
                plan=payload.get("plan"),
                **dict(payload.get("params") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"bad flow request payload: {exc}") from exc

    def digest(self) -> str:
        """The content digest this request is stored and coalesced under."""
        return hashing.content_digest({"schema": REQUEST_SCHEMA, **self.to_dict()})

    def with_seed(self, seed: int) -> "FlowRequest":
        return replace(self, seed=int(seed))

    def describe(self) -> str:
        extra = ", ".join(f"{k}={v}" for k, v in self.params)
        suffix = f" ({extra})" if extra else ""
        if self.plan:
            names = "+".join(name for name, _params in self.plan)
            suffix += f" plan={names}"
        return f"{self.design}[{self.config.label}]{suffix} seed={self.seed}"
