"""Python client for the flow-compilation daemon.

Stdlib-only (``http.client``), one connection per call — the service's
clients are CLIs, CI scripts and benchmark harnesses, not long-lived
connection pools.

Error mapping mirrors the daemon's backpressure semantics:

* HTTP 429 → :class:`ServiceBusyError` (the CLI exits 3 — "try later");
* any other non-2xx → :class:`ServiceError` carrying the status code;
* connection failures → :class:`ServiceError` with status 0.

Because daemon, workers and clients share one machine (and one
``$REPRO_CACHE_DIR``), :meth:`ServiceClient.load_result` can rehydrate the
full :class:`~repro.flow.FlowResult` of any completed job straight from
the content-addressed store — the HTTP surface only ever carries light
JSON records.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.flow import FlowResult
from repro.obs.context import TraceContext
from repro.service.store import ResultStore

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8973


class ServiceError(ReproError):
    """A request to the daemon failed; ``status`` holds the HTTP code
    (0 when the daemon was unreachable)."""

    def __init__(
        self,
        message: str,
        status: int = 0,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServiceBusyError(ServiceError):
    """The daemon applied backpressure (HTTP 429): queue full, retry later."""


class ServiceClient:
    """Talks to one ``repro serve`` daemon.

    Connection-level failures (refused, reset — a node restarting or a
    router fronting a briefly-dead replica) are retried ``retries`` extra
    times with exponential backoff plus jitter before surfacing as
    :class:`ServiceError` with ``status=0``.  Retrying ``POST /submit`` is
    safe because submissions are content-addressed: a duplicate delivery
    coalesces onto the in-flight job or hits the result store.  Set
    ``retries=0`` for fail-fast probes (the cluster router does, so a dead
    node is detected in one round-trip).
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        timeout: float = 600.0,
        retries: int = 2,
        retry_backoff_s: float = 0.1,
        retry_backoff_cap_s: float = 2.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.retry_backoff_s = retry_backoff_s
        self.retry_backoff_cap_s = retry_backoff_cap_s

    # -- transport -------------------------------------------------------
    def _transport(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
        retry: bool = True,
    ) -> Tuple[int, bytes]:
        """One HTTP exchange → ``(status, raw body)``, with bounded
        backoff-and-jitter retries on connection-level failures."""
        attempts = self.retries + 1 if retry else 1
        delay = self.retry_backoff_s
        last: Optional[Exception] = None
        for attempt in range(attempts):
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                conn.request(method, path, body=body, headers=headers or {})
                response = conn.getresponse()
                return response.status, response.read()
            # HTTPException covers the SIGKILL'd-server shapes that are
            # not OSErrors: an empty response (BadStatusLine) or a
            # connection that died mid-body (IncompleteRead).
            except (OSError, http.client.HTTPException) as exc:
                last = exc
            finally:
                conn.close()
            if attempt + 1 < attempts:
                # Full jitter keeps a thundering herd of clients from
                # re-probing a restarting node in lockstep.
                time.sleep(min(delay, self.retry_backoff_cap_s) * (0.5 + random.random()))
                delay *= 2
        raise ServiceError(
            f"cannot reach repro service at {self.host}:{self.port} "
            f"after {attempts} attempt(s): {last}",
            status=0,
        ) from last

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        retry: bool = True,
    ) -> Dict[str, Any]:
        body = json.dumps(payload).encode() if payload is not None else None
        status, raw = self._transport(
            method,
            path,
            body=body,
            headers={"Content-Type": "application/json"} if body else {},
            retry=retry,
        )
        try:
            document = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"malformed response from service ({status}): {exc}",
                status=status,
            ) from exc
        if status >= 400:
            error = document.get("error", f"HTTP {status}")
            if not isinstance(error, str):  # e.g. a failed job's structured record
                error = json.dumps(error)
            cls = ServiceBusyError if status == 429 else ServiceError
            raise cls(error, status=status, payload=document)
        return document

    # -- probes ----------------------------------------------------------
    def ping(self) -> bool:
        try:  # fail-fast: wait_ready and heartbeats do their own pacing
            return bool(self._request("GET", "/healthz", retry=False).get("ok"))
        except ServiceError:
            return False

    def health(self) -> Dict[str, Any]:
        """The per-node ``/health`` vitals document (fail-fast, no
        retries — heartbeat callers want dead nodes detected quickly)."""
        return self._request("GET", "/health", retry=False)

    def wait_ready(self, timeout: float = 15.0, interval: float = 0.1) -> None:
        """Poll ``/healthz`` until the daemon answers (or raise)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.ping():
                return
            time.sleep(interval)
        raise ServiceError(
            f"repro service at {self.host}:{self.port} not ready after {timeout}s"
        )

    # -- API -------------------------------------------------------------
    def submit(
        self,
        design: str,
        config: Any = "orig",
        params: Optional[Dict[str, Any]] = None,
        priority: str = "normal",
        wait: bool = False,
        wait_timeout_s: Optional[float] = None,
        timeout_s: Optional[float] = None,
        clock_mhz: Optional[float] = None,
        seed: int = 2020,
        calibration_path: Optional[str] = None,
        trace: Optional[TraceContext] = None,
        plan: Optional[Any] = None,
    ) -> Dict[str, Any]:
        """Submit one compilation; returns the job record.

        The record's ``submitted_as`` field says how this submission was
        admitted (``queued`` / ``coalesced`` / ``store``); with
        ``wait=True`` the call blocks until the job finishes.  A failed
        job under ``wait`` raises :class:`ServiceError` (status 500) with
        the daemon's structured error message.

        Every submission carries a trace context — ``trace`` if given,
        else a freshly minted one — whose ``trace_id`` comes back in the
        job record and names the merged per-request trace
        (:meth:`get_trace`, ``repro trace --request``).
        """
        if trace is None:
            trace = TraceContext.mint()
        payload: Dict[str, Any] = {
            "design": design,
            "config": config,
            "params": params or {},
            "priority": priority,
            "seed": seed,
            "wait": wait,
            "trace": trace.to_dict(),
        }
        if wait_timeout_s is not None:
            payload["wait_timeout_s"] = wait_timeout_s
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        if clock_mhz is not None:
            payload["clock_mhz"] = clock_mhz
        if calibration_path is not None:
            payload["calibration_path"] = calibration_path
        if plan:
            # Wire form: list of [name, {params}] (TransformPlan.to_spec,
            # or anything FlowRequest.make(plan=...) accepts).
            payload["plan"] = (
                plan.to_spec() if hasattr(plan, "to_spec") else plan
            )
        return self._request("POST", "/submit", payload)

    def status(self) -> Dict[str, Any]:
        return self._request("GET", "/status")

    def metrics(self) -> str:
        """The raw ``GET /metrics`` exposition text."""
        status, raw = self._transport("GET", "/metrics")
        if status >= 400:
            raise ServiceError(f"GET /metrics failed: HTTP {status}", status=status)
        return raw.decode("utf-8")

    def get_result_bytes(self, digest: str) -> Optional[bytes]:
        """Download the raw result-store payload for ``digest`` from this
        node (``None`` on a miss).  The peer-fetch transport: the caller
        installs the bytes locally with :meth:`ResultStore.put_bytes`."""
        status, raw = self._transport("GET", f"/result/{digest}", retry=False)
        if status == 404:
            return None
        if status >= 400:
            raise ServiceError(
                f"GET /result/{digest} failed: HTTP {status}", status=status
            )
        return raw

    def get_trace(self, digest: str) -> Dict[str, Any]:
        """The merged per-request trace document for ``digest``."""
        return self._request("GET", f"/trace/{digest}")

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def wait_job(
        self, job_id: str, timeout: float = 600.0, interval: float = 0.1
    ) -> Dict[str, Any]:
        """Poll ``/jobs/<id>`` until it reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record.get("state") in ("done", "failed", "aborted"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record.get('state')!r} after {timeout}s"
                )
            time.sleep(interval)

    def load_result(
        self, digest: str, store: Optional[ResultStore] = None
    ) -> Optional[FlowResult]:
        """Rehydrate a full :class:`FlowResult` from the shared local store."""
        return (store if store is not None else ResultStore()).load_result(digest)

    def shutdown(self) -> None:
        try:
            self._request("POST", "/shutdown")
        except ServiceError as exc:
            if exc.status != 0:  # unreachable == already down
                raise
