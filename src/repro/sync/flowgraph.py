"""Flow graphs at the granularity of elementary flow-control units.

The paper (§4.2): "We reconstruct the dataflow graph, not based on the
user-defined streaming kernels, but at the granularity of the elementary
flow control units. We identify the isolated sub-graphs within user-defined
streaming kernels and split the independent flows explicitly into separate
loops."

Here the elementary units are the operations of a loop body; two units
belong to the same flow when they are connected through produced/consumed
values.  A FIFO *between* loops is exactly where independent flows may be
cut, but two accesses of the *same* FIFO inside one body must stay in one
flow: splitting them across loops re-distributes the element stream (each
loop would pop its own interleaved subsequence).  Buffers merge units too,
since a shared memory imposes ordering.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.dfg import DFG
from repro.ir.ops import FIFO_OPS, MEM_OPS, Opcode, Operation
from repro.ir.values import Value


class _UnionFind:
    def __init__(self, items) -> None:
        self._parent = {item: item for item in items}

    def find(self, item):
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def dfg_components(dfg: DFG) -> List[List[Operation]]:
    """Weakly-connected components of the op graph, in stable order.

    Connectivity: shared SSA values (producer↔consumer, and common input
    values), shared memory buffers, and shared FIFOs (two endpoints of one
    FIFO in the same body consume/produce one ordered stream and cannot be
    separated).  Constants never connect components.
    """
    ops = [op for op in dfg.ops if op.opcode is not Opcode.CONST]
    if not ops:
        return []
    uf = _UnionFind(id(op) for op in ops)
    by_id = {id(op): op for op in ops}
    # Value edges.
    for value in dfg.values.values():
        if value.is_const:
            continue
        endpoints = [op for op in value.uses if op.opcode is not Opcode.CONST]
        if value.producer is not None and value.producer.opcode is not Opcode.CONST:
            endpoints.append(value.producer)
        for a, b in zip(endpoints, endpoints[1:]):
            uf.union(id(a), id(b))
    # Shared-buffer edges (memory imposes ordering between its accessors).
    touching: Dict[str, Operation] = {}
    for op in ops:
        if op.opcode in MEM_OPS:
            name = op.attrs["buffer"].name
            if name in touching:
                uf.union(id(op), id(touching[name]))
            else:
                touching[name] = op
    # Shared-fifo edges: splitting two accessors of one FIFO into separate
    # loops would deal the stream's elements round-robin between them,
    # changing which loop sees which element — a semantics change, not a
    # synchronization optimization.
    touching_fifo: Dict[str, Operation] = {}
    for op in ops:
        if op.opcode in FIFO_OPS:
            name = op.attrs["fifo"].name
            if name in touching_fifo:
                uf.union(id(op), id(touching_fifo[name]))
            else:
                touching_fifo[name] = op
    groups: Dict[int, List[Operation]] = {}
    for op in ops:
        groups.setdefault(uf.find(id(op)), []).append(op)
    # Stable order: by first op's position in the original graph.
    position = dfg.op_index()
    components = sorted(groups.values(), key=lambda comp: min(position[o] for o in comp))
    return components


def split_dfg_components(dfg: DFG) -> List[DFG]:
    """Extract each component into its own DFG (fresh values, same names).

    Returns one verified DFG per component; a single-component graph yields
    a one-element list containing a clone.
    """
    components = dfg_components(dfg)
    result: List[DFG] = []
    for index, component in enumerate(components):
        member = set(id(op) for op in component)
        sub = DFG(f"{dfg.name}_flow{index}")
        mapping: Dict[Value, Value] = {}

        def lookup(value: Value, sub=sub, mapping=mapping) -> Value:
            if value in mapping:
                return mapping[value]
            if value.is_const:
                mapping[value] = sub.const(value.const, value.type, name=value.name)
            else:
                new_input = sub.input(value.name, value.type)
                new_input.loop_invariant = value.loop_invariant
                mapping[value] = new_input
            return mapping[value]

        for op in dfg.ops:
            if id(op) not in member:
                continue
            if op.opcode is Opcode.CONST:  # pragma: no cover - excluded above
                continue
            operands = [lookup(v) for v in op.operands]
            new_op = sub.add_op(
                op.opcode,
                operands,
                result_type=op.result.type if op.result is not None else None,
                attrs=dict(op.attrs),
                name=op.result.name if op.result is not None else None,
            )
            if op.result is not None:
                mapping[op.result] = new_op.result
        sub.verify()
        result.append(sub)
    return result
