"""Synchronization analysis and pruning (§3.2 / §4.2).

* :mod:`repro.sync.flowgraph` — rebuilds the dataflow graph at the
  granularity of elementary flow-control units and finds independent
  sub-graphs;
* :mod:`repro.sync.pruning` — splits independent flows into separate loops
  and restricts parallel-module sync to the longest-latency module.
"""

from repro.sync.flowgraph import dfg_components, split_dfg_components
from repro.sync.pruning import (
    SyncPruningReport,
    longest_latency_call,
    prune_call_sync,
    prune_synchronization,
    split_independent_flows,
)

__all__ = [
    "dfg_components",
    "split_dfg_components",
    "prune_synchronization",
    "split_independent_flows",
    "prune_call_sync",
    "longest_latency_call",
    "SyncPruningReport",
]
