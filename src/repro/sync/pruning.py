"""Synchronization pruning passes (§4.2).

Two cases, as in the paper:

1. **Dataflow synchronization** (Fig. 5a/6a): independent flows expressed in
   one loop get synchronized per iteration by the HLS tool.
   :func:`split_independent_flows` rewrites each dataflow loop into one loop
   per isolated sub-graph, so the generated controller of each loop only
   synchronizes what actually communicates (Fig. 10a).
2. **Parallel-module synchronization** (Fig. 5b/6b): the FSM waits for every
   parallel instance.  :func:`prune_call_sync` marks loops where waiting on
   the *longest-latency* instance suffices (Fig. 10b).  Modules with dynamic
   latency are refused, exactly as the paper's implementation ("our method
   cannot handle modules with dynamic latency").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import obs
from repro.errors import DynamicLatencyError
from repro.ir.dfg import DFG
from repro.ir.ops import Opcode, Operation
from repro.ir.program import Design, Kernel, Loop
from repro.sync.flowgraph import split_dfg_components


@dataclass
class SyncPruningReport:
    """What the pruning passes did to a design."""

    split_loops: List[str] = field(default_factory=list)
    flows_created: int = 0
    call_syncs_pruned: List[str] = field(default_factory=list)
    skipped_dynamic: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"split {len(self.split_loops)} loop(s) into {self.flows_created} flow(s); "
            f"pruned call sync in {len(self.call_syncs_pruned)} loop(s); "
            f"skipped {len(self.skipped_dynamic)} dynamic-latency loop(s)"
        )


def split_independent_flows(design: Design, report: Optional[SyncPruningReport] = None) -> Design:
    """Split every dataflow loop with isolated sub-graphs (case 1).

    Returns a new design; the input is untouched.  Loops whose body is one
    connected component are kept as-is.
    """
    report = report if report is not None else SyncPruningReport()
    result = design.clone()
    for kernel in result.kernels:
        new_loops: List[Loop] = []
        for loop in kernel.loops:
            flows = split_dfg_components(loop.body)
            if len(flows) <= 1:
                new_loops.append(loop)
                continue
            report.split_loops.append(f"{kernel.name}/{loop.name}")
            report.flows_created += len(flows)
            for index, flow in enumerate(flows):
                _rebind_attrs(flow, result)
                new_loops.append(
                    Loop(
                        name=f"{loop.name}.flow{index}",
                        body=flow,
                        trip_count=loop.trip_count,
                        pipeline=loop.pipeline,
                        ii=loop.ii,
                        unroll=1,
                    )
                )
        kernel.loops = new_loops
    result.verify()
    return result


def _rebind_attrs(dfg: DFG, design: Design) -> None:
    """Point fifo/buffer attrs of a split body at the design's objects."""
    for op in dfg.ops:
        if "fifo" in op.attrs:
            op.attrs["fifo"] = design.fifos[op.attrs["fifo"].name]
        if "buffer" in op.attrs:
            op.attrs["buffer"] = design.buffers[op.attrs["buffer"].name]


def calls_in(dfg: DFG) -> List[Operation]:
    return [op for op in dfg.ops if op.opcode is Opcode.CALL]


def longest_latency_call(dfg: DFG) -> Operation:
    """The parallel instance the pruned sync waits on (case 2).

    Raises :class:`DynamicLatencyError` when any instance's latency is not
    a compile-time constant — symbolic execution of variable loop bounds is
    the paper's future work, not implemented here either.
    """
    calls = calls_in(dfg)
    if not calls:
        raise DynamicLatencyError("no parallel module instances to synchronize")
    dynamic = [op for op in calls if op.attrs.get("dynamic_latency")]
    if dynamic:
        names = [op.name for op in dynamic]
        raise DynamicLatencyError(
            f"cannot prune synchronization: dynamic-latency module(s) {names}"
        )
    return max(calls, key=lambda op: (int(op.attrs["latency"]), op.name))


def prune_call_sync(design: Design, report: Optional[SyncPruningReport] = None) -> Design:
    """Mark loops whose parallel-call sync can wait on one module (case 2).

    Sets ``loop.body`` ops' owning loop metadata ``sync_prune_to`` so the
    RTL generator wires the FSM's continue condition from that single
    module's done register instead of the full done-reduce tree.  Loops
    containing any dynamic-latency call are skipped (conservative, like the
    paper) and recorded in the report.
    """
    report = report if report is not None else SyncPruningReport()
    result = design.clone()
    for kernel in result.kernels:
        for loop in kernel.loops:
            calls = calls_in(loop.body)
            if len(calls) < 2:
                continue
            try:
                winner = longest_latency_call(loop.body)
            except DynamicLatencyError:
                report.skipped_dynamic.append(f"{kernel.name}/{loop.name}")
                continue
            for op in calls:
                op.attrs["sync_pruned"] = op is winner
            report.call_syncs_pruned.append(f"{kernel.name}/{loop.name}")
    return result


def prune_synchronization(design: Design) -> "tuple[Design, SyncPruningReport]":
    """Run both pruning passes; returns (new design, report)."""
    report = SyncPruningReport()
    with obs.span("dataflow-split") as sp:
        design = split_independent_flows(design, report)
        sp.set("split_loops", len(report.split_loops))
        sp.set("flows_created", report.flows_created)
    with obs.span("call-sync-prune") as sp:
        design = prune_call_sync(design, report)
        sp.set("pruned", len(report.call_syncs_pruned))
        sp.set("skipped_dynamic", len(report.skipped_dynamic))
    obs.add("sync.loops_split", len(report.split_loops))
    obs.add("sync.flows_created", report.flows_created)
    obs.add("sync.call_syncs_pruned", len(report.call_syncs_pruned))
    obs.add("sync.skipped_dynamic", len(report.skipped_dynamic))
    return design, report
