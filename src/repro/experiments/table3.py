"""Table 3 — pattern matching: original / data-only / data+ctrl (§5.5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.engine import Engine, FlowJob
from repro.experiments import paper_data
from repro.flow import Flow, FlowResult
from repro.opt import BASELINE, DATA_ONLY, FULL


@dataclass
class Table3Result:
    rows: Dict[str, FlowResult]


def run_table3(
    flow: Optional[Flow] = None,
    engine: Optional[Engine] = None,
) -> Table3Result:
    engine = engine or Engine(flow=flow)
    configs = {"orig": BASELINE, "opt_data": DATA_ONLY, "opt_data_ctrl": FULL}
    results = engine.run_flows(
        [FlowJob.make("pattern_matching", cfg, tag=key) for key, cfg in configs.items()]
    )
    return Table3Result(rows=dict(zip(configs, results)))


def format_table3(result: Table3Result) -> str:
    lines = [
        f"{'implementation':>14s} {'Fmax':>6s} {'LUT%':>6s} {'FF%':>6s} "
        f"{'BRAM%':>6s} {'DSP%':>6s} {'paper MHz':>10s}"
    ]
    for key, res in result.rows.items():
        util = res.utilization
        paper = paper_data.TABLE3[key]
        lines.append(
            f"{key:>14s} {res.fmax_mhz:6.0f} {util['LUT']:6.1f} {util['FF']:6.1f} "
            f"{util['BRAM']:6.1f} {util['DSP']:6.1f} {paper[0]:10d}"
        )
    return "\n".join(lines)
