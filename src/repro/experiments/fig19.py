"""Figure 19 — stream buffer frequency vs buffer size (§5.5).

Three curves: the original design, the version with only the data
broadcast optimized (§4.1), and the version with both data and control
broadcasts optimized (§4.1 + §4.3).  The paper's point: both fixes are
needed for scalable frequency — data-only still degrades at large sizes
because the write-enable broadcast remains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.engine import Engine, FlowJob
from repro.flow import Flow
from repro.ir.program import Buffer
from repro.opt import BASELINE, DATA_ONLY, FULL


@dataclass
class Fig19Point:
    depth: int
    bram_units: int
    fmax_orig_mhz: float
    fmax_data_mhz: float
    fmax_full_mhz: float


@dataclass
class Fig19Result:
    points: List[Fig19Point] = field(default_factory=list)


#: Element counts spanning ~2% to ~95% of the device's BRAM.
DEFAULT_DEPTHS = (18_432, 73_728, 294_912, 589_824, 1_179_648)


def run_fig19(
    depths: Sequence[int] = DEFAULT_DEPTHS,
    flow: Optional[Flow] = None,
    engine: Optional[Engine] = None,
) -> Fig19Result:
    engine = engine or Engine(flow=flow)
    result = Fig19Result()
    from repro.ir.types import u64

    jobs = [
        FlowJob.make("stream_buffer", config, tag=str(depth), depth=depth)
        for depth in depths
        for config in (BASELINE, DATA_ONLY, FULL)
    ]
    runs = engine.run_flows(jobs)
    for i, depth in enumerate(depths):
        units = Buffer("probe", u64, depth).bram36_units()
        orig, data, full = runs[3 * i], runs[3 * i + 1], runs[3 * i + 2]
        result.points.append(
            Fig19Point(
                depth=depth,
                bram_units=units,
                fmax_orig_mhz=orig.fmax_mhz,
                fmax_data_mhz=data.fmax_mhz,
                fmax_full_mhz=full.fmax_mhz,
            )
        )
    return result


def format_fig19(result: Fig19Result) -> str:
    lines = [
        f"{'elements':>10s} {'BRAM36':>7s} {'orig':>7s} {'opt data':>9s} {'opt both':>9s}"
    ]
    for p in result.points:
        lines.append(
            f"{p.depth:10d} {p.bram_units:7d} {p.fmax_orig_mhz:7.0f}"
            f" {p.fmax_data_mhz:9.0f} {p.fmax_full_mhz:9.0f}"
        )
    lines.append(
        "paper shape: orig degrades steeply with size; data-only helps but"
        " still degrades; data+ctrl stays high (Fig. 19)"
    )
    return "\n".join(lines)
