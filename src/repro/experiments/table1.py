"""Table 1 — Orig vs Opt frequency and resources on all nine designs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.designs import build_design, design_names
from repro.engine import Engine, FlowJob
from repro.experiments import paper_data
from repro.flow import Flow, FlowResult
from repro.opt import BASELINE, FULL


@dataclass
class Table1Entry:
    """One reproduced Table-1 row."""

    design: str
    broadcast_type: str
    device: str
    orig: FlowResult
    opt: FlowResult

    @property
    def gain_pct(self) -> float:
        return (self.opt.fmax_mhz / self.orig.fmax_mhz - 1) * 100


def run_table1(
    designs: Optional[Sequence[str]] = None,
    flow: Optional[Flow] = None,
    engine: Optional[Engine] = None,
) -> List[Table1Entry]:
    """Run Orig (BASELINE) and Opt (FULL) flows over the benchmark suite.

    With a parallel ``engine`` the 2×N flow runs fan out over its worker
    pool; entries always come back in suite order.  The Orig/Opt pair of
    each design shares its front-end pipeline stages (pragma lowering)
    through the on-disk stage-artifact store (:mod:`repro.pipeline`), in
    sequential and parallel runs alike.
    """
    engine = engine or Engine(flow=flow)
    names = list(designs if designs is not None else design_names())
    jobs = [
        FlowJob.make(name, config, tag=name)
        for name in names
        for config in (BASELINE, FULL)
    ]
    results = engine.run_flows(jobs)
    entries: List[Table1Entry] = []
    for i, name in enumerate(names):
        design = build_design(name)  # cheap IR build, for row metadata only
        entries.append(
            Table1Entry(
                design=name,
                broadcast_type=str(design.meta.get("broadcast_type", "?")),
                device=design.device,
                orig=results[2 * i],
                opt=results[2 * i + 1],
            )
        )
    return entries


def average_gain(entries: Sequence[Table1Entry]) -> float:
    return sum(e.gain_pct for e in entries) / len(entries)


def format_table1(entries: Sequence[Table1Entry]) -> str:
    """Render reproduced rows next to the paper's reported ones."""
    header = (
        f"{'Application':18s} {'Broadcast':20s} "
        f"{'LUT% o/p':>10s} {'FF% o/p':>10s} {'BRAM% o/p':>10s} {'DSP% o/p':>10s} "
        f"{'Freq o->p':>12s} {'gain':>6s} {'paper':>14s}"
    )
    lines = [header, "-" * len(header)]
    for e in entries:
        uo, up = e.orig.utilization, e.opt.utilization
        paper = paper_data.TABLE1.get(e.design)
        paper_s = (
            f"{paper.freq[0]}->{paper.freq[1]} ({(paper.freq[1]/paper.freq[0]-1)*100:+.0f}%)"
            if paper
            else "n/a"
        )
        lines.append(
            f"{e.design:18s} {e.broadcast_type:20s} "
            f"{uo['LUT']:4.0f}/{up['LUT']:<4.0f} "
            f"{uo['FF']:4.0f}/{up['FF']:<4.0f} "
            f"{uo['BRAM']:4.0f}/{up['BRAM']:<4.0f} "
            f"{uo['DSP']:4.0f}/{up['DSP']:<4.0f} "
            f"{e.orig.fmax_mhz:5.0f}->{e.opt.fmax_mhz:<5.0f} "
            f"{e.gain_pct:+5.0f}% {paper_s:>14s}"
        )
    lines.append(
        f"average gain: {average_gain(entries):+.0f}%   "
        f"(paper: {paper_data.table1_average_gain():+.0f}%)"
    )
    return "\n".join(lines)
