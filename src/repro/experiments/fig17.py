"""Figure 17 — stage-width profile of the (a·b)*c pipeline, and the
min-area skid-buffer cut it implies (§4.3).

The paper's 32-wide example: widths narrow to one 32-bit scalar at the
waist, then widen to 1024 bits of scaled outputs.  Buffering everything at
the end costs (61+1)*1024 = 63,488 bits; cutting at the waist costs
(56+1)*32 + (5+1)*1024 = 7,968 bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.control.minarea import CutPlan, end_buffer_plan, min_area_cuts
from repro.delay.hls_model import HlsDelayModel
from repro.designs import build_design
from repro.ir.passes import apply_pragmas
from repro.scheduling.chaining import ChainingScheduler
from repro.scheduling.report import emit_report, parse_report
from repro.control.widths import skid_width_profile


@dataclass
class Fig17Result:
    width: int
    profile: List[int]
    end_plan: CutPlan
    min_plan: CutPlan

    @property
    def saving_factor(self) -> float:
        return self.end_plan.total_bits / max(1, self.min_plan.total_bits)

    @property
    def waist_stage(self) -> int:
        return min(range(len(self.profile)), key=lambda i: (self.profile[i], i)) + 1


def run_fig17(width: int = 32, clock_mhz: float = 300.0, engine=None) -> Fig17Result:
    """Schedule the vector product and extract its width profile.

    Mirrors the paper's methodology: the profile is recovered from the
    schedule *report text*, not from scheduler internals.  (``engine`` is
    accepted for driver uniformity; this experiment runs no flows, so
    there is nothing to fan out.)
    """
    design = apply_pragmas(build_design("vector_arith", width=width))
    loop = next(l for k, l in design.all_loops() if k.name == "vecprod")
    schedule = ChainingScheduler(HlsDelayModel(), 1000.0 / clock_mhz).schedule(loop.body)
    # Round-trip through report text, as the paper's tooling does, then
    # size the profile for skid planning (output width at the end).
    report = emit_report(schedule)
    schedule = parse_report(report, loop.body)
    profile = skid_width_profile(schedule)
    end_plan = end_buffer_plan(profile)
    min_plan = min_area_cuts(profile)
    return Fig17Result(width=width, profile=profile, end_plan=end_plan, min_plan=min_plan)


def format_fig17(result: Fig17Result) -> str:
    lines = [f"stage-width profile, {result.width}-wide (a.b)*c, {len(result.profile)} stages:"]
    row = []
    for i, bits in enumerate(result.profile, start=1):
        row.append(f"{i}:{bits}")
        if len(row) == 8:
            lines.append("  " + "  ".join(row))
            row = []
    if row:
        lines.append("  " + "  ".join(row))
    lines.append(f"waist at stage {result.waist_stage} ({min(result.profile)} bits)")
    lines.append(
        f"end-only buffer: {result.end_plan.total_bits} bits; min-area cuts "
        f"{list(result.min_plan.cuts)}: {result.min_plan.total_bits} bits "
        f"({result.saving_factor:.1f}x saving)"
    )
    lines.append("paper anchors (32-wide): 63,488 bits end-only vs 7,968 split (8.0x)")
    return "\n".join(lines)
