"""Run every reproduction experiment and assemble one report.

``python -m repro all`` (or :func:`run_all`) regenerates Table 1–3 and
Figures 9/15/16/17/19 in sequence and renders a single text report with
the paper's numbers alongside — the one-command version of
``pytest benchmarks/``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.engine import Engine
from repro.errors import ReproError
from repro.experiments import (
    format_fig15,
    format_fig16,
    format_fig17,
    format_fig19,
    format_fig9,
    format_table1,
    format_table2,
    format_table3,
    run_fig15,
    run_fig16,
    run_fig17,
    run_fig19,
    run_fig9,
    run_table1,
    run_table2,
    run_table3,
)

#: (name, runner, formatter) in the paper's presentation order.
EXPERIMENTS = (
    ("fig9", run_fig9, format_fig9),
    ("table1", run_table1, format_table1),
    ("fig15", run_fig15, format_fig15),
    ("fig16", run_fig16, format_fig16),
    ("fig17", run_fig17, format_fig17),
    ("table2", run_table2, format_table2),
    ("fig19", run_fig19, format_fig19),
    ("table3", run_table3, format_table3),
)


@dataclass
class SummaryReport:
    """All experiment renderings plus wall-clock accounting."""

    sections: Dict[str, str] = field(default_factory=dict)
    seconds: Dict[str, float] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        lines: List[str] = [
            "# Reproduction summary — DAC'20 implicit-broadcast paper",
            "",
        ]
        for name, text in self.sections.items():
            lines.append(f"## {name}  ({self.seconds[name]:.0f}s)")
            lines.append("")
            if name in self.failures:
                lines.append(f"**FAILED**: {text}")
            else:
                lines.append(text)
            lines.append("")
        total = sum(self.seconds.values())
        lines.append(f"total wall clock: {total:.0f}s")
        if self.failures:
            lines.append(
                f"{len(self.failures)} experiment(s) failed: "
                + ", ".join(sorted(self.failures))
            )
        return "\n".join(lines)


def run_all(
    only: Optional[Sequence[str]] = None,
    echo: bool = True,
    jobs: int = 1,
    engine: Optional[Engine] = None,
) -> SummaryReport:
    """Run all (or ``only`` the named) experiments.

    One :class:`~repro.engine.Engine` is shared by every experiment, so
    ``jobs > 1`` fans each experiment's design×config runs over the same
    worker pool (and one warm calibration cache) end to end.  The rendered
    sections are identical at any ``jobs`` value — the engine guarantees
    result order — only the wall clock changes.
    """
    engine = engine or Engine(jobs=jobs)
    report = SummaryReport()
    for name, runner, formatter in EXPERIMENTS:
        if only is not None and name not in only:
            continue
        # perf_counter, not time.time: durations must be monotonic (a
        # wall-clock step from NTP would record negative/garbage seconds).
        start = time.perf_counter()
        try:
            result = runner(engine=engine)
            report.sections[name] = formatter(result)
        except ReproError as exc:
            # One broken experiment must not eat the rest of the report;
            # run_all's callers check report.failures for the exit code.
            report.failures[name] = str(exc)
            report.sections[name] = str(exc)
        report.seconds[name] = time.perf_counter() - start
        if echo:
            status = "FAILED" if name in report.failures else "done"
            print(f"[{name} {status} in {report.seconds[name]:.0f}s]")
    return report
