"""Experiment drivers: one module per table/figure of the paper.

Each ``run_*`` function returns plain data (lists of rows / series) plus a
``format_*`` helper that renders it the way the paper presents it, with the
paper's reported numbers alongside for comparison.  The pytest-benchmark
harnesses under ``benchmarks/`` are thin wrappers over these.
"""

from repro.experiments.fig9 import run_fig9, format_fig9
from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.fig15 import run_fig15, format_fig15
from repro.experiments.fig16 import run_fig16, format_fig16
from repro.experiments.fig17 import run_fig17, format_fig17
from repro.experiments.table2 import run_table2, format_table2
from repro.experiments.fig19 import run_fig19, format_fig19
from repro.experiments.table3 import run_table3, format_table3

__all__ = [
    "run_fig9",
    "format_fig9",
    "run_table1",
    "format_table1",
    "run_fig15",
    "format_fig15",
    "run_fig16",
    "format_fig16",
    "run_fig17",
    "format_fig17",
    "run_table2",
    "format_table2",
    "run_fig19",
    "format_fig19",
    "run_table3",
    "format_table3",
]
