"""Figure 16 — Jacobi super-pipeline frequency, stall vs skid control.

The paper concatenates 1–8 Jacobi iterations (up to ~370 datapath stages)
and shows the stall-based frequency collapsing with pipeline size while
the skid-buffer version holds.  §5.4 also notes the 8-iteration pipeline's
skid buffer costs ~23 KB of BRAM — we report the reproduced buffer size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.control.styles import ControlStyle
from repro.engine import Engine, FlowJob
from repro.flow import Flow
from repro.opt import BASELINE, OptimizationConfig


@dataclass
class Fig16Point:
    iterations: int
    stages: int
    fmax_stall_mhz: float
    fmax_skid_mhz: float
    skid_buffer_bits: int


@dataclass
class Fig16Result:
    points: List[Fig16Point] = field(default_factory=list)


def run_fig16(
    iterations: Sequence[int] = (1, 2, 4, 8),
    flow: Optional[Flow] = None,
    engine: Optional[Engine] = None,
) -> Fig16Result:
    engine = engine or Engine(flow=flow)
    skid_cfg = OptimizationConfig(control=ControlStyle.SKID_MINAREA)
    jobs = [
        FlowJob.make("stencil", config, tag=str(iters), iterations=iters)
        for iters in iterations
        for config in (BASELINE, skid_cfg)
    ]
    runs = engine.run_flows(jobs)
    result = Fig16Result()
    for i, iters in enumerate(iterations):
        stall, skid = runs[2 * i], runs[2 * i + 1]
        loop_info = skid.gen.loops[0]
        bits = sum(spec.bits for spec in loop_info.skid_specs)
        result.points.append(
            Fig16Point(
                iterations=iters,
                stages=max(skid.depth_by_loop.values()),
                fmax_stall_mhz=stall.fmax_mhz,
                fmax_skid_mhz=skid.fmax_mhz,
                skid_buffer_bits=bits,
            )
        )
    return result


def format_fig16(result: Fig16Result) -> str:
    lines = [
        f"{'iters':>5s} {'stages':>7s} {'stall MHz':>10s} {'skid MHz':>9s} {'skid buffer':>12s}"
    ]
    for p in result.points:
        lines.append(
            f"{p.iterations:5d} {p.stages:7d} {p.fmax_stall_mhz:10.0f}"
            f" {p.fmax_skid_mhz:9.0f} {p.skid_buffer_bits / 8 / 1024:9.1f} KB"
        )
    lines.append(
        "paper anchors: stall collapses with depth (120 MHz at 8 iters), skid"
        " holds (253 MHz); 8-iter skid buffer ~23 KB"
    )
    return "\n".join(lines)
