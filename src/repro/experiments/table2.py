"""Table 2 — 512-wide vector product under the three control schemes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.control.styles import ControlStyle
from repro.engine import Engine, FlowJob
from repro.experiments import paper_data
from repro.flow import Flow, FlowResult
from repro.opt import OptimizationConfig


@dataclass
class Table2Result:
    rows: Dict[str, FlowResult]

    def skid_bits(self, key: str) -> int:
        result = self.rows[key]
        return sum(
            spec.bits for info in result.gen.loops for spec in info.skid_specs
        )


def run_table2(
    width: int = 512,
    flow: Optional[Flow] = None,
    engine: Optional[Engine] = None,
) -> Table2Result:
    """Stall vs naive skid vs min-area skid on the wide vector product.

    All three runs keep §4.1/§4.2 on so the comparison isolates the
    pipeline-control scheme, as Table 2 does.
    """
    engine = engine or Engine(flow=flow)
    configs = {
        "stall": OptimizationConfig(
            broadcast_aware=True, sync_pruning=True, control=ControlStyle.STALL
        ),
        "skid": OptimizationConfig(
            broadcast_aware=True, sync_pruning=True, control=ControlStyle.SKID
        ),
        "skid_minarea": OptimizationConfig(
            broadcast_aware=True, sync_pruning=True, control=ControlStyle.SKID_MINAREA
        ),
    }
    jobs = [
        FlowJob.make("vector_arith", config, tag=key, width=width)
        for key, config in configs.items()
    ]
    results = engine.run_flows(jobs)
    return Table2Result(rows=dict(zip(configs, results)))


def format_table2(result: Table2Result) -> str:
    lines = [
        f"{'implementation':>14s} {'Fmax':>6s} {'LUT%':>6s} {'FF%':>6s} "
        f"{'BRAM%':>6s} {'DSP%':>6s} {'skid bits':>10s} {'paper MHz/BRAM%':>16s}"
    ]
    for key, res in result.rows.items():
        util = res.utilization
        paper = paper_data.TABLE2[key]
        bits = result.skid_bits(key)
        lines.append(
            f"{key:>14s} {res.fmax_mhz:6.0f} {util['LUT']:6.1f} {util['FF']:6.1f} "
            f"{util['BRAM']:6.2f} {util['DSP']:6.1f} {bits:10d} "
            f"{paper[0]:5d}/{paper[3]:<5.2f}"
        )
    return "\n".join(lines)
