"""Figures 14/15 — the genome sequencing case study (§5.2).

(a) Delay estimation of the broadcast operation chain: the HLS model's
    view, the calibrated model's view, and the "actual" (our physical
    model's post-placement critical path) at each unroll factor.
(b) Achieved frequency of the original schedule vs the broadcast-aware
    schedule across unroll factors (the paper sweeps BACK_SEARCH_COUNT).

Also checks the §5.2 overhead claim: pipeline depth grows by about one
stage (9 → 10 in the paper) and II stays 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.delay.cache import resolve_calibration
from repro.delay.calibrated import CalibratedDelayModel
from repro.engine import Engine, FlowJob
from repro.flow import Flow
from repro.opt import BASELINE, DATA_ONLY


@dataclass
class Fig15Point:
    unroll: int
    hls_estimate_ns: float
    calibrated_estimate_ns: float
    actual_ns: float
    fmax_orig_mhz: float
    fmax_opt_mhz: float
    depth_orig: int
    depth_opt: int


@dataclass
class Fig15Result:
    points: List[Fig15Point] = field(default_factory=list)


def run_fig15(
    unrolls: Sequence[int] = (8, 16, 32, 64, 128),
    flow: Optional[Flow] = None,
    engine: Optional[Engine] = None,
) -> Fig15Result:
    """Sweep the genome design's back-search count."""
    engine = engine or Engine(flow=flow)
    table, _source = resolve_calibration("aws-f1", seed=engine.flow.seed)
    cal = CalibratedDelayModel(table)
    jobs = [
        FlowJob.make("genome", config, tag=str(unroll), unroll=unroll)
        for unroll in unrolls
        for config in (BASELINE, DATA_ONLY)
    ]
    runs = engine.run_flows(jobs)
    result = Fig15Result()
    for i, unroll in enumerate(unrolls):
        orig, opt = runs[2 * i], runs[2 * i + 1]
        # Estimates for the broadcast sub chain: the scheduler's believed
        # worst in-cycle arrival vs the post-placement reality.
        (_, loop0), = [
            (k, l) for k, l in orig.schedules.items() if l.dfg.name.startswith("chain")
        ][:1]
        hls_est = max(
            loop0.critical_arrival(c) for c in range(loop0.depth)
        )
        # Calibrated estimate of the same baseline schedule's worst chain.
        from repro.scheduling.broadcast_aware import audit_chains

        violations = audit_chains(loop0, cal)
        cal_est = max(
            (v.calibrated_arrival_ns for v in violations), default=hls_est
        )
        result.points.append(
            Fig15Point(
                unroll=unroll,
                hls_estimate_ns=hls_est,
                calibrated_estimate_ns=cal_est,
                actual_ns=orig.timing.raw_period_ns,
                fmax_orig_mhz=orig.fmax_mhz,
                fmax_opt_mhz=opt.fmax_mhz,
                depth_orig=orig.depth_by_loop["chain_kernel/back_search"],
                depth_opt=opt.depth_by_loop["chain_kernel/back_search"],
            )
        )
    return result


def format_fig15(result: Fig15Result) -> str:
    lines = [
        f"{'unroll':>6s} {'HLS est':>8s} {'our est':>8s} {'actual':>8s}"
        f" {'Fmax orig':>10s} {'Fmax opt':>9s} {'depth o->p':>11s}",
    ]
    for p in result.points:
        lines.append(
            f"{p.unroll:6d} {p.hls_estimate_ns:8.2f} {p.calibrated_estimate_ns:8.2f}"
            f" {p.actual_ns:8.2f} {p.fmax_orig_mhz:10.0f} {p.fmax_opt_mhz:9.0f}"
            f" {p.depth_orig:5d}->{p.depth_opt:<4d}"
        )
    lines.append(
        "paper anchors: sub 0.78ns predicted vs ~2.08ns actual at unroll 64;"
        " Fmax 264->341 MHz; depth 9->10, II=1 both"
    )
    return "\n".join(lines)
