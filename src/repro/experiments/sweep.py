"""Generic parameter sweeps over designs and optimization configs.

The paper's figures are all sweeps (unroll factor, buffer size, pipeline
iterations); this utility generalizes them so users can produce the same
kind of curve for their own designs::

    from repro.experiments.sweep import sweep
    rows = sweep("stream_buffer", "depth", [1 << 15, 1 << 17, 1 << 19],
                 configs={"orig": BASELINE, "full": FULL})
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.engine import Engine, FlowJob
from repro.flow import Flow, FlowResult
from repro.ir.program import Design
from repro.opt import BASELINE, FULL, OptimizationConfig

Builder = Union[str, Callable[..., Design]]

DEFAULT_CONFIGS: Dict[str, OptimizationConfig] = {"orig": BASELINE, "full": FULL}


@dataclass
class SweepRow:
    """Results for one parameter value across the swept configs."""

    value: object
    results: Dict[str, FlowResult] = field(default_factory=dict)

    def fmax(self, config: str) -> float:
        return self.results[config].fmax_mhz


@dataclass
class SweepResult:
    design: str
    param: str
    rows: List[SweepRow] = field(default_factory=list)

    def series(self, config: str) -> List[float]:
        return [row.fmax(config) for row in self.rows]

    def crossover(self, better: str, worse: str) -> Optional[object]:
        """First parameter value where ``better`` overtakes ``worse``."""
        for row in self.rows:
            if row.fmax(better) > row.fmax(worse):
                return row.value
        return None


def sweep(
    builder: Builder,
    param: str,
    values: Sequence[object],
    configs: Optional[Dict[str, OptimizationConfig]] = None,
    flow: Optional[Flow] = None,
    engine: Optional[Engine] = None,
    **fixed_params,
) -> SweepResult:
    """Run every (value, config) combination.

    ``builder`` is a registry name or a callable returning a
    :class:`Design`; ``param`` is passed as a keyword to it.  Registry-name
    sweeps fan out over a parallel ``engine``'s workers; callable builders
    run inline (arbitrary closures are not shipped to worker processes).

    Stage-artifact reuse (see :mod:`repro.pipeline`): all runs of an
    inline sweep share one in-process stage overlay, so per-value the
    config runs reuse their common front-end (pragma lowering in
    particular) and identical sweep points are served outright.  Fanned-out
    sweeps get the same effect through the shared on-disk store under
    ``$REPRO_CACHE_DIR/stages``, which every worker process reads and
    writes.  Both are off when the flow's ``stage_cache`` is disabled.
    """
    from repro.pipeline import MemoryStageStore
    configs = configs or DEFAULT_CONFIGS
    engine = engine or Engine(flow=flow)
    name = builder if isinstance(builder, str) else getattr(builder, "__name__", "design")
    result = SweepResult(design=str(name), param=param)
    if isinstance(builder, str):
        jobs = [
            FlowJob.make(
                builder, config, tag=label, **{param: value}, **fixed_params
            )
            for value in values
            for label, config in configs.items()
        ]
        flat = engine.run_flows(jobs)
        per_row = len(configs)
        for i, value in enumerate(values):
            row = SweepRow(value=value)
            for j, label in enumerate(configs):
                row.results[label] = flat[per_row * i + j]
            result.rows.append(row)
        return result
    overlay = (
        MemoryStageStore() if engine.flow._stage_store() is not None else None
    )
    for value in values:
        row = SweepRow(value=value)
        for label, config in configs.items():
            design = builder(**{param: value}, **fixed_params)
            row.results[label] = engine.flow.run(design, config, _overlay=overlay)
        result.rows.append(row)
    return result


def format_sweep(result: SweepResult) -> str:
    configs = list(result.rows[0].results) if result.rows else []
    header = f"{result.param:>12s} " + " ".join(f"{c:>12s}" for c in configs)
    lines = [f"sweep of {result.design!r} over {result.param}:", header]
    for row in result.rows:
        lines.append(
            f"{str(row.value):>12s} "
            + " ".join(f"{row.fmax(c):12.0f}" for c in configs)
        )
    return "\n".join(lines)
