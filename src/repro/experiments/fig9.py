"""Figure 9 — operator delay vs broadcast factor.

Three panels in the paper: int add, BRAM buffer access, float multiply.
Each panel shows three series: the HLS-predicted (flat) delay, the raw
skeleton measurement, and the calibrated curve
``smooth(max(predicted, measured))``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.delay.calibrated import CalibrationTable
from repro.delay.calibration import (
    DEFAULT_FACTORS,
    characterize_memory,
    characterize_operator,
)
from repro.delay.tables import HLS_LOAD_NS, hls_predicted_delay
from repro.engine import Engine
from repro.ir.ops import Opcode
from repro.ir.types import f32, i32


@dataclass
class Fig9Series:
    """One panel: delay (ns) per broadcast factor for the three series."""

    label: str
    factors: List[int] = field(default_factory=list)
    hls_predicted: List[float] = field(default_factory=list)
    measured: List[float] = field(default_factory=list)
    calibrated: List[float] = field(default_factory=list)

    def crossover_factor(self) -> int:
        """First factor where measurement exceeds the HLS prediction."""
        for factor, measured, predicted in zip(
            self.factors, self.measured, self.hls_predicted
        ):
            if measured > predicted:
                return factor
        return 0


def _panel(
    label: str,
    key: str,
    points: Sequence[Tuple[int, float]],
    predicted: float,
) -> Fig9Series:
    table = CalibrationTable()
    for factor, delay in points:
        table.add(key, factor, delay)
    smoothed = table.smoothed()
    series = Fig9Series(label)
    for factor, delay in points:
        series.factors.append(factor)
        series.hls_predicted.append(predicted)
        series.measured.append(delay)
        series.calibrated.append(max(predicted, smoothed.lookup(key, factor) or 0.0))
    return series


def _characterize_panel(spec) -> Fig9Series:
    """Worker-side sweep of one panel (module-level so it pickles)."""
    label, key, kind, op, factors, device, seed = spec
    if kind == "memory":
        points = characterize_memory(op, factors, device=device, seed=seed)
        predicted = HLS_LOAD_NS
    else:
        opcode, dtype = op
        points = characterize_operator(opcode, dtype, factors, device=device, seed=seed)
        predicted = hls_predicted_delay(opcode, dtype)
    return _panel(label, key, points, predicted)


def run_fig9(
    factors: Sequence[int] = DEFAULT_FACTORS,
    device: str = "aws-f1",
    seed: int = 2020,
    engine: Optional[Engine] = None,
) -> Dict[str, Fig9Series]:
    """Reproduce the three Fig. 9 panels.

    The three skeleton sweeps are independent; with a parallel ``engine``
    each panel characterizes in its own worker.
    """
    engine = engine or Engine()
    specs = [
        ("int32 add", "add_i32", "operator", (Opcode.ADD, i32), tuple(factors), device, seed),
        ("BRAM load", "load_bram", "memory", "load", tuple(factors), device, seed),
        ("float32 mul", "mul_f32", "operator", (Opcode.MUL, f32), tuple(factors), device, seed),
    ]
    series = engine.map(_characterize_panel, specs)
    return {spec[1]: panel for spec, panel in zip(specs, series)}


def format_fig9(panels: Dict[str, Fig9Series]) -> str:
    lines: List[str] = []
    for key, series in panels.items():
        lines.append(f"[{series.label}]  (HLS prediction is flat)")
        lines.append(f"  {'factor':>8s} {'HLS':>7s} {'measured':>9s} {'calibrated':>11s}")
        for i, factor in enumerate(series.factors):
            lines.append(
                f"  {factor:8d} {series.hls_predicted[i]:7.2f} "
                f"{series.measured[i]:9.2f} {series.calibrated[i]:11.2f}"
            )
        cross = series.crossover_factor()
        lines.append(
            f"  measurement first exceeds prediction at factor {cross}"
            if cross
            else "  measurement never exceeds prediction in this sweep"
        )
        lines.append("")
    return "\n".join(lines)
