"""The paper's reported numbers, verbatim, for side-by-side printing.

Source: Guo, Lau et al., "Analysis and Optimization of the Implicit
Broadcasts in FPGA HLS to Improve Maximum Frequency", DAC 2020 — Tables
1–3 and the §5 prose.
"""

from __future__ import annotations

from typing import Dict, NamedTuple


class Table1Row(NamedTuple):
    broadcast_type: str
    target: str
    lut: "tuple[int, int]"  # (orig %, opt %)
    ff: "tuple[int, int]"
    bram: "tuple[float, float]"
    dsp: "tuple[int, int]"
    freq: "tuple[int, int]"  # (orig MHz, opt MHz)


#: Table 1, keyed by our design registry names (row order preserved).
TABLE1: Dict[str, Table1Row] = {
    "genome": Table1Row(
        "Data", "UltraScale+ (AWS F1)", (22, 22), (11, 12), (6, 6), (8, 8), (264, 341)
    ),
    "lstm": Table1Row(
        "Data", "UltraScale+ (AWS F1)", (8, 9), (6, 6), (2, 2), (14, 14), (285, 325)
    ),
    "face_detection": Table1Row(
        "Data", "ZYNQ (ZC706)", (21, 22), (14, 15), (16, 16), (9, 9), (220, 273)
    ),
    "matmul": Table1Row(
        "Pipe. Ctrl. & Data", "UltraScale+ (AWS F1)", (23, 23), (24, 27), (25, 25),
        (74, 74), (202, 299),
    ),
    "stream_buffer": Table1Row(
        "Pipe. Ctrl. & Data", "UltraScale+ (AWS F1)", (1, 1), (1, 1), (95, 95),
        (0, 0), (154, 281),
    ),
    "stencil": Table1Row(
        "Pipe. Ctrl.", "UltraScale+ (AWS F1)", (40, 40), (41, 41), (30, 29),
        (83, 83), (120, 253),
    ),
    "vector_arith": Table1Row(
        "Pipe. Ctrl. & Sync.", "UltraScale+ (AWS F1)", (17, 17), (16, 15), (0, 0.5),
        (60, 60), (195, 301),
    ),
    "hbm_stencil": Table1Row(
        "Pipe. Ctrl. & Sync.", "UltraScale+ (Alveo U50)", (21, 23), (23, 23), (34, 31),
        (37, 37), (191, 324),
    ),
    "pattern_matching": Table1Row(
        "Data & Sync.", "Virtex-7 (Alpha-Data)", (17, 17), (5, 7), (9, 9),
        (0, 0), (187, 278),
    ),
}

#: Table 2: 512-wide vector product (MHz, LUT%, FF%, BRAM%, DSP%).
TABLE2 = {
    "stall": (195, 17, 16, 0.0, 60),
    "skid": (299, 18, 16, 12.0, 60),
    "skid_minarea": (301, 17, 15, 0.02, 60),
}

#: Table 3: pattern matching (MHz, LUT%, FF%, BRAM%, DSP%).
TABLE3 = {
    "orig": (187, 17, 5, 9, 0),
    "opt_data": (208, 18, 7, 9, 0),
    "opt_data_ctrl": (278, 17, 7, 9, 0),
}

#: §3.1 / §5.2 case-study anchors.
GENOME_SUB_PREDICTED_NS = 0.78
GENOME_SUB_ACTUAL_NS = 2.08
GENOME_PIPELINE_DEPTH = (9, 10)  # orig, opt
#: Fig. 17 example: min-area skid buffer bits for the 32-wide (a.b)*c.
FIG17_END_ONLY_BITS = 63_488
FIG17_MIN_AREA_BITS = 7_968
#: §5.4: skid buffer for the 8-iteration Jacobi super-pipeline, ~23 KB.
FIG16_SKID_BUFFER_KB = 23
#: §5.3: HBM stencil sync pruning gain.
HBM_STENCIL_FREQ = (191, 324)

#: Average Fmax gain across Table 1 (abstract: "by 53% on average").
AVERAGE_GAIN_PCT = 53.0


def table1_average_gain() -> float:
    """Average relative frequency gain of Table 1 (paper reports 53%)."""
    gains = [(row.freq[1] / row.freq[0] - 1) * 100 for row in TABLE1.values()]
    return sum(gains) / len(gains)
