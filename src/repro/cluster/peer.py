"""Peer-fetch result store: local miss → download from the digest's owner.

Each cluster node keeps its *own* result store (sharded by the ring), but
any node can be asked for any digest — a router failing over, a client
pinned to one node, a rebalanced ring.  :class:`PeerResultStore` makes
that transparent: a local :meth:`get` miss consults the digest's owner
replicas over ``GET /result/<digest>``, validates the downloaded payload
(schema + digest match, via :meth:`ResultStore.put_bytes`), installs it
locally (write-through, atomic), and serves the hit — so a digest
compiled anywhere is a *local* hit everywhere it is requested twice.

The daemon's own ``/result`` route reads through :meth:`ResultStore.get_bytes`,
which never consults peers — peer fetch cannot recurse or storm the fleet.
Fetches are deliberately synchronous and bounded (one attempt per owner,
short timeout): a dead peer costs one connect timeout and the caller
falls back to compiling, which is always correct.

Counters: ``cluster.peer_hits`` / ``cluster.peer_misses`` /
``cluster.peer_fetch_errors`` in the process registry; every fetch also
lands in the event journal as ``cluster.peer_fetch``.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro import obs
from repro.obs.journal import EventJournal, emit_event
from repro.service.client import ServiceClient, ServiceError
from repro.service.store import ResultStore, StoredResult

#: Peer fetches race against "just compile it instead": keep the
#: worst-case stall (owner died between heartbeats) well under a compile.
DEFAULT_FETCH_TIMEOUT_S = 5.0


class PeerResultStore(ResultStore):
    """A :class:`ResultStore` whose misses consult the ring owners.

    ``owners_for`` maps a digest to candidate ``(host, port)`` peers —
    normally ``Membership.owners`` minus this node.  The store stays a
    drop-in replacement: the daemon calls plain ``get``/``put`` and never
    learns whether a hit was local or fetched.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        max_entries: Optional[int] = None,
        node_id: str = "",
        owners_for: Optional[Callable[[str], List]] = None,
        fetch_timeout_s: float = DEFAULT_FETCH_TIMEOUT_S,
        journal: Optional[EventJournal] = None,
    ) -> None:
        kwargs = {} if max_entries is None else {"max_entries": max_entries}
        super().__init__(root=root, **kwargs)
        self.node_id = node_id
        self.owners_for = owners_for
        self.fetch_timeout_s = fetch_timeout_s
        self.journal = journal
        self.peer_hits = 0
        self.peer_misses = 0
        self.peer_fetch_errors = 0

    def _emit(self, event: str, **fields: Any) -> None:
        if self.journal is not None:
            try:
                self.journal.emit(event, **fields)
            except OSError:
                pass
        else:
            emit_event(event, **fields)

    def get(self, digest: str) -> Optional[StoredResult]:
        hit = super().get(digest)
        if hit is not None or self.owners_for is None:
            return hit
        return self.fetch_from_peers(digest)

    # -- network side ----------------------------------------------------
    def _peer_client(self, host: str, port: int) -> ServiceClient:
        return ServiceClient(
            host=host, port=port, timeout=self.fetch_timeout_s, retries=0
        )

    def fetch_from_peers(self, digest: str) -> Optional[StoredResult]:
        """Try each owner replica once; install and return the first valid
        payload.  Every outcome is observable but none is fatal — a miss
        just means the caller compiles."""
        registry = obs.global_registry()
        for info in self.owners_for(digest):
            node_id = getattr(info, "node_id", None)
            if node_id == self.node_id:
                continue  # our own miss is authoritative
            try:
                payload = self._peer_client(info.host, info.port).get_result_bytes(
                    digest
                )
            except ServiceError:
                self.peer_fetch_errors += 1
                registry.add("cluster.peer_fetch_errors")
                continue
            if payload is None:
                continue
            entry = self.put_bytes(digest, payload)
            if entry is None:  # corrupt/mismatched payload; try next owner
                self.peer_fetch_errors += 1
                registry.add("cluster.peer_fetch_errors")
                continue
            self.peer_hits += 1
            registry.add("cluster.peer_hits")
            self._emit(
                "cluster.peer_fetch",
                digest=digest,
                node_id=self.node_id,
                peer=node_id,
                bytes=len(payload),
            )
            return entry
        self.peer_misses += 1
        registry.add("cluster.peer_misses")
        return None
