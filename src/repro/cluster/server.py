"""HTTP front end for the cluster router.

Unlike the per-node daemon (asyncio streams around a single event loop),
the router front end is a stdlib ``ThreadingHTTPServer``: a routed
``/submit`` with ``wait=true`` blocks for the whole compile, so each
in-flight client needs its own thread — the router itself is thread-safe
and the per-request work (hash, one downstream HTTP call) is tiny.

Routes:

* ``GET  /healthz``    — router liveness;
* ``GET  /status``     — the aggregated cluster document
  (:meth:`ClusterRouter.status`);
* ``GET  /membership`` — the raw membership/ring snapshot;
* ``GET  /metrics``    — fleet-wide exposition, every sample labeled
  ``node=<id>`` (:meth:`ClusterRouter.metrics_text`);
* ``POST /submit``     — same body as a node's ``/submit``; the router
  picks the node.  Extra failure mapping: 503 when every replica of the
  digest is unreachable;
* ``POST /shutdown``   — stop the front end (the nodes keep running).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from repro.cluster.router import ClusterRouter
from repro.errors import ReproError
from repro.obs.exposition import CONTENT_TYPE as EXPOSITION_CONTENT_TYPE
from repro.service.client import ServiceBusyError, ServiceError


class RouterServer:
    """Binds a :class:`ClusterRouter` to a TCP port (own thread pool)."""

    def __init__(
        self,
        router: ClusterRouter,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.router = router
        handler = _make_handler(router)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-cluster-router",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=10)
        self._thread = None

    def __enter__(self) -> "RouterServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def _make_handler(router: ClusterRouter):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args: Any) -> None:  # quiet by design
            pass

        # -- response helpers -------------------------------------------
        def _send(self, status: int, body: bytes, content_type: str) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, status: int, document: Dict[str, Any]) -> None:
            self._send(status, json.dumps(document).encode(), "application/json")

        # -- GET ---------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 (http.server convention)
            try:
                if self.path == "/healthz":
                    self._send_json(
                        200, {"ok": True, "schema": "repro-cluster/1"}
                    )
                elif self.path == "/status":
                    self._send_json(200, router.status())
                elif self.path == "/membership":
                    self._send_json(200, router.membership.snapshot())
                elif self.path == "/metrics":
                    self._send(
                        200,
                        router.metrics_text().encode(),
                        EXPOSITION_CONTENT_TYPE,
                    )
                else:
                    self._send_json(404, {"error": f"no route GET {self.path}"})
            except BrokenPipeError:
                pass
            except Exception as exc:  # a handler bug must not kill the router
                self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

        # -- POST --------------------------------------------------------
        def do_POST(self) -> None:  # noqa: N802
            try:
                length = int(self.headers.get("Content-Length", "0") or "0")
                raw = self.rfile.read(length) if length else b""
                try:
                    body = json.loads(raw) if raw else {}
                except json.JSONDecodeError as exc:
                    self._send_json(400, {"error": f"bad JSON body: {exc}"})
                    return
                if self.path == "/submit":
                    self._submit(body)
                elif self.path == "/shutdown":
                    self._send_json(200, {"ok": True})
                    threading.Thread(
                        target=self.server.shutdown, daemon=True
                    ).start()
                else:
                    self._send_json(404, {"error": f"no route POST {self.path}"})
            except BrokenPipeError:
                pass
            except Exception as exc:
                self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

        def _submit(self, body: Dict[str, Any]) -> None:
            if not body.get("design"):
                self._send_json(400, {"error": "missing required field 'design'"})
                return
            try:
                record = router.submit(
                    body["design"],
                    config=body.get("config", "orig"),
                    params=dict(body.get("params") or {}),
                    priority=body.get("priority", "normal"),
                    wait=bool(body.get("wait")),
                    wait_timeout_s=body.get("wait_timeout_s"),
                    timeout_s=body.get("timeout_s"),
                    clock_mhz=body.get("clock_mhz"),
                    seed=body.get("seed", 2020),
                    calibration_path=body.get("calibration_path"),
                    plan=body.get("plan"),
                )
            except ServiceBusyError as exc:
                self._send_json(429, {"error": str(exc)})
            except ServiceError as exc:
                if exc.status == 0:
                    self._send_json(503, {"error": str(exc)})
                else:
                    self._send_json(
                        exc.status, exc.payload or {"error": str(exc)}
                    )
            except (ReproError, TypeError, ValueError) as exc:
                self._send_json(400, {"error": str(exc)})
            else:
                status = 200 if record.get("state") in ("done", "failed") else 202
                if record.get("state") == "failed":
                    status = 500
                self._send_json(status, record)

    return Handler
