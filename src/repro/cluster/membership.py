"""Cluster membership + health: who is in the ring right now.

A :class:`Membership` tracks the fleet's nodes, keeps the consistent-hash
ring in sync with the set of *alive* members, and (optionally) runs a
heartbeat thread that probes every node's ``GET /health``.  A node that
misses ``max_misses`` consecutive probes is marked dead and leaves the
ring; a dead node that answers again rejoins.  Every transition bumps a
monotonic ``version`` (so routers can cheap-check "did the ring move?")
and lands in the event journal (``cluster.node_up`` / ``cluster.node_down``)
plus the metrics registry (``cluster.nodes_alive`` gauge).

Thread-safety: the router's request threads read ownership while the
heartbeat thread mutates it, so every access goes through one RLock —
membership operations are rare and cheap (a ring rebuild is
``members × vnodes`` sorted inserts), so a single lock is plenty.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro import obs
from repro.cluster.ring import DEFAULT_REPLICAS, DEFAULT_VNODES, HashRing
from repro.errors import ReproError
from repro.obs.journal import EventJournal, emit_event
from repro.service.client import ServiceClient, ServiceError

#: Consecutive failed probes before a node is declared dead.
DEFAULT_MAX_MISSES = 3

#: Heartbeat cadence.
DEFAULT_HEARTBEAT_S = 0.5


@dataclass
class NodeInfo:
    """One member daemon as the cluster sees it."""

    node_id: str
    host: str
    port: int
    state: str = "alive"  # "alive" | "dead"
    misses: int = 0
    last_seen_s: float = 0.0
    #: Last ``/health`` vitals (queue depth, lanes, store size).
    vitals: Dict[str, Any] = field(default_factory=dict)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def alive(self) -> bool:
        return self.state == "alive"

    def record(self) -> Dict[str, Any]:
        return {
            "node_id": self.node_id,
            "host": self.host,
            "port": self.port,
            "state": self.state,
            "misses": self.misses,
            "last_seen_s": self.last_seen_s,
            "vitals": dict(self.vitals),
        }


class Membership:
    """The ring-backed member table shared by router and status tooling."""

    def __init__(
        self,
        replicas: int = DEFAULT_REPLICAS,
        vnodes: int = DEFAULT_VNODES,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        max_misses: int = DEFAULT_MAX_MISSES,
        journal: Optional[EventJournal] = None,
        client_factory: Optional[Callable[[str, int], ServiceClient]] = None,
        probe_client_factory: Optional[Callable[[str, int], ServiceClient]] = None,
    ) -> None:
        if replicas < 1:
            raise ReproError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self.heartbeat_s = heartbeat_s
        self.max_misses = max_misses
        self.journal = journal
        # Two client profiles, both fail-fast (retries=0) so a dead node
        # costs one round-trip:
        # * submit clients keep the long default socket timeout — a
        #   ``wait=True`` submit legitimately blocks for a whole compile,
        #   and mistaking a slow compile for a dead node would fail over
        #   (and recompile) spuriously;
        # * probe clients use a short timeout — heartbeats and status
        #   aggregation must never hang on a wedged node.
        self._client_factory = client_factory or (
            lambda host, port: ServiceClient(host=host, port=port, retries=0)
        )
        self._probe_factory = probe_client_factory or (
            lambda host, port: ServiceClient(
                host=host, port=port, timeout=5.0, retries=0
            )
        )
        self.ring = HashRing(vnodes=vnodes)
        self.version = 0
        self._nodes: Dict[str, NodeInfo] = {}
        self._lock = threading.RLock()
        self._heartbeat: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- journal/metrics plumbing ----------------------------------------
    def _emit(self, event: str, **fields: Any) -> None:
        if self.journal is not None:
            try:
                self.journal.emit(event, **fields)
            except OSError:
                pass
        else:
            emit_event(event, **fields)

    def _gauge_alive(self) -> None:
        obs.global_registry().set_gauge(
            "cluster.nodes_alive", len(self.ring)
        )

    # -- membership ------------------------------------------------------
    def add(self, node_id: str, host: str, port: int) -> NodeInfo:
        """Join ``node_id`` (idempotent; a re-add revives a dead node)."""
        with self._lock:
            info = self._nodes.get(node_id)
            if info is None:
                info = NodeInfo(node_id=node_id, host=host, port=port)
                self._nodes[node_id] = info
            else:
                info.host, info.port = host, port
            info.state = "alive"
            info.misses = 0
            info.last_seen_s = time.time()
            if self.ring.add(node_id):
                self.version += 1
                self._emit(
                    "cluster.node_up",
                    node_id=node_id,
                    address=info.address,
                    ring_version=self.version,
                    members=len(self.ring),
                )
                obs.global_registry().add("cluster.node_joins")
            self._gauge_alive()
            return info

    def remove(self, node_id: str) -> None:
        """Forget ``node_id`` entirely (administrative leave)."""
        with self._lock:
            self._nodes.pop(node_id, None)
            if self.ring.remove(node_id):
                self.version += 1
                self._emit(
                    "cluster.node_down",
                    node_id=node_id,
                    reason="removed",
                    ring_version=self.version,
                    members=len(self.ring),
                )
            self._gauge_alive()

    def mark_dead(self, node_id: str, reason: str = "unreachable") -> None:
        """Take ``node_id`` out of the ring but keep its record so the
        heartbeat can revive it when it answers again."""
        with self._lock:
            info = self._nodes.get(node_id)
            if info is None or not self.ring.remove(node_id):
                return
            info.state = "dead"
            self.version += 1
            self._emit(
                "cluster.node_down",
                node_id=node_id,
                address=info.address,
                reason=reason,
                ring_version=self.version,
                members=len(self.ring),
            )
            obs.global_registry().add("cluster.node_deaths")
            self._gauge_alive()

    def mark_alive(self, node_id: str) -> None:
        with self._lock:
            info = self._nodes.get(node_id)
            if info is None:
                return
            info.misses = 0
            info.last_seen_s = time.time()
            if info.state != "alive":
                info.state = "alive"
                self.ring.add(node_id)
                self.version += 1
                self._emit(
                    "cluster.node_up",
                    node_id=node_id,
                    address=info.address,
                    reason="revived",
                    ring_version=self.version,
                    members=len(self.ring),
                )
            self._gauge_alive()

    # -- lookup ----------------------------------------------------------
    def node(self, node_id: str) -> Optional[NodeInfo]:
        with self._lock:
            return self._nodes.get(node_id)

    def members(self) -> List[NodeInfo]:
        """Every known node, alive or dead, in join order."""
        with self._lock:
            return list(self._nodes.values())

    def alive(self) -> List[NodeInfo]:
        with self._lock:
            return [info for info in self._nodes.values() if info.alive]

    def owners(self, digest: str, count: Optional[int] = None) -> List[NodeInfo]:
        """The alive replica set for ``digest``: primary first, then
        backups — the router's failover order."""
        with self._lock:
            ids = self.ring.owners(
                digest, count=count if count is not None else self.replicas
            )
            return [self._nodes[node_id] for node_id in ids]

    def client(self, info: NodeInfo) -> ServiceClient:
        """A submit-profile client (long timeout, no retries)."""
        return self._client_factory(info.host, info.port)

    def probe_client(self, info: NodeInfo) -> ServiceClient:
        """A probe-profile client (short timeout, no retries)."""
        return self._probe_factory(info.host, info.port)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "schema": "repro-cluster-membership/1",
                "ring_version": self.version,
                "replicas": self.replicas,
                "vnodes": self.ring.vnodes,
                "members": [info.record() for info in self._nodes.values()],
                "alive": sorted(self.ring.nodes()),
            }

    # -- heartbeat -------------------------------------------------------
    def probe_all(self) -> None:
        """One heartbeat sweep over every known node (alive *and* dead —
        dead nodes rejoin the ring as soon as they answer again)."""
        for info in self.members():
            try:
                vitals = self._probe_factory(info.host, info.port).health()
            except ServiceError:
                with self._lock:
                    current = self._nodes.get(info.node_id)
                    if current is None:
                        continue
                    current.misses += 1
                    if current.alive and current.misses >= self.max_misses:
                        self.mark_dead(
                            info.node_id,
                            reason=f"{current.misses} missed heartbeats",
                        )
            else:
                with self._lock:
                    current = self._nodes.get(info.node_id)
                    if current is not None:
                        current.vitals = vitals
                self.mark_alive(info.node_id)

    def start_heartbeat(self) -> None:
        if self._heartbeat is not None:
            return
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(self.heartbeat_s):
                self.probe_all()

        self._heartbeat = threading.Thread(
            target=_loop, name="repro-cluster-heartbeat", daemon=True
        )
        self._heartbeat.start()

    def stop_heartbeat(self) -> None:
        if self._heartbeat is None:
            return
        self._stop.set()
        self._heartbeat.join(timeout=5)
        self._heartbeat = None
