"""The cluster router: one submit surface over a fleet of flow daemons.

Routing is pure arithmetic: the router builds the same canonical
:class:`~repro.service.request.FlowRequest` a node would and consistent-
hash-maps its digest onto the membership ring — the primary owner gets
the submit, the backup replica is the failover target.  Because identity
is content-addressed end to end, the whole cluster behaves like one big
coalescing cache: the same request always lands on the same node, where
it either coalesces onto the in-flight job, hits that node's store, or
compiles exactly once.

Three mechanisms keep tail latency down:

* **hot-digest LRU cache** — terminal ("done") records are cached at the
  router keyed by digest, so a repeat of a hot request is answered from
  router memory without touching any node (``served_from:
  "router-cache"``);
* **failover** — a connection-level failure against the primary marks it
  dead in the membership (the ring re-hashes) and re-submits to the
  backup replica; the retry resumes from whatever checkpointed stage
  artifacts the dead node shared (``cluster.failover`` journal event,
  ``cluster.failovers`` counter).  HTTP 429 (backpressure) spills to the
  backup too, without declaring anyone dead;
* **peer fetch** — the backup's own store miss consults the ring owners
  (see :mod:`repro.cluster.peer`), so failover never recompiles a digest
  the fleet already has.

Aggregation: :meth:`status` merges every node's ``/health`` vitals with
the membership table; :meth:`metrics_text` scrapes each node's
``/metrics`` and re-exposes every sample with a ``node=<id>`` label plus
the router's own counters.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional

from repro import obs
from repro.cluster.membership import Membership, NodeInfo
from repro.obs.exposition import Family, Sample
from repro.obs.journal import EventJournal, emit_event
from repro.service.client import ServiceBusyError, ServiceError
from repro.service.request import FlowRequest

#: Hot-digest cache bound: a record is a small JSON dict (~1 KB), so even
#: thousands are cheap; 512 covers any realistic hot set.
DEFAULT_CACHE_ENTRIES = 512


class ClusterRouter:
    """Routes content-addressed submissions across the membership ring."""

    def __init__(
        self,
        membership: Membership,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        journal: Optional[EventJournal] = None,
    ) -> None:
        self.membership = membership
        self.journal = journal
        self.cache_entries = cache_entries
        self._cache: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.created_s = time.time()
        self.requests = 0
        self.cache_hits = 0
        self.failovers = 0
        self.busy_redirects = 0

    # -- plumbing --------------------------------------------------------
    def _emit(self, event: str, **fields: Any) -> None:
        if self.journal is not None:
            try:
                self.journal.emit(event, **fields)
            except OSError:
                pass
        else:
            emit_event(event, **fields)

    def _count(self, name: str, amount: float = 1) -> None:
        obs.global_registry().add(name, amount)

    # -- the hot-digest cache --------------------------------------------
    def _cache_get(self, digest: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            record = self._cache.get(digest)
            if record is None:
                return None
            self._cache.move_to_end(digest)
            return dict(record)

    def _cache_put(self, digest: str, record: Dict[str, Any]) -> None:
        with self._lock:
            self._cache[digest] = dict(record)
            self._cache.move_to_end(digest)
            while len(self._cache) > self.cache_entries:
                self._cache.popitem(last=False)

    def cache_len(self) -> int:
        with self._lock:
            return len(self._cache)

    # -- submit ----------------------------------------------------------
    def request_for(
        self,
        design: str,
        config: Any = "orig",
        params: Optional[Dict[str, Any]] = None,
        clock_mhz: Optional[float] = None,
        seed: int = 2020,
        calibration_path: Optional[str] = None,
        plan: Optional[Any] = None,
    ) -> FlowRequest:
        """The canonical request — byte-identical to what a node builds
        from the same submit body, so router and fleet agree on digests."""
        return FlowRequest.make(
            design,
            config=config,
            clock_mhz=clock_mhz,
            seed=seed,
            smooth_passes=1,
            calibration_path=calibration_path,
            plan=plan,
            **dict(params or {}),
        )

    def submit(
        self,
        design: str,
        config: Any = "orig",
        params: Optional[Dict[str, Any]] = None,
        priority: str = "normal",
        wait: bool = True,
        wait_timeout_s: Optional[float] = None,
        timeout_s: Optional[float] = None,
        clock_mhz: Optional[float] = None,
        seed: int = 2020,
        calibration_path: Optional[str] = None,
        plan: Optional[Any] = None,
    ) -> Dict[str, Any]:
        """Route one submission; returns the node's job record annotated
        with ``node`` (who served it) and ``served_from``.

        Raises :class:`ServiceError` with ``status=0`` when every replica
        of the digest is unreachable, and propagates semantic errors
        (bad request, unknown design, failed job) from the serving node
        untouched.
        """
        self.requests += 1
        self._count("cluster.requests")
        request = self.request_for(
            design,
            config=config,
            params=params,
            clock_mhz=clock_mhz,
            seed=seed,
            calibration_path=calibration_path,
            plan=plan,
        )
        digest = request.digest()

        cached = self._cache_get(digest)
        if cached is not None:
            self.cache_hits += 1
            self._count("cluster.router_cache_hits")
            cached["served_from"] = "router-cache"
            return cached

        owners = self.membership.owners(digest)
        if not owners:
            raise ServiceError("cluster has no alive nodes", status=0)
        last_error: Optional[ServiceError] = None
        for index, info in enumerate(owners):
            client = self.membership.client(info)
            try:
                record = client.submit(
                    design,
                    config=config,
                    params=params,
                    priority=priority,
                    wait=wait,
                    wait_timeout_s=wait_timeout_s,
                    timeout_s=timeout_s,
                    clock_mhz=clock_mhz,
                    seed=seed,
                    calibration_path=calibration_path,
                    plan=request.plan_spec(),
                )
            except ServiceBusyError as exc:
                # Backpressure spills to the backup; the node is healthy.
                last_error = exc
                self.busy_redirects += 1
                self._count("cluster.busy_redirects")
                continue
            except ServiceError as exc:
                if exc.status != 0:
                    raise  # a real answer (bad request, failed job)
                last_error = exc
                self.membership.mark_dead(
                    info.node_id, reason="submit connection failed"
                )
                backups = [o.node_id for o in owners[index + 1:]]
                if backups:
                    self.failovers += 1
                    self._count("cluster.failovers")
                    self._emit(
                        "cluster.failover",
                        digest=digest,
                        design=design,
                        dead_node=info.node_id,
                        backup_node=backups[0],
                    )
                continue
            record["node"] = info.node_id
            record.setdefault("served_from", "compile")
            if record.get("state") == "done" and record.get("result_digest"):
                self._cache_put(digest, record)
            return record
        raise last_error if last_error is not None else ServiceError(
            "cluster submit failed", status=0
        )

    # -- aggregation -----------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """The cluster-wide status document: membership + per-node health
        vitals + router counters (``repro cluster status`` / ``repro
        status --cluster``)."""
        nodes: List[Dict[str, Any]] = []
        for info in self.membership.members():
            record = info.record()
            if info.alive:
                try:
                    record["vitals"] = self.membership.probe_client(info).health()
                except ServiceError:
                    record["vitals"] = dict(info.vitals)  # last heartbeat's
            nodes.append(record)
        return {
            "schema": "repro-cluster-status/1",
            "ring_version": self.membership.version,
            "replicas": self.membership.replicas,
            "nodes": nodes,
            "router": {
                "requests": self.requests,
                "cache_hits": self.cache_hits,
                "cache_entries": self.cache_len(),
                "failovers": self.failovers,
                "busy_redirects": self.busy_redirects,
                "uptime_s": round(time.time() - self.created_s, 3),
            },
        }

    def metrics_text(self) -> str:
        """One exposition document for the whole fleet.

        Every node's ``/metrics`` samples are re-labeled with
        ``node=<id>``; the router appends its own counter families.  Nodes
        that fail to answer are skipped (their absence is visible through
        ``repro_cluster_nodes_alive``).
        """
        from repro.obs.exposition import parse_exposition

        families: "OrderedDict[str, Family]" = OrderedDict()

        def family_for(name: str, types: Dict[str, str]) -> Family:
            base = name
            if base not in types:
                for suffix in ("_total", "_count", "_sum", "_min", "_max"):
                    if base.endswith(suffix) and base[: -len(suffix)] in types:
                        base = base[: -len(suffix)]
                        break
            family = families.get(base)
            if family is None:
                family = Family(name=base, kind=types.get(base, "untyped"))
                families[base] = family
            return family

        for info in self.membership.alive():
            try:
                text = self.membership.probe_client(info).metrics()
                document = parse_exposition(text)
            except (ServiceError, ValueError):
                continue
            for (name, labels), value in sorted(document.samples.items()):
                family_for(name, document.types).samples.append(
                    Sample(name, value, labels + (("node", info.node_id),))
                )

        own = [
            ("repro_cluster_requests_total", "counter", self.requests),
            ("repro_cluster_router_cache_hits_total", "counter", self.cache_hits),
            ("repro_cluster_failovers_total", "counter", self.failovers),
            ("repro_cluster_busy_redirects_total", "counter", self.busy_redirects),
            ("repro_cluster_nodes_alive", "gauge", len(self.membership.ring)),
        ]
        lines: List[str] = []
        for family in families.values():
            lines.extend(family.render())
        for name, kind, value in own:
            base = name[: -len("_total")] if name.endswith("_total") else name
            lines.append(f"# TYPE {base} {kind}")
            lines.append(Sample(name, value).render())
        return "\n".join(lines) + "\n"
