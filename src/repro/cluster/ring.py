"""Consistent-hash ring: ``FlowRequest.digest()`` → owning nodes.

The cluster shards its compile cache by request digest.  A plain
``hash(digest) % n`` remaps almost every digest when ``n`` changes; a
consistent-hash ring remaps only the arc owned by the node that joined or
left (~1/n of the keyspace), so a membership change invalidates almost
none of the fleet's warm result stores.

Each node is planted at ``vnodes`` pseudo-random positions (virtual
nodes) on a 64-bit circle; a digest is owned by the first ``replicas``
*distinct* nodes clockwise from its own position.  Virtual nodes smooth
the arc lengths: with 256 vnodes per node the max/min load ratio over a
uniform digest population stays under ~1.2 on a 3-node ring (pinned by
``tests/test_cluster_ring.py``).

Positions come from SHA-256 — the same primitive as the request digest —
so ring layout is deterministic across processes and Python runs (no
``PYTHONHASHSEED`` sensitivity), which is what lets every router replica
and every node compute identical ownership without coordination.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Tuple

#: Virtual nodes per member: balance (more vnodes → smoother arcs) vs
#: ring-build cost (n_members × vnodes sorted entries).
DEFAULT_VNODES = 256

#: Replication factor: primary + one backup.
DEFAULT_REPLICAS = 2


def _position(key: str) -> int:
    """A deterministic 64-bit circle position for ``key``."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A deterministic consistent-hash ring over string node ids."""

    def __init__(
        self,
        nodes: Iterable[str] = (),
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: set = set()
        #: Sorted ``(position, node_id)`` pairs; parallel position list for
        #: bisect.  Rebuilt on membership change (rare), read per request.
        self._ring: List[Tuple[int, str]] = []
        self._positions: List[int] = []
        for node in nodes:
            self.add(node)

    # -- membership ------------------------------------------------------
    def add(self, node_id: str) -> bool:
        """Plant ``node_id``'s virtual nodes; False if already present."""
        if node_id in self._nodes:
            return False
        self._nodes.add(node_id)
        self._rebuild()
        return True

    def remove(self, node_id: str) -> bool:
        if node_id not in self._nodes:
            return False
        self._nodes.discard(node_id)
        self._rebuild()
        return True

    def _rebuild(self) -> None:
        ring = []
        for node_id in self._nodes:
            for index in range(self.vnodes):
                ring.append((_position(f"{node_id}#{index}"), node_id))
        ring.sort()
        self._ring = ring
        self._positions = [position for position, _ in ring]

    # -- lookup ----------------------------------------------------------
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def owners(self, digest: str, count: int = DEFAULT_REPLICAS) -> List[str]:
        """The first ``count`` distinct nodes clockwise from ``digest``.

        ``owners(d)[0]`` is the primary, the rest are backups.  With fewer
        members than ``count`` every member owns every digest.
        """
        if not self._ring:
            return []
        count = min(count, len(self._nodes))
        start = bisect.bisect_right(self._positions, _position(digest))
        owners: List[str] = []
        total = len(self._ring)
        for step in range(total):
            node_id = self._ring[(start + step) % total][1]
            if node_id not in owners:
                owners.append(node_id)
                if len(owners) == count:
                    break
        return owners

    def owner(self, digest: str) -> str:
        """The primary owner of ``digest`` (raises on an empty ring)."""
        owners = self.owners(digest, count=1)
        if not owners:
            raise LookupError("consistent-hash ring has no members")
        return owners[0]
