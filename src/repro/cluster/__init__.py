"""repro.cluster — the multi-node compilation cluster.

Scales the single-node flow service (:mod:`repro.service`) to a fleet by
exploiting the property the service already has: requests are
content-addressed (``FlowRequest.digest()``), so "which node owns this
compilation" is pure arithmetic and every cache layer composes:

* :mod:`repro.cluster.ring` — :class:`HashRing`, a deterministic
  consistent-hash ring with virtual nodes; a membership change remaps
  ~1/n of the keyspace instead of all of it;
* :mod:`repro.cluster.membership` — :class:`Membership`, the member
  table + heartbeat health prober that keeps the ring in sync with who
  is actually answering (``cluster.node_up`` / ``cluster.node_down``
  journal events);
* :mod:`repro.cluster.peer` — :class:`PeerResultStore`, a result store
  whose local miss downloads the entry from the digest's owner replica
  (``GET /result/<digest>``) before falling back to compiling;
* :mod:`repro.cluster.router` — :class:`ClusterRouter`, the submit
  surface: hot-digest LRU cache, primary→backup failover on node death,
  fleet-wide status/metrics aggregation;
* :mod:`repro.cluster.server` — :class:`RouterServer`, the router's
  HTTP front end (``repro cluster serve``);
* :mod:`repro.cluster.local` — :class:`LocalCluster`, an n-node cluster
  in one process (threads) or n subprocesses (SIGKILL-able), used by
  tests, benchmarks and the CI smoke job.

Quick tour::

    from repro.cluster import LocalCluster

    with LocalCluster(nodes=3, workers=1) as cluster:
        record = cluster.router.submit("matmul", config="full", wait=True)
        again = cluster.router.submit("matmul", config="full", wait=True)
        assert again["served_from"] == "router-cache"
"""

from repro.cluster.local import LocalCluster, NodeHandle, free_port, peers_spec
from repro.cluster.membership import Membership, NodeInfo
from repro.cluster.peer import PeerResultStore
from repro.cluster.ring import DEFAULT_REPLICAS, DEFAULT_VNODES, HashRing
from repro.cluster.router import ClusterRouter
from repro.cluster.server import RouterServer

__all__ = [
    "HashRing",
    "DEFAULT_REPLICAS",
    "DEFAULT_VNODES",
    "Membership",
    "NodeInfo",
    "PeerResultStore",
    "ClusterRouter",
    "RouterServer",
    "LocalCluster",
    "NodeHandle",
    "free_port",
    "peers_spec",
]
