"""LocalCluster: an n-node cluster in one process (or n subprocesses).

The deployment story for tests, benchmarks and CI smoke jobs:

* ``mode="thread"`` — every node is a :func:`~repro.service.server.serve_in_thread`
  embedding (own asyncio loop + worker processes, shared
  ``$REPRO_CACHE_DIR`` stage store, *per-node* result stores).  Cheap to
  start, easy to introspect; "node death" is a graceful stop (the port
  then refuses connections, which is what the router's failover path
  keys on).
* ``mode="process"`` — every node is a real ``repro serve`` subprocess,
  so a test can ``SIGKILL`` one mid-compile and watch the router fail
  over to the backup replica, which resumes from the dead node's
  checkpointed stage artifacts (shared ``$REPRO_CACHE_DIR/stages``).

Both modes wire each node's result store for peer fetch (``--peers`` /
:class:`~repro.cluster.peer.PeerResultStore`), register every node in one
:class:`~repro.cluster.membership.Membership` (heartbeat on), and front
the fleet with a :class:`~repro.cluster.router.ClusterRouter`.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cluster.membership import Membership
from repro.cluster.peer import PeerResultStore
from repro.cluster.router import ClusterRouter
from repro.errors import ReproError
from repro.obs.journal import EventJournal
from repro.service.client import ServiceClient
from repro.service.daemon import FlowService
from repro.service.server import serve_in_thread


def free_port() -> int:
    """Ask the kernel for an ephemeral port (bind-then-close).  The tiny
    reuse race is acceptable for tests/CI — the port is consumed
    immediately by the spawned daemon."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def peers_spec(nodes: List["NodeHandle"]) -> str:
    """The ``--peers`` wire format: ``id=host:port,id=host:port,...``"""
    return ",".join(f"{n.node_id}={n.host}:{n.port}" for n in nodes)


@dataclass
class NodeHandle:
    """One member node as the cluster harness drives it."""

    node_id: str
    host: str
    port: int
    store_root: str
    mode: str
    #: thread mode: the live context manager + server
    _cm: Any = None
    server: Any = None
    #: process mode: the subprocess
    proc: Optional[subprocess.Popen] = field(default=None, repr=False)

    @property
    def running(self) -> bool:
        if self.mode == "process":
            return self.proc is not None and self.proc.poll() is None
        return self._cm is not None

    def client(self, **kwargs: Any) -> ServiceClient:
        return ServiceClient(host=self.host, port=self.port, **kwargs)


class LocalCluster:
    """Start → submit through ``.router`` → stop; context-manager friendly."""

    def __init__(
        self,
        nodes: int = 3,
        base_dir: Optional[str] = None,
        mode: str = "thread",
        workers: int = 1,
        replicas: int = 2,
        heartbeat_s: float = 0.2,
        max_misses: int = 2,
        router_cache_entries: int = 512,
        service_kwargs: Optional[Dict[str, Any]] = None,
        env: Optional[Dict[str, str]] = None,
    ) -> None:
        if mode not in ("thread", "process"):
            raise ReproError(f"mode must be 'thread' or 'process', got {mode!r}")
        if nodes < 1:
            raise ReproError(f"nodes must be >= 1, got {nodes}")
        self.n = nodes
        self.mode = mode
        self.workers = workers
        self.base_dir = base_dir or tempfile.mkdtemp(prefix="repro-cluster-")
        self.journal_path = os.path.join(self.base_dir, "journal.jsonl")
        self.service_kwargs = dict(service_kwargs or {})
        self.extra_env = dict(env or {})
        self.membership = Membership(
            replicas=replicas,
            heartbeat_s=heartbeat_s,
            max_misses=max_misses,
            journal=EventJournal(self.journal_path, source="membership"),
        )
        self.router = ClusterRouter(
            self.membership,
            cache_entries=router_cache_entries,
            journal=EventJournal(self.journal_path, source="router"),
        )
        self.nodes: List[NodeHandle] = []
        self._started = False

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "LocalCluster":
        if self._started:
            return self
        self._started = True
        handles = [
            NodeHandle(
                node_id=f"n{i}",
                host="127.0.0.1",
                port=0 if self.mode == "thread" else free_port(),
                store_root=os.path.join(self.base_dir, f"n{i}", "results"),
                mode=self.mode,
            )
            for i in range(self.n)
        ]
        self.nodes = handles
        if self.mode == "thread":
            for handle in handles:
                self._start_thread_node(handle)
        else:
            for handle in handles:
                self._start_process_node(handles, handle)
            for handle in handles:
                handle.client().wait_ready(timeout=30)
        for handle in handles:
            self.membership.add(handle.node_id, handle.host, handle.port)
        self.membership.start_heartbeat()
        return self

    def _start_thread_node(self, handle: NodeHandle) -> None:
        store = PeerResultStore(
            root=handle.store_root,
            node_id=handle.node_id,
            # Live closure over the shared membership: ownership tracks
            # ring changes, and the peer store skips itself by node_id.
            owners_for=self.membership.owners,
            journal=EventJournal(self.journal_path, source=handle.node_id),
        )
        service = FlowService(
            store=store,
            workers=self.workers,
            node_id=handle.node_id,
            quarantine_dir=os.path.join(
                self.base_dir, handle.node_id, "quarantine"
            ),
            journal=EventJournal(self.journal_path, source=handle.node_id),
            **self.service_kwargs,
        )
        handle._cm = serve_in_thread(service=service)
        handle.server = handle._cm.__enter__()
        handle.port = handle.server.port

    def _start_process_node(
        self, handles: List[NodeHandle], handle: NodeHandle
    ) -> None:
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            handle.host,
            "--port",
            str(handle.port),
            "--workers",
            str(self.workers),
            "--node-id",
            handle.node_id,
            "--store-dir",
            handle.store_root,
            "--peers",
            peers_spec(handles),
            "--journal",
            self.journal_path,
        ]
        env = dict(os.environ)
        env.update(self.extra_env)
        log_path = os.path.join(self.base_dir, f"{handle.node_id}.log")
        os.makedirs(self.base_dir, exist_ok=True)
        with open(log_path, "ab") as log:
            handle.proc = subprocess.Popen(
                command, stdout=log, stderr=subprocess.STDOUT, env=env
            )

    def stop(self) -> None:
        if not self._started:
            return
        self.membership.stop_heartbeat()
        for handle in self.nodes:
            self.stop_node(handle.node_id, _graceful=True)
        self._started = False

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- node control ----------------------------------------------------
    def node(self, node_id: str) -> NodeHandle:
        for handle in self.nodes:
            if handle.node_id == node_id:
                return handle
        raise ReproError(f"unknown node {node_id!r}")

    def stop_node(self, node_id: str, _graceful: bool = True) -> None:
        """Take a node offline.  Thread mode: graceful server stop (the
        port refuses connections afterwards).  Process mode: SIGTERM."""
        handle = self.node(node_id)
        if handle.mode == "process":
            if handle.proc is not None and handle.proc.poll() is None:
                handle.proc.terminate() if _graceful else handle.proc.kill()
                try:
                    handle.proc.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    handle.proc.kill()
                    handle.proc.wait(timeout=15)
        elif handle._cm is not None:
            cm, handle._cm, handle.server = handle._cm, None, None
            cm.__exit__(None, None, None)

    def kill_node(self, node_id: str) -> None:
        """SIGKILL a process-mode node (the failover scenario: the daemon
        dies mid-compile with no goodbye).  Thread-mode nodes cannot be
        killed without killing the host process, so this degrades to a
        stop — the router sees the same connection-refused signal."""
        handle = self.node(node_id)
        if handle.mode == "process" and handle.proc is not None:
            if handle.proc.poll() is None:
                handle.proc.kill()
                handle.proc.wait(timeout=15)
        else:
            self.stop_node(node_id)

    # -- conveniences ----------------------------------------------------
    def wait_all_alive(self, timeout: float = 15.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(self.membership.alive()) == len(self.nodes):
                return
            time.sleep(0.05)
        raise ReproError(
            f"cluster not fully alive after {timeout}s: "
            f"{[i.record() for i in self.membership.members()]}"
        )

    def journal_events(self, grep: Optional[str] = None) -> List[Dict[str, Any]]:
        from repro.obs.journal import read_events

        return read_events(self.journal_path, grep=grep)
