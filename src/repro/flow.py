"""End-to-end flow: Design → schedule → netlist → placement → Fmax.

This is the reproduction's equivalent of "run Vivado HLS, then Vivado, then
read the timing report".  :class:`Flow.run` executes the staged pass
pipeline (see :mod:`repro.pipeline`):

1. pragma lowering (loop unrolling — where data broadcasts are born);
2. optional §4.2 synchronization pruning;
3. §4.1 calibration-table resolution;
4. scheduling — baseline HLS model, or §4.1 broadcast-aware;
5. RTL generation with the selected §3.3/§4.3 control style;
6. placement, movable-chain spreading, backend register replication,
   movable-register retiming;
7. static timing analysis → Fmax + critical-path attribution.

Each stage is content-addressed; when a stage's input digest matches an
artifact in the on-disk store (``$REPRO_CACHE_DIR/stages/``) the stage is
skipped and its recorded outputs and trace are replayed instead, so a
:meth:`Flow.compare` or a sweep re-runs only the stages a config change
actually invalidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro import hashing, obs
from repro.delay.cache import resolve_calibration
from repro.delay.calibrated import CalibrationTable
from repro.ir.program import Design
from repro.opt import BASELINE, OptimizationConfig
from repro.physical.placement import Placement
from repro.physical.replication import ReplicationConfig
from repro.physical.timing import TimingResult
from repro.pipeline import (
    MemoryStageStore,
    PassManager,
    StageArtifactStore,
    build_stages,
    stage_cache_enabled,
)
from repro.pipeline.incremental import (
    IncrementalState,
    MemoSpill,
    coerce_incremental,
    memo_spill_enabled_default,
)
from repro.rtl.generator import GenResult
from repro.rtl.resources import ResourceReport
from repro.scheduling.schedule import Schedule
from repro.sync.pruning import SyncPruningReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.transforms import TransformPlan

#: Default HLS clock target when a design does not specify one (MHz).
DEFAULT_CLOCK_MHZ = 300.0


@dataclass
class FlowResult:
    """Everything one flow run produced."""

    design: str
    config_label: str
    clock_target_mhz: float
    fmax_mhz: float
    period_ns: float
    timing: TimingResult
    resources: ResourceReport
    utilization: Dict[str, float]
    schedules: Dict[Tuple[str, str], Schedule]
    gen: GenResult
    schedule_edits: List[str] = field(default_factory=list)
    sync_report: Optional[SyncPruningReport] = None
    ii_by_loop: Dict[str, int] = field(default_factory=dict)
    #: Final placement (after replication/retiming); cells keyed by name.
    placement: Optional[Placement] = None
    #: Root span of this run when a tracer was active (see :mod:`repro.obs`).
    trace: Optional[obs.Span] = None
    #: Per-stage pipeline journal: stage name, input digest, whether it ran
    #: or was served from a stored artifact (see :mod:`repro.pipeline`).
    #: Deliberately excluded from :meth:`fingerprint` — cache hits must not
    #: change a result's identity.
    journal: Optional[List[Dict[str, object]]] = None

    @property
    def depth_by_loop(self) -> Dict[str, int]:
        return {f"{k}/{l}": s.depth for (k, l), s in self.schedules.items()}

    def fingerprint(self) -> Dict[str, object]:
        """The stable, JSON-able identity of this result.

        Everything deterministic a run produces — frequencies, critical
        path class, resource/utilization numbers, schedule depths, IIs,
        edit log, netlist size — and nothing that varies between otherwise
        identical runs (wall clock, traces, object identities, stage-cache
        hits).  Two runs of the same request must produce equal
        fingerprints; the service relies on this to prove a retried job
        reproduced the original, and the pipeline equivalence suite to
        prove cached and uncached runs are bit-identical.
        """
        return {
            "design": self.design,
            "config": self.config_label,
            "clock_target_mhz": self.clock_target_mhz,
            "fmax_mhz": self.fmax_mhz,
            "period_ns": self.period_ns,
            "critical_path_class": self.timing.path_class.value,
            "utilization": dict(sorted(self.utilization.items())),
            "depth_by_loop": self.depth_by_loop,
            "ii_by_loop": dict(self.ii_by_loop),
            "schedule_edits": list(self.schedule_edits),
            "cells": len(self.gen.netlist.cells),
            "nets": len(self.gen.netlist.nets),
        }

    def result_digest(self) -> str:
        """Canonical digest of :meth:`fingerprint` (see :mod:`repro.hashing`)."""
        return hashing.content_digest(
            {"schema": "repro-flow-result/1", **self.fingerprint()}
        )

    def summary(self) -> str:
        # Partial resource reports (e.g. a device with no DSP column) may
        # omit keys; treat missing kinds as unused rather than raising.
        util = self.utilization
        lut, ff = util.get("LUT", 0.0), util.get("FF", 0.0)
        bram, dsp = util.get("BRAM", 0.0), util.get("DSP", 0.0)
        return (
            f"{self.design} [{self.config_label}] "
            f"Fmax={self.fmax_mhz:.0f}MHz "
            f"(target {self.clock_target_mhz:.0f}MHz, "
            f"critical: {self.timing.path_class.value}) "
            f"LUT={lut:.0f}% FF={ff:.0f}% "
            f"BRAM={bram:.0f}% DSP={dsp:.0f}%"
        )


class Flow:
    """Reusable flow driver.

    Args:
        clock_mhz: Override the design's HLS clock target.
        seed: Placement seed (experiments keep it fixed for determinism).
            Also the seed of the §4.1 characterization when no table is
            injected, so a seeded flow is seeded end to end.
        calibration: Calibration table for §4.1; when omitted the flow
            resolves one through the persistent on-disk cache (see
            :mod:`repro.delay.cache`) — built once per (device, seed,
            smoothing), loaded everywhere else.  Resolution is additionally
            memoized per flow instance, so a compare/sweep resolves at most
            once per (device, seed, smoothing, path).
        calibration_path: Explicit calibration file (the CLI's
            ``--calibration PATH``); its stored provenance must match this
            flow's device/seed or the run fails loudly.
        replication: Backend fanout-optimization knobs (the paper runs with
            it enabled; the ablation bench disables it).
        retime: Run movable-register retiming after replication.
        stage_cache: Stage-artifact caching policy.  ``None`` (default)
            uses the shared on-disk store under ``$REPRO_CACHE_DIR/stages``
            unless ``$REPRO_STAGE_CACHE`` is ``off``; ``True``/``"on"``
            forces the default store; ``False``/``"off"`` disables all
            stage reuse; a store instance (e.g. a private
            :class:`~repro.pipeline.StageArtifactStore`) is used as-is.
        incremental: Incremental-recompilation policy (see
            :mod:`repro.pipeline.incremental`).  ``None`` (default) is on
            unless ``$REPRO_INCREMENTAL`` is ``off``; ``False``/``"off"``
            disables the per-loop scheduling/RTL memos, the placement
            trajectory reuse, and content-digest early cutoff.  The memos
            live on this instance and write-through to
            ``$REPRO_CACHE_DIR/memos`` (``$REPRO_MEMO_SPILL=off`` keeps
            them memory-only), so warm reuse survives process recycling;
            results are bit-identical either way.
    """

    #: Smoothing passes requested from the §4.1 characterization.
    SMOOTH_PASSES = 1

    def __init__(
        self,
        clock_mhz: Optional[float] = None,
        seed: int = 2020,
        calibration: Optional[CalibrationTable] = None,
        replication: Optional[ReplicationConfig] = None,
        retime: bool = True,
        calibration_path: Optional[str] = None,
        stage_cache: Union[None, bool, str, StageArtifactStore] = None,
        incremental: Union[None, bool, str] = None,
    ) -> None:
        self.clock_mhz = clock_mhz
        self.seed = seed
        self.calibration = calibration
        self.calibration_path = calibration_path
        self.replication = replication or ReplicationConfig()
        self.retime = retime
        self.stage_cache = stage_cache
        self.incremental = incremental
        self._incremental_state_obj: Optional[IncrementalState] = None
        #: (device, seed, smooth_passes, path) → (table, original source).
        self._calibration_memo: Dict[Tuple, Tuple[CalibrationTable, str]] = {}

    @property
    def incremental_enabled(self) -> bool:
        """Resolved incremental-recompilation policy (env-aware)."""
        return coerce_incremental(self.incremental)

    def _incremental_state(self) -> IncrementalState:
        """Lazy per-instance incremental memo workspace.

        The memos write-through to ``$REPRO_CACHE_DIR/memos`` (unless
        ``$REPRO_MEMO_SPILL=off``), so a fresh ``Flow`` — a recycled
        service worker, a new sweep process — warms up from whatever a
        previous owner already scheduled/emitted/placed.
        """
        if self._incremental_state_obj is None:
            spill = MemoSpill() if memo_spill_enabled_default() else None
            self._incremental_state_obj = IncrementalState(spill=spill)
        return self._incremental_state_obj

    # ------------------------------------------------------------------
    def _resolve_calibration(self, device: str) -> Tuple[CalibrationTable, str]:
        """Resolve (and instance-memoize) the calibration table.

        The memo stores the *original* resolution source ("built", "disk",
        "memory"), so observability reports the same provenance no matter
        how many runs this flow instance serves.
        """
        key = (device, self.seed, self.SMOOTH_PASSES, self.calibration_path)
        hit = self._calibration_memo.get(key)
        if hit is None:
            # Looked up as a module global so tests can monkeypatch
            # ``repro.flow.resolve_calibration``.
            hit = resolve_calibration(
                device,
                seed=self.seed,
                smooth_passes=self.SMOOTH_PASSES,
                path=self.calibration_path,
            )
            self._calibration_memo[key] = hit
        return hit

    def _stage_store(self) -> Optional[StageArtifactStore]:
        """Materialize the ``stage_cache`` policy into a store (or None)."""
        cache = self.stage_cache
        if cache is None:
            return StageArtifactStore() if stage_cache_enabled() else None
        if isinstance(cache, bool):
            return StageArtifactStore() if cache else None
        if isinstance(cache, str):
            if cache.strip().lower() in ("off", "0", "no", "false"):
                return None
            return StageArtifactStore()
        return cache

    # ------------------------------------------------------------------
    def run(
        self,
        design: Design,
        config: OptimizationConfig = BASELINE,
        _overlay: Optional[MemoryStageStore] = None,
        plan: Optional["TransformPlan"] = None,
        clock_mhz: Optional[float] = None,
    ) -> FlowResult:
        """Run the full flow on ``design`` under ``config``.

        The run is a staged pass pipeline (see :mod:`repro.pipeline`):
        ``pragmas``, ``sync-pruning``, ``calibration``, ``scheduling``,
        ``ii-analysis``, ``rtl-gen``, ``placement``, ``spreading``,
        ``replication``, ``retiming``, ``timing``.  When a
        :class:`repro.obs.Tracer` is activated (``obs.activate``), the run
        reports one ``flow`` root span with a child span per stage, plus
        counters such as ``scheduling.registers_inserted``,
        ``physical.nets_replicated``, and ``pipeline.stages_skipped`` /
        ``pipeline.stages_run``.  Stages served from the artifact store
        replay their recorded trace (marked ``cached=True``).  The root
        span is attached to :attr:`FlowResult.trace`; the per-stage journal
        to :attr:`FlowResult.journal`.

        ``_overlay`` is an in-process stage store shared by
        :meth:`compare` and the sweep drivers so sibling runs reuse their
        common front-end even when the on-disk store is cold.

        ``plan`` is an optional :class:`~repro.ir.transforms.TransformPlan`
        applied by the ``pragmas`` stage before lowering; its digest enters
        that stage's params, so planned and plan-free runs of one design
        never share stage artifacts.  ``clock_mhz`` overrides both the
        flow-level and the design-level clock target for this run only
        (the explorer sweeps clocks without rebuilding flows).
        """
        clock_mhz = float(
            clock_mhz
            or self.clock_mhz
            or design.meta.get("clock_mhz", DEFAULT_CLOCK_MHZ)
        )
        ctx: Dict[str, object] = {"design": design, "clock_ns": 1000.0 / clock_mhz}
        if plan is not None and len(plan):
            ctx["plan"] = plan
        if _overlay is None and self.incremental_enabled:
            # The persistent per-flow overlay: re-run sweep points whose
            # stage inputs are byte-identical skip those stages outright.
            _overlay = self._incremental_state().overlay
        manager = PassManager(
            build_stages(), store=self._stage_store(), overlay=_overlay
        )

        tracer = obs.current_tracer()
        with tracer.span(
            obs.FLOW_SPAN,
            design=design.name,
            config=config.label,
            clock_target_mhz=clock_mhz,
            seed=self.seed,
        ) as root:
            ctx, journal = manager.execute(self, config, ctx)
            timing: TimingResult = ctx["timing"]
            gen: GenResult = ctx["gen"]
            resources = ResourceReport.of_netlist(gen.netlist)
            root.set("fmax_mhz", round(timing.fmax_mhz, 3))
            root.set("critical_path_class", timing.path_class.value)
            tracer.set_gauge("flow.fmax_mhz", round(timing.fmax_mhz, 3))
        return FlowResult(
            design=design.name,
            config_label=config.label,
            clock_target_mhz=clock_mhz,
            fmax_mhz=timing.fmax_mhz,
            period_ns=timing.period_ns,
            timing=timing,
            resources=resources,
            utilization=resources.utilization(ctx["lowered"].device),
            schedules=ctx["schedules"],
            gen=gen,
            schedule_edits=ctx["schedule_edits"],
            sync_report=ctx["sync_report"],
            ii_by_loop=ctx["ii_by_loop"],
            placement=ctx["placement"],
            trace=root if isinstance(root, obs.Span) else None,
            journal=journal,
        )

    def compare(
        self,
        design: Design,
        baseline: OptimizationConfig = BASELINE,
        optimized: Optional[OptimizationConfig] = None,
    ) -> Tuple[FlowResult, FlowResult]:
        """Run a design twice (Table 1's Orig vs Opt columns).

        Both runs share an in-process stage overlay, so the front-end
        stages whose digests don't depend on the config delta (pragma
        lowering in particular — the design is verified and lowered exactly
        once) are executed by the first run and replayed by the second,
        even when the on-disk store starts cold.  Disabled together with
        the stage cache (``stage_cache="off"``).
        """
        from repro.opt import FULL

        overlay = MemoryStageStore() if self._stage_store() is not None else None
        orig = self.run(design, baseline, _overlay=overlay)
        opt = self.run(
            design, optimized if optimized is not None else FULL, _overlay=overlay
        )
        return orig, opt
