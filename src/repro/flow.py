"""End-to-end flow: Design → schedule → netlist → placement → Fmax.

This is the reproduction's equivalent of "run Vivado HLS, then Vivado, then
read the timing report".  :class:`Flow.run` executes:

1. pragma lowering (loop unrolling — where data broadcasts are born);
2. optional §4.2 synchronization pruning;
3. scheduling — baseline HLS model, or §4.1 broadcast-aware;
4. RTL generation with the selected §3.3/§4.3 control style;
5. placement, movable-chain spreading, backend register replication,
   movable-register retiming;
6. static timing analysis → Fmax + critical-path attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.delay.cache import resolve_calibration
from repro.delay.calibrated import CalibratedDelayModel, CalibrationTable
from repro.delay.hls_model import HlsDelayModel
from repro.ir.passes import apply_pragmas
from repro.ir.program import Design
from repro.opt import BASELINE, OptimizationConfig
from repro.physical.device import get_device
from repro.physical.fabric import Fabric
from repro.physical.placement import Placement, Placer
from repro.physical.replication import ReplicationConfig, replicate_high_fanout
from repro.physical.retiming import retime_movable
from repro.physical.spreading import spread_movable_chains
from repro.physical.timing import TimingAnalyzer, TimingResult
from repro.rtl.generator import GenOptions, GenResult, generate_netlist
from repro.rtl.resources import ResourceReport
from repro.scheduling.broadcast_aware import broadcast_aware_schedule
from repro.scheduling.chaining import ChainingScheduler
from repro.scheduling.ii import analyze_ii
from repro.scheduling.schedule import Schedule
from repro.sync.pruning import SyncPruningReport, prune_synchronization

#: Default HLS clock target when a design does not specify one (MHz).
DEFAULT_CLOCK_MHZ = 300.0


@dataclass
class FlowResult:
    """Everything one flow run produced."""

    design: str
    config_label: str
    clock_target_mhz: float
    fmax_mhz: float
    period_ns: float
    timing: TimingResult
    resources: ResourceReport
    utilization: Dict[str, float]
    schedules: Dict[Tuple[str, str], Schedule]
    gen: GenResult
    schedule_edits: List[str] = field(default_factory=list)
    sync_report: Optional[SyncPruningReport] = None
    ii_by_loop: Dict[str, int] = field(default_factory=dict)
    #: Final placement (after replication/retiming); cells keyed by name.
    placement: Optional[Placement] = None
    #: Root span of this run when a tracer was active (see :mod:`repro.obs`).
    trace: Optional[obs.Span] = None

    @property
    def depth_by_loop(self) -> Dict[str, int]:
        return {f"{k}/{l}": s.depth for (k, l), s in self.schedules.items()}

    def fingerprint(self) -> Dict[str, object]:
        """The stable, JSON-able identity of this result.

        Everything deterministic a run produces — frequencies, critical
        path class, resource/utilization numbers, schedule depths, IIs,
        edit log, netlist size — and nothing that varies between otherwise
        identical runs (wall clock, traces, object identities).  Two runs
        of the same request must produce equal fingerprints; the service
        relies on this to prove a retried job reproduced the original.
        """
        return {
            "design": self.design,
            "config": self.config_label,
            "clock_target_mhz": self.clock_target_mhz,
            "fmax_mhz": self.fmax_mhz,
            "period_ns": self.period_ns,
            "critical_path_class": self.timing.path_class.value,
            "utilization": dict(sorted(self.utilization.items())),
            "depth_by_loop": self.depth_by_loop,
            "ii_by_loop": dict(self.ii_by_loop),
            "schedule_edits": list(self.schedule_edits),
            "cells": len(self.gen.netlist.cells),
            "nets": len(self.gen.netlist.nets),
        }

    def result_digest(self) -> str:
        """Canonical digest of :meth:`fingerprint` (see :mod:`repro.hashing`)."""
        from repro import hashing

        return hashing.content_digest(
            {"schema": "repro-flow-result/1", **self.fingerprint()}
        )

    def summary(self) -> str:
        # Partial resource reports (e.g. a device with no DSP column) may
        # omit keys; treat missing kinds as unused rather than raising.
        util = self.utilization
        lut, ff = util.get("LUT", 0.0), util.get("FF", 0.0)
        bram, dsp = util.get("BRAM", 0.0), util.get("DSP", 0.0)
        return (
            f"{self.design} [{self.config_label}] "
            f"Fmax={self.fmax_mhz:.0f}MHz "
            f"(target {self.clock_target_mhz:.0f}MHz, "
            f"critical: {self.timing.path_class.value}) "
            f"LUT={lut:.0f}% FF={ff:.0f}% "
            f"BRAM={bram:.0f}% DSP={dsp:.0f}%"
        )


class Flow:
    """Reusable flow driver.

    Args:
        clock_mhz: Override the design's HLS clock target.
        seed: Placement seed (experiments keep it fixed for determinism).
            Also the seed of the §4.1 characterization when no table is
            injected, so a seeded flow is seeded end to end.
        calibration: Calibration table for §4.1; when omitted the flow
            resolves one through the persistent on-disk cache (see
            :mod:`repro.delay.cache`) — built once per (device, seed,
            smoothing), loaded everywhere else.
        calibration_path: Explicit calibration file (the CLI's
            ``--calibration PATH``); its stored provenance must match this
            flow's device/seed or the run fails loudly.
        replication: Backend fanout-optimization knobs (the paper runs with
            it enabled; the ablation bench disables it).
        retime: Run movable-register retiming after replication.
    """

    #: Smoothing passes requested from the §4.1 characterization.
    SMOOTH_PASSES = 1

    def __init__(
        self,
        clock_mhz: Optional[float] = None,
        seed: int = 2020,
        calibration: Optional[CalibrationTable] = None,
        replication: Optional[ReplicationConfig] = None,
        retime: bool = True,
        calibration_path: Optional[str] = None,
    ) -> None:
        self.clock_mhz = clock_mhz
        self.seed = seed
        self.calibration = calibration
        self.calibration_path = calibration_path
        self.replication = replication or ReplicationConfig()
        self.retime = retime

    # ------------------------------------------------------------------
    def run(self, design: Design, config: OptimizationConfig = BASELINE) -> FlowResult:
        """Run the full flow on ``design`` under ``config``.

        When a :class:`repro.obs.Tracer` is activated (``obs.activate``),
        the run reports into it: one ``flow`` root span with a child span
        per stage (``pragmas``, ``sync-pruning``, ``scheduling``,
        ``ii-analysis``, ``rtl-gen``, ``placement``, ``spreading``,
        ``replication``, ``retiming``, ``timing``), plus counters such as
        ``scheduling.registers_inserted`` and ``physical.nets_replicated``.
        The root span is attached to :attr:`FlowResult.trace`.
        """
        design.verify()
        clock_mhz = float(
            self.clock_mhz or design.meta.get("clock_mhz", DEFAULT_CLOCK_MHZ)
        )
        clock_ns = 1000.0 / clock_mhz

        tracer = obs.current_tracer()
        with tracer.span(
            obs.FLOW_SPAN,
            design=design.name,
            config=config.label,
            clock_target_mhz=clock_mhz,
            seed=self.seed,
        ) as root:
            with tracer.span("pragmas") as sp:
                lowered = apply_pragmas(design)
                sp.set("kernels", len(lowered.kernels))
                sp.set("loops", sum(1 for _ in lowered.all_loops()))
                sp.set("ops", sum(len(l.body.ops) for _, l in lowered.all_loops()))

            # The span is opened even when pruning is disabled so every
            # trace has the same stage skeleton (attr `enabled` tells which).
            with tracer.span("sync-pruning", enabled=bool(config.sync_pruning)) as sp:
                sync_report = None
                if config.sync_pruning:
                    lowered, sync_report = prune_synchronization(lowered)
                    sp.set("split_loops", len(sync_report.split_loops))
                    sp.set("flows_created", sync_report.flows_created)
                    sp.set("call_syncs_pruned", len(sync_report.call_syncs_pruned))

            with tracer.span(
                "scheduling", broadcast_aware=bool(config.broadcast_aware)
            ) as sp:
                schedules: Dict[Tuple[str, str], Schedule] = {}
                edits: List[str] = []
                cal_model: Optional[CalibratedDelayModel] = None
                if config.broadcast_aware:
                    # The characterization itself runs placements; give it
                    # its own span so its cost isn't blamed on scheduling.
                    with tracer.span("calibration") as cal_span:
                        if self.calibration is not None:
                            table, source = self.calibration, "injected"
                        else:
                            table, source = resolve_calibration(
                                lowered.device,
                                seed=self.seed,
                                smooth_passes=self.SMOOTH_PASSES,
                                path=self.calibration_path,
                            )
                        cal_span.set("source", source)
                        cal_span.set("cached", source != "built")
                    cal_model = CalibratedDelayModel(table)
                hls_model = HlsDelayModel()
                for kernel, loop in lowered.all_loops():
                    if cal_model is not None:
                        result = broadcast_aware_schedule(
                            loop.body, clock_ns, cal_model
                        )
                        schedules[(kernel.name, loop.name)] = result.schedule
                        edits.extend(
                            f"{kernel.name}/{loop.name}: {edit}"
                            for edit in result.edits
                        )
                    else:
                        schedules[(kernel.name, loop.name)] = ChainingScheduler(
                            hls_model, clock_ns
                        ).schedule(loop.body)
                sp.set("loops", len(schedules))
                sp.set("edits", len(edits))
                sp.set("max_depth", max((s.depth for s in schedules.values()), default=0))

            with tracer.span("ii-analysis") as sp:
                ii_by_loop = {
                    f"{kernel.name}/{loop.name}": analyze_ii(
                        loop, schedules[(kernel.name, loop.name)]
                    ).ii
                    for kernel, loop in lowered.all_loops()
                }
                sp.set("worst_ii", max(ii_by_loop.values(), default=1))

            with tracer.span("rtl-gen", control=config.control.value) as sp:
                gen = generate_netlist(
                    lowered, schedules, GenOptions(control=config.control)
                )
                sp.set("cells", len(gen.netlist.cells))
                sp.set("nets", len(gen.netlist.nets))

            with tracer.span("placement", cells=len(gen.netlist.cells)):
                fabric = Fabric(get_device(lowered.device))
                placement = Placer(fabric, seed=self.seed).place(
                    gen.netlist, anchor=gen.anchor
                )

            with tracer.span("spreading") as sp:
                moved = spread_movable_chains(gen.netlist, placement)
                sp.set("registers_moved", moved)

            with tracer.span("replication") as sp:
                replicas = replicate_high_fanout(
                    gen.netlist, placement, self.replication
                )
                sp.set("replicas_created", replicas)

            netlist = gen.netlist
            with tracer.span("retiming", enabled=self.retime) as sp:
                if self.retime:
                    netlist, placement, moves = retime_movable(netlist, placement)
                    sp.set("moves", moves)

            with tracer.span("timing") as sp:
                timing = TimingAnalyzer(netlist, placement).analyze()
                sp.set("fmax_mhz", round(timing.fmax_mhz, 3))
                sp.set("period_ns", round(timing.period_ns, 4))
                sp.set("critical_path_class", timing.path_class.value)

            # The retimed netlist is the final article; expose it in gen so
            # downstream analysis (census, verilog) sees what was timed.
            gen.netlist = netlist
            resources = ResourceReport.of_netlist(netlist)
            root.set("fmax_mhz", round(timing.fmax_mhz, 3))
            root.set("critical_path_class", timing.path_class.value)
            tracer.set_gauge("flow.fmax_mhz", round(timing.fmax_mhz, 3))
        return FlowResult(
            design=design.name,
            config_label=config.label,
            clock_target_mhz=clock_mhz,
            fmax_mhz=timing.fmax_mhz,
            period_ns=timing.period_ns,
            timing=timing,
            resources=resources,
            utilization=resources.utilization(lowered.device),
            schedules=schedules,
            gen=gen,
            schedule_edits=edits,
            sync_report=sync_report,
            ii_by_loop=ii_by_loop,
            placement=placement,
            trace=root if isinstance(root, obs.Span) else None,
        )

    def compare(
        self,
        design: Design,
        baseline: OptimizationConfig = BASELINE,
        optimized: Optional[OptimizationConfig] = None,
    ) -> Tuple[FlowResult, FlowResult]:
        """Run a design twice (Table 1's Orig vs Opt columns)."""
        from repro.opt import FULL

        orig = self.run(design, baseline)
        opt = self.run(design, optimized if optimized is not None else FULL)
        return orig, opt
