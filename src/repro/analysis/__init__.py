"""Broadcast detection, classification and critical-path diagnosis (§3)."""

from repro.analysis.broadcast import (
    BroadcastRecord,
    BroadcastReport,
    classify_design,
    classify_netlist,
)
from repro.analysis.compare import OptimizationDelta, compare_runs, format_delta
from repro.analysis.diagnose import diagnose, format_critical_path
from repro.analysis.netstats import NetlistCensus, census, format_census

__all__ = [
    "BroadcastRecord",
    "BroadcastReport",
    "classify_design",
    "classify_netlist",
    "diagnose",
    "format_critical_path",
    "census",
    "format_census",
    "NetlistCensus",
    "compare_runs",
    "format_delta",
    "OptimizationDelta",
]
