"""Broadcast structure detection and classification.

Implements the paper's §3 taxonomy as executable analysis:

* **data broadcasts** — high-fanout SSA values in loop bodies (loop
  unrolling, Fig. 1) and stores/loads over multi-bank buffers (Fig. 3);
* **control/sync broadcasts** — done-reduce/start-broadcast over parallel
  instances and per-loop status aggregation over fused flows (Fig. 5/6);
* **control/pipeline broadcasts** — stall/enable nets (Fig. 7/8).

Two entry points: :func:`classify_design` works at the IR level (before any
RTL exists — what a user-facing linter would run), :func:`classify_netlist`
works on generated netlists (what the timing engine's attribution uses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.ir.ops import MEM_OPS, Opcode
from repro.ir.passes import apply_pragmas
from repro.ir.program import Design
from repro.rtl.netlist import Netlist, NetKind
from repro.sync.flowgraph import dfg_components

#: Fanout at or above which a value/net counts as a broadcast.
DATA_THRESHOLD = 8
CONTROL_THRESHOLD = 8


@dataclass(frozen=True)
class BroadcastRecord:
    """One detected broadcast structure."""

    kind: str  # "data" | "memory" | "sync" | "pipeline-control"
    where: str  # kernel/loop or net name
    subject: str  # value, buffer or signal name
    fanout: int
    note: str = ""

    def __str__(self) -> str:
        return f"[{self.kind}] {self.where}: {self.subject} fanout={self.fanout} {self.note}"


@dataclass
class BroadcastReport:
    """All broadcasts found, ordered by descending fanout."""

    records: List[BroadcastRecord] = field(default_factory=list)

    def of_kind(self, kind: str) -> List[BroadcastRecord]:
        return [r for r in self.records if r.kind == kind]

    @property
    def kinds(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record.kind not in seen:
                seen.append(record.kind)
        return seen

    def sorted(self) -> List[BroadcastRecord]:
        return sorted(self.records, key=lambda r: (-r.fanout, r.kind, r.subject))

    def summary(self) -> str:
        lines = [f"{len(self.records)} broadcast structure(s):"]
        lines.extend(f"  {record}" for record in self.sorted()[:20])
        return "\n".join(lines)


def classify_design(design: Design) -> BroadcastReport:
    """IR-level broadcast scan of a design (pragmas are lowered first)."""
    report = BroadcastReport()
    lowered = apply_pragmas(design)
    for kernel, loop in lowered.all_loops():
        where = f"{kernel.name}/{loop.name}"
        for value, fanout in loop.body.broadcast_sources(threshold=DATA_THRESHOLD):
            note = "loop-invariant" if value.loop_invariant else ""
            report.records.append(
                BroadcastRecord("data", where, value.name, fanout, note)
            )
        for op in loop.body.mem_ops():
            buffer = op.attrs["buffer"]
            banks = buffer.bram36_units()
            if banks >= DATA_THRESHOLD:
                report.records.append(
                    BroadcastRecord(
                        "memory",
                        where,
                        f"{buffer.name}[{op.opcode.value}]",
                        banks,
                        f"{buffer.total_bits} bits over {banks} BRAM36",
                    )
                )
        calls = [op for op in loop.body.ops if op.opcode is Opcode.CALL]
        if len(calls) >= 2:
            report.records.append(
                BroadcastRecord(
                    "sync",
                    where,
                    "done-reduce/start-broadcast",
                    len(calls),
                    f"{len(calls)} parallel instances",
                )
            )
        components = dfg_components(loop.body)
        if len(components) >= 2:
            report.records.append(
                BroadcastRecord(
                    "sync",
                    where,
                    "fused-independent-flows",
                    len(components),
                    f"{len(components)} isolated sub-graphs in one loop",
                )
            )
        if loop.pipeline:
            fifo_count = sum(len(side) for side in loop.fifo_endpoints())
            seq_estimate = sum(1 for _ in loop.body.ops)
            if fifo_count and seq_estimate >= CONTROL_THRESHOLD:
                report.records.append(
                    BroadcastRecord(
                        "pipeline-control",
                        where,
                        "stall/enable",
                        seq_estimate,
                        f"{fifo_count} flow-controlled interface(s)",
                    )
                )
    return report


def classify_netlist(netlist: Netlist, threshold: int = CONTROL_THRESHOLD) -> BroadcastReport:
    """Netlist-level broadcast scan: high-fanout nets by net kind."""
    kind_map = {
        NetKind.DATA: "data",
        NetKind.MEM: "memory",
        NetKind.SYNC: "sync",
        NetKind.ENABLE: "pipeline-control",
        NetKind.STATUS: "pipeline-control",
    }
    report = BroadcastReport()
    for net in netlist.high_fanout_nets(threshold=threshold):
        kind = kind_map.get(net.kind)
        if kind is None:
            continue
        report.records.append(
            BroadcastRecord(
                kind,
                netlist.name,
                net.name,
                net.fanout,
                f"driver={net.driver.name}",
            )
        )
    return report
