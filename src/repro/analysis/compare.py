"""Before/after optimization comparison reports.

Bundles everything a user asks after running the paper's optimizations:
what did I gain, what did it cost, which broadcasts went away, what did
the optimizer actually edit.  This is the report surface the paper wishes
vendors shipped ("current HLS tools do not provide helpful feedback").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.netstats import NetlistCensus, census
from repro.flow import FlowResult


@dataclass
class OptimizationDelta:
    """Structured diff between a baseline and an optimized flow run."""

    design: str
    fmax_before_mhz: float
    fmax_after_mhz: float
    critical_before: str
    critical_after: str
    utilization_delta: Dict[str, float]
    worst_fanout_before: Dict[str, int]
    worst_fanout_after: Dict[str, int]
    depth_delta: Dict[str, int]
    edits: List[str]

    @property
    def gain_pct(self) -> float:
        return (self.fmax_after_mhz / self.fmax_before_mhz - 1) * 100


def compare_runs(before: FlowResult, after: FlowResult) -> OptimizationDelta:
    """Diff two flow results of the same design."""
    census_before: NetlistCensus = census(before.gen.netlist)
    census_after: NetlistCensus = census(after.gen.netlist)
    depth_delta = {
        loop: after.depth_by_loop.get(loop, 0) - depth
        for loop, depth in before.depth_by_loop.items()
    }
    return OptimizationDelta(
        design=before.design,
        fmax_before_mhz=before.fmax_mhz,
        fmax_after_mhz=after.fmax_mhz,
        critical_before=before.timing.path_class.value,
        critical_after=after.timing.path_class.value,
        utilization_delta={
            key: after.utilization[key] - before.utilization[key]
            for key in before.utilization
        },
        worst_fanout_before={
            key: stats.max_fanout for key, stats in census_before.classes.items()
        },
        worst_fanout_after={
            key: stats.max_fanout for key, stats in census_after.classes.items()
        },
        depth_delta=depth_delta,
        edits=list(after.schedule_edits),
    )


def format_delta(delta: OptimizationDelta) -> str:
    """Render the diff as the report a user would read."""
    lines = [
        f"optimization report for {delta.design!r}",
        f"  Fmax: {delta.fmax_before_mhz:.0f} -> {delta.fmax_after_mhz:.0f} MHz"
        f" ({delta.gain_pct:+.0f}%)",
        f"  critical path class: {delta.critical_before} -> {delta.critical_after}",
        "  worst broadcast fanout per class:",
    ]
    keys = sorted(set(delta.worst_fanout_before) | set(delta.worst_fanout_after))
    for key in keys:
        before = delta.worst_fanout_before.get(key, 0)
        after = delta.worst_fanout_after.get(key, 0)
        lines.append(f"    {key:>8s}: {before:6d} -> {after:6d}")
    lines.append("  utilization deltas (points):")
    for key, value in delta.utilization_delta.items():
        lines.append(f"    {key:>8s}: {value:+.2f}")
    grew = {k: v for k, v in delta.depth_delta.items() if v}
    lines.append(
        "  pipeline depth: unchanged"
        if not grew
        else "  pipeline depth growth: "
        + ", ".join(f"{k} {v:+d}" for k, v in grew.items())
    )
    if delta.edits:
        lines.append("  optimizer edits:")
        lines.extend(f"    - {edit}" for edit in delta.edits[:10])
        if len(delta.edits) > 10:
            lines.append(f"    ... and {len(delta.edits) - 10} more")
    return "\n".join(lines)
