"""Netlist statistics: the §3 broadcast census, quantified.

Computes fanout histograms and estimated wirelength per net class for a
placed design, so the "implicit broadcast" footprint of each benchmark can
be tabulated — a quantitative companion to the paper's Table 1 'Broadcast
type' column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.physical.placement import Placement
from repro.rtl.netlist import Netlist, NetKind

#: Histogram bucket upper bounds (inclusive); last bucket is open-ended.
FANOUT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 1024)


@dataclass
class ClassStats:
    """Aggregate statistics for one net class."""

    nets: int = 0
    sinks: int = 0
    max_fanout: int = 0
    max_fanout_net: str = ""
    total_wirelength: float = 0.0
    histogram: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_fanout(self) -> float:
        return self.sinks / self.nets if self.nets else 0.0


@dataclass
class NetlistCensus:
    """Per-class stats for a whole netlist."""

    design: str
    classes: Dict[str, ClassStats] = field(default_factory=dict)

    def broadcastiest(self) -> Tuple[str, ClassStats]:
        """The class with the largest single fanout."""
        key = max(self.classes, key=lambda k: self.classes[k].max_fanout)
        return key, self.classes[key]


def _bucket(fanout: int) -> str:
    for bound in FANOUT_BUCKETS:
        if fanout <= bound:
            return f"<={bound}"
    return f">{FANOUT_BUCKETS[-1]}"


def census(netlist: Netlist, placement: Optional[Placement] = None) -> NetlistCensus:
    """Tabulate fanout and (optionally placed) wirelength per net class."""
    result = NetlistCensus(design=netlist.name)
    for net in netlist.nets.values():
        if net.kind is NetKind.CLOCKLESS:
            continue
        stats = result.classes.setdefault(net.kind.value, ClassStats())
        stats.nets += 1
        stats.sinks += net.fanout
        if net.fanout > stats.max_fanout:
            stats.max_fanout = net.fanout
            stats.max_fanout_net = net.name
        stats.histogram[_bucket(net.fanout)] = (
            stats.histogram.get(_bucket(net.fanout), 0) + 1
        )
        if placement is not None:
            for cell, _pin in net.sinks:
                stats.total_wirelength += placement.distance(net.driver, cell)
    return result


def format_census(result: NetlistCensus) -> str:
    """Render the census as a text table."""
    lines = [
        f"broadcast census for {result.design!r}:",
        f"{'class':>8s} {'nets':>7s} {'sinks':>8s} {'mean':>7s} {'max':>6s}"
        f" {'wirelength':>11s}  worst net",
    ]
    for key in sorted(result.classes, key=lambda k: -result.classes[k].max_fanout):
        stats = result.classes[key]
        lines.append(
            f"{key:>8s} {stats.nets:7d} {stats.sinks:8d} {stats.mean_fanout:7.1f}"
            f" {stats.max_fanout:6d} {stats.total_wirelength:11.0f}"
            f"  {stats.max_fanout_net}"
        )
    return "\n".join(lines)
