"""Critical-path explanation and optimization suggestions.

The paper motivates this tooling gap directly: "current HLS tools do not
provide helpful feedback or guidelines on how to improve the clock
frequency".  :func:`diagnose` turns a :class:`~repro.physical.timing.
TimingResult` into exactly that feedback: which broadcast class limits the
design and which §4 technique addresses it.
"""

from __future__ import annotations

from typing import List

from repro.physical.timing import TimingResult
from repro.rtl.netlist import NetKind

_ADVICE = {
    NetKind.DATA: (
        "data broadcast on the critical path — apply broadcast-aware "
        "scheduling (§4.1): calibrate delays vs broadcast factor and insert "
        "register stages (OptimizationConfig(broadcast_aware=True))"
    ),
    NetKind.MEM: (
        "multi-bank memory distribution on the critical path — add "
        "pipelining between the data port and the BRAM banks (§4.1 memory "
        "rule; OptimizationConfig(broadcast_aware=True))"
    ),
    NetKind.ENABLE: (
        "pipeline stall/enable broadcast on the critical path — switch to "
        "skid-buffer-based control (§4.3; ControlStyle.SKID_MINAREA)"
    ),
    NetKind.SYNC: (
        "synchronization broadcast on the critical path — prune redundant "
        "synchronization (§4.2; OptimizationConfig(sync_pruning=True))"
    ),
    NetKind.STATUS: (
        "FIFO status aggregation on the critical path — reduce the fused "
        "flow-control domain (§4.2 flow splitting) or adopt skid-buffer "
        "control (§4.3)"
    ),
}


def format_critical_path(timing: TimingResult) -> str:
    """Render the critical path like a timing-report path table."""
    lines = [
        f"Critical path: {timing.raw_period_ns:.2f} ns "
        f"({timing.fmax_mhz:.0f} MHz), class={timing.path_class.value}",
        f"  startpoint: {timing.startpoint}",
    ]
    for hop in timing.critical_path:
        lines.append(
            f"    +{hop.incr_ns:5.2f} ns  -> {hop.cell}  (via {hop.net})"
            f"  arrival {hop.arrival_ns:5.2f}"
        )
    lines.append(f"  endpoint: {timing.endpoint}")
    return "\n".join(lines)


def diagnose(timing: TimingResult) -> List[str]:
    """Actionable findings for a timing result, worst class first."""
    findings: List[str] = []
    ranked = sorted(
        timing.class_periods.items(), key=lambda item: -item[1]
    )
    for kind_value, worst in ranked:
        try:
            kind = NetKind(kind_value)
        except ValueError:  # pragma: no cover - defensive
            continue
        advice = _ADVICE.get(kind)
        if advice is None:
            continue
        findings.append(f"{worst:.2f} ns worst path via {kind_value}: {advice}")
    if not findings:
        findings.append("no broadcast-classifiable paths; design is wire-limited")
    return findings
