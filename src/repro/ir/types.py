"""Scalar data types for the HLS IR.

HLS front-ends track arbitrary-precision integer widths (``ap_int<W>``) and
IEEE float widths; the delay and resource models downstream are
width-dependent, so the IR carries explicit widths everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IRError

_VALID_KINDS = ("int", "uint", "float")
_VALID_FLOAT_WIDTHS = (16, 32, 64)

#: Widest supported scalar, matching ap_int's practical HLS limit.
MAX_WIDTH = 4096


@dataclass(frozen=True, order=True)
class DataType:
    """A scalar type: signed/unsigned integer or IEEE float of a given width.

    Instances are immutable and hashable so they can key delay tables.

    >>> DataType("int", 32).bits
    32
    >>> DataType.parse("f32").is_float
    True
    """

    kind: str
    width: int

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise IRError(f"unknown type kind {self.kind!r}; expected one of {_VALID_KINDS}")
        if not isinstance(self.width, int) or self.width <= 0 or self.width > MAX_WIDTH:
            raise IRError(f"invalid type width {self.width!r}; expected 1..{MAX_WIDTH}")
        if self.kind == "float" and self.width not in _VALID_FLOAT_WIDTHS:
            raise IRError(
                f"invalid float width {self.width}; expected one of {_VALID_FLOAT_WIDTHS}"
            )

    @property
    def bits(self) -> int:
        """Storage width in bits (identical to :attr:`width` for scalars)."""
        return self.width

    @property
    def is_float(self) -> bool:
        return self.kind == "float"

    @property
    def is_int(self) -> bool:
        """True for both signed and unsigned integers."""
        return self.kind in ("int", "uint")

    @property
    def is_signed(self) -> bool:
        return self.kind in ("int", "float")

    @property
    def is_bool(self) -> bool:
        """True for 1-bit integers, the type of comparison results."""
        return self.is_int and self.width == 1

    def with_width(self, width: int) -> "DataType":
        """Return the same kind at a different width."""
        return DataType(self.kind, width)

    @staticmethod
    def parse(spec: str) -> "DataType":
        """Parse a short type spec: ``i32``, ``u8``, ``f32``.

        >>> DataType.parse("u16")
        DataType(kind='uint', width=16)
        """
        if not spec or spec[0] not in "iuf":
            raise IRError(f"cannot parse type spec {spec!r}")
        kind = {"i": "int", "u": "uint", "f": "float"}[spec[0]]
        try:
            width = int(spec[1:])
        except ValueError as exc:
            raise IRError(f"cannot parse type spec {spec!r}") from exc
        return DataType(kind, width)

    def __str__(self) -> str:
        return f"{self.kind[0] if self.kind != 'uint' else 'u'}{self.width}"


# Common shorthands, used pervasively by designs and tests.
i1 = DataType("int", 1)
i8 = DataType("int", 8)
i16 = DataType("int", 16)
i32 = DataType("int", 32)
i64 = DataType("int", 64)
u8 = DataType("uint", 8)
u16 = DataType("uint", 16)
u32 = DataType("uint", 32)
u64 = DataType("uint", 64)
f16 = DataType("float", 16)
f32 = DataType("float", 32)
f64 = DataType("float", 64)


def common_type(a: DataType, b: DataType) -> DataType:
    """The result type of a binary arithmetic op on ``a`` and ``b``.

    Mirrors HLS C semantics loosely: float wins over int, wider width wins,
    signed wins over unsigned at equal width.
    """
    if a.is_float or b.is_float:
        width = max(x.width for x in (a, b) if x.is_float)
        return DataType("float", width)
    width = max(a.width, b.width)
    kind = "int" if "int" in (a.kind, b.kind) else "uint"
    return DataType(kind, width)
