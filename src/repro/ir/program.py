"""Program-level containers: buffers, FIFOs, loops, kernels, designs.

A :class:`Design` is what the end-to-end flow consumes.  It mirrors the
shape of the paper's benchmarks:

* a list of :class:`Kernel` functions, each a sequence of :class:`Loop` s;
* when ``dataflow=True`` the kernels run concurrently, connected by
  :class:`Fifo` channels (the ``#pragma HLS dataflow`` designs of Fig. 5a);
* shared :class:`Buffer` arrays that the RTL generator maps onto BRAM banks
  (the large-array data broadcasts of Fig. 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import VerificationError
from repro.ir.dfg import DFG
from repro.ir.ops import Opcode
from repro.ir.types import DataType

#: Capacity of one BRAM36 block in bits (Xilinx 36Kb block RAM).
BRAM36_BITS = 36 * 1024
#: Maximum data width of one BRAM36 in simple dual-port mode.
BRAM36_MAX_WIDTH = 72
#: Maximum depth of one BRAM36 at max width.
BRAM36_MAX_DEPTH = 512


@dataclass
class Buffer:
    """An on-chip array mapped to one or more BRAM banks.

    Attributes:
        name: Array name in the source.
        elem_type: Element scalar type.
        depth: Number of elements.
        partition: Cyclic partition factor requested by pragma (each
            partition becomes an independently addressed bank group).
    """

    name: str
    elem_type: DataType
    depth: int
    partition: int = 1

    def __post_init__(self) -> None:
        if self.depth <= 0:
            raise VerificationError(f"buffer {self.name!r} has non-positive depth")
        if self.partition <= 0 or self.partition > self.depth:
            raise VerificationError(
                f"buffer {self.name!r}: partition {self.partition} out of range"
            )

    @property
    def total_bits(self) -> int:
        return self.depth * self.elem_type.bits

    def bram36_units(self) -> int:
        """Number of BRAM36 blocks a bank-mapped implementation needs.

        Each partition is shaped independently: width-limited slicing first
        (a wide word needs ``ceil(width/72)`` parallel blocks), then
        depth-limited stacking.  This is the *physical* fanout target count
        of a store broadcast (Fig. 4).
        """
        per_part_depth = math.ceil(self.depth / self.partition)
        width = self.elem_type.bits
        width_slices = math.ceil(width / BRAM36_MAX_WIDTH)
        eff_width = min(width, BRAM36_MAX_WIDTH)
        depth_per_block = min(BRAM36_MAX_DEPTH * BRAM36_MAX_WIDTH // eff_width, 32768)
        depth_stacks = math.ceil(per_part_depth / depth_per_block)
        blocks = width_slices * depth_stacks
        # A partition never takes less than one block.
        return max(blocks, 1) * self.partition


@dataclass
class Fifo:
    """A streaming channel between kernels (or to/from the outside).

    Attributes:
        name: Channel name.
        elem_type: Element scalar type (width drives skid-buffer area).
        depth: FIFO capacity in elements.
        external: True when one side is off-design (AXI-Stream port, HBM
            port, etc.) — external FIFOs never stall the producer model.
    """

    name: str
    elem_type: DataType
    depth: int = 2
    external: bool = False

    def __post_init__(self) -> None:
        if self.depth <= 0:
            raise VerificationError(f"fifo {self.name!r} has non-positive depth")

    @property
    def width(self) -> int:
        return self.elem_type.bits


@dataclass
class Loop:
    """A counted loop with HLS pragmas, owning one body DFG.

    Attributes:
        name: Loop label.
        body: The dataflow graph of a single iteration.
        trip_count: Iteration count (``None`` for ``while(1)`` streaming
            loops — these have dynamic latency and block §4.2 pruning).
        pipeline: ``#pragma HLS pipeline`` present.
        ii: Requested initiation interval.
        unroll: ``#pragma HLS unroll factor=N`` to be applied by the
            unrolling pass (1 = no unroll).
    """

    name: str
    body: DFG
    trip_count: Optional[int] = None
    pipeline: bool = False
    ii: int = 1
    unroll: int = 1

    @property
    def has_static_latency(self) -> bool:
        """Whether total loop latency is a compile-time constant."""
        return self.trip_count is not None

    def fifo_endpoints(self) -> Tuple[List[str], List[str]]:
        """Names of FIFOs this loop reads and writes (deduplicated, ordered)."""
        reads: List[str] = []
        writes: List[str] = []
        for op in self.body.ops:
            if op.opcode is Opcode.FIFO_READ:
                fifo = op.attrs["fifo"]
                if fifo.name not in reads:
                    reads.append(fifo.name)
            elif op.opcode is Opcode.FIFO_WRITE:
                fifo = op.attrs["fifo"]
                if fifo.name not in writes:
                    writes.append(fifo.name)
        return reads, writes

    def buffers_touched(self) -> List[str]:
        names: List[str] = []
        for op in self.body.mem_ops():
            buffer = op.attrs["buffer"]
            if buffer.name not in names:
                names.append(buffer.name)
        return names


@dataclass
class Kernel:
    """A function: loops executed in sequence (plus implicit prologue).

    In a dataflow design each kernel is one concurrent process.
    """

    name: str
    loops: List[Loop] = field(default_factory=list)

    def add_loop(self, loop: Loop) -> Loop:
        self.loops.append(loop)
        return loop

    def fifo_endpoints(self) -> Tuple[List[str], List[str]]:
        reads: List[str] = []
        writes: List[str] = []
        for loop in self.loops:
            r, w = loop.fifo_endpoints()
            reads.extend(name for name in r if name not in reads)
            writes.extend(name for name in w if name not in writes)
        return reads, writes


@dataclass
class Design:
    """A complete HLS design handed to the flow.

    Attributes:
        name: Design name (used in reports).
        device: Device key from :mod:`repro.physical.device`.
        kernels: The kernels; concurrent when ``dataflow`` is set.
        fifos: All streaming channels by name.
        buffers: All shared arrays by name.
        dataflow: ``#pragma HLS dataflow`` at the top level.
        meta: Free-form provenance (paper reference, broadcast type, ...).
    """

    name: str
    device: str = "aws-f1"
    kernels: List[Kernel] = field(default_factory=list)
    fifos: Dict[str, Fifo] = field(default_factory=dict)
    buffers: Dict[str, Buffer] = field(default_factory=dict)
    dataflow: bool = False
    meta: Dict[str, object] = field(default_factory=dict)

    def add_kernel(self, kernel: Kernel) -> Kernel:
        if any(existing.name == kernel.name for existing in self.kernels):
            raise VerificationError(f"duplicate kernel name {kernel.name!r}")
        self.kernels.append(kernel)
        return kernel

    def add_fifo(self, fifo: Fifo) -> Fifo:
        if fifo.name in self.fifos:
            raise VerificationError(f"duplicate fifo name {fifo.name!r}")
        self.fifos[fifo.name] = fifo
        return fifo

    def add_buffer(self, buffer: Buffer) -> Buffer:
        if buffer.name in self.buffers:
            raise VerificationError(f"duplicate buffer name {buffer.name!r}")
        self.buffers[buffer.name] = buffer
        return buffer

    def all_loops(self) -> List[Tuple[Kernel, Loop]]:
        return [(kernel, loop) for kernel in self.kernels for loop in kernel.loops]

    def verify(self) -> None:
        """Check cross-references and each body DFG."""
        for kernel, loop in self.all_loops():
            loop.body.verify()
            for op in loop.body.ops:
                if "fifo" in op.attrs:
                    fifo = op.attrs["fifo"]
                    if self.fifos.get(fifo.name) is not fifo:
                        raise VerificationError(
                            f"{kernel.name}/{loop.name}: fifo {fifo.name!r} "
                            "not registered on the design"
                        )
                if "buffer" in op.attrs:
                    buffer = op.attrs["buffer"]
                    if self.buffers.get(buffer.name) is not buffer:
                        raise VerificationError(
                            f"{kernel.name}/{loop.name}: buffer {buffer.name!r} "
                            "not registered on the design"
                        )
        if self.dataflow:
            for name, fifo in self.fifos.items():
                readers = writers = 0
                for _, loop in self.all_loops():
                    r, w = loop.fifo_endpoints()
                    readers += name in r
                    writers += name in w
                if not fifo.external and (readers == 0 or writers == 0):
                    raise VerificationError(
                        f"dataflow fifo {name!r} needs both a reader and a writer "
                        f"(got {readers} readers, {writers} writers)"
                    )

    def clone(self) -> "Design":
        """Deep-copy the design so optimizations can edit it in place."""
        copy = Design(
            name=self.name,
            device=self.device,
            dataflow=self.dataflow,
            meta=dict(self.meta),
        )
        fifo_map: Dict[str, Fifo] = {}
        for fifo in self.fifos.values():
            fifo_map[fifo.name] = copy.add_fifo(
                Fifo(fifo.name, fifo.elem_type, fifo.depth, fifo.external)
            )
        buffer_map: Dict[str, Buffer] = {}
        for buffer in self.buffers.values():
            buffer_map[buffer.name] = copy.add_buffer(
                Buffer(buffer.name, buffer.elem_type, buffer.depth, buffer.partition)
            )
        for kernel in self.kernels:
            new_kernel = copy.add_kernel(Kernel(kernel.name))
            for loop in kernel.loops:
                body = loop.body.clone()
                for op in body.ops:
                    if "fifo" in op.attrs:
                        op.attrs["fifo"] = fifo_map[op.attrs["fifo"].name]
                    if "buffer" in op.attrs:
                        op.attrs["buffer"] = buffer_map[op.attrs["buffer"].name]
                new_kernel.add_loop(
                    Loop(
                        loop.name,
                        body,
                        trip_count=loop.trip_count,
                        pipeline=loop.pipeline,
                        ii=loop.ii,
                        unroll=loop.unroll,
                    )
                )
        return copy
