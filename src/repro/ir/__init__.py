"""HLS-style intermediate representation.

The IR mirrors what an HLS front-end produces right before scheduling: a
typed SSA dataflow graph (:mod:`repro.ir.dfg`) per loop body, organized into
loops, kernels and designs (:mod:`repro.ir.program`), with compiler passes
such as loop unrolling and array partitioning (:mod:`repro.ir.passes`) that
create the implicit broadcast structures the paper studies.
"""

from repro.ir.types import (
    DataType,
    f16,
    f32,
    f64,
    i1,
    i8,
    i16,
    i32,
    i64,
    u8,
    u16,
    u32,
    u64,
)
from repro.ir.values import Value
from repro.ir.ops import Opcode, Operation
from repro.ir.dfg import DFG
from repro.ir.program import Buffer, Design, Fifo, Kernel, Loop
from repro.ir.builder import DFGBuilder

__all__ = [
    "DataType",
    "Value",
    "Opcode",
    "Operation",
    "DFG",
    "DFGBuilder",
    "Buffer",
    "Fifo",
    "Loop",
    "Kernel",
    "Design",
    "i1",
    "i8",
    "i16",
    "i32",
    "i64",
    "u8",
    "u16",
    "u32",
    "u64",
    "f16",
    "f32",
    "f64",
]
