"""Dataflow streaming conversion: turn on ``#pragma HLS dataflow``.

A non-dataflow design runs its kernels as one synchronized region; flipping
the top-level dataflow flag makes each kernel a concurrent process stitched
by FIFO channels (Fig. 5a).  The functional simulator already executes
loops concurrently either way, so the conversion is behaviour-preserving by
construction — what changes is the *flow*: the §3.2 synchronization
broadcast appears (and §4.2 pruning gets something to split), skid-buffer
control applies per process, and predicted fmax usually moves.

Eligibility is exactly the design's own dataflow verification rule: every
internal FIFO must have both a reader and a writer once kernels run
concurrently.
"""

from __future__ import annotations

from typing import List

from repro.errors import TransformError, VerificationError
from repro.ir.program import Design
from repro.ir.transforms.base import Transform, register_transform


@register_transform
class StreamTransform(Transform):
    """Convert a monolithic design into a dataflow (streaming) design."""

    name = "stream"

    def __init__(self) -> None:
        super().__init__()

    def apply(self, design: Design) -> Design:
        if design.dataflow:
            raise TransformError(f"design {design.name!r} is already dataflow")
        out = design.clone()
        out.dataflow = True
        try:
            out.verify()
        except VerificationError as exc:
            raise TransformError(
                f"design {design.name!r} cannot stream: {exc}"
            ) from exc
        return out

    @classmethod
    def candidates(cls, design: Design) -> List["StreamTransform"]:
        transform = cls()
        return [transform] if transform.applicable(design) else []
