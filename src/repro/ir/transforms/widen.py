"""Vectorization widening: pack an internal FIFO's lanes into wide words.

The de Fine Licht catalogue's "vectorization" applied to streaming
channels: an internal FIFO carrying one element per cycle between a
producer loop and a consumer loop is widened to carry ``lanes`` elements
per word.  Both endpoint loops are unrolled by ``lanes`` (via the existing
:func:`repro.ir.passes.unroll_loop` machinery), the producer's per-copy
writes are replaced by a mask/shift/or pack into one wide write, and the
consumer's per-copy reads become one wide read plus per-lane ``TRUNC``
extracts (``attrs['lsb']`` selects the lane, exactly like the builder's
``slice_``).

Lane ``k`` occupies bits ``[k*w, (k+1)*w)`` of the wide word.  Packing
masks each zero-extended lane to ``w`` bits before shifting — the
interpreter's ``ZEXT`` wraps negative values to the *wide* width, so an
unmasked lane would smear sign bits over its neighbours.  Unpacking via
``TRUNC`` re-wraps to the element type, restoring signed values.

Widening multiplies the channel's data throughput per handshake and cuts
the handshake (synchronization) rate by ``lanes`` — at the cost of the
unroll-induced broadcast pressure inside both endpoints, which is exactly
the trade the design-space explorer arbitrates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import TransformError
from repro.ir.dfg import DFG
from repro.ir.ops import Opcode
from repro.ir.passes import unroll_loop
from repro.ir.program import Design, Fifo, Kernel, Loop
from repro.ir.transforms.base import (
    Transform,
    check_rate_change,
    clone_inputs_into,
    clone_op_into,
    register_transform,
)
from repro.ir.types import MAX_WIDTH, DataType
from repro.ir.values import Value

#: Lane counts the candidate enumeration proposes.
CANDIDATE_LANES = (2, 4)


def _endpoint(design: Design, fifo_name: str, opcode: Opcode) -> Tuple[Kernel, Loop]:
    """The unique (kernel, loop) performing ``opcode`` on ``fifo_name``."""
    hits = []
    for kernel, loop in design.all_loops():
        ops = [
            op
            for op in loop.body.ops
            if op.opcode is opcode and op.attrs["fifo"].name == fifo_name
        ]
        if not ops:
            continue
        if len(ops) > 1:
            raise TransformError(
                f"fifo {fifo_name!r}: multiple {opcode} ops in loop {loop.name!r}"
            )
        if ops[0].attrs.get("unroll_shared"):
            raise TransformError(
                f"fifo {fifo_name!r}: {opcode} is unroll_shared; rate would change"
            )
        hits.append((kernel, loop))
    if len(hits) != 1:
        raise TransformError(
            f"fifo {fifo_name!r} needs exactly one {opcode} endpoint, got {len(hits)}"
        )
    return hits[0]


def _check_endpoint_loop(design: Design, loop: Loop, fifo_name: str, lanes: int) -> None:
    if loop.trip_count is None or loop.trip_count % lanes:
        raise TransformError(
            f"loop {loop.name!r}: trip count not divisible by {lanes}"
        )
    if loop.unroll != 1:
        raise TransformError(f"loop {loop.name!r} already carries an unroll pragma")
    for op in loop.body.ops:
        if op.attrs.get("unroll_shared"):
            raise TransformError(
                f"loop {loop.name!r} has unroll_shared ops; unrolling by the "
                "lane count would change their rate"
            )
    # The endpoint is unrolled by ``lanes``: its firing rate drops and its
    # other channels see ``lanes`` accesses per firing.  The widened FIFO
    # itself is excluded — packing collapses it back to one access.
    check_rate_change(design, loop, lanes, exclude_fifo=fifo_name)


def _pack_writes(body: DFG, fifo: Fifo, lanes: int, wide: DataType) -> DFG:
    """Replace the ``lanes`` per-copy writes with one packed wide write."""
    width = fifo.elem_type.bits // lanes  # fifo already carries the wide type
    writes = [
        op
        for op in body.ops
        if op.opcode is Opcode.FIFO_WRITE and op.attrs["fifo"].name == fifo.name
    ]
    if len(writes) != lanes:
        raise TransformError(
            f"expected {lanes} writes to {fifo.name!r} after unroll, got {len(writes)}"
        )
    out = DFG(f"{body.name}_pack")
    mapping: Dict[Value, Value] = {}
    clone_inputs_into(out, body, mapping)
    write_set = {id(op) for op in writes}
    last = writes[-1]
    lane_values: List[Value] = []
    for op in body.ops:
        if id(op) in write_set:
            lane_values.append(mapping[op.operands[0]])
            if op is last:
                mask = out.const((1 << width) - 1, wide, name="lane_mask")
                packed: Optional[Value] = None
                for k, lane in enumerate(lane_values):
                    z = out.add_op(
                        Opcode.ZEXT, [lane], result_type=wide, name=f"lane{k}_z"
                    ).result
                    m = out.add_op(Opcode.AND, [z, mask], name=f"lane{k}_m").result
                    if k:
                        shift = out.const(k * width, wide, name=f"lane{k}_shamt")
                        m = out.add_op(
                            Opcode.SHL, [m, shift], name=f"lane{k}_s"
                        ).result
                    packed = (
                        m
                        if packed is None
                        else out.add_op(Opcode.OR, [packed, m], name=f"pack{k}").result
                    )
                out.add_op(Opcode.FIFO_WRITE, [packed], attrs={"fifo": fifo})
            continue
        clone_op_into(out, op, mapping)
    out.verify()
    return out


def _split_reads(body: DFG, fifo: Fifo, lanes: int, wide: DataType, elem: DataType) -> DFG:
    """Replace the ``lanes`` per-copy reads with one wide read + extracts."""
    width = elem.bits
    reads = [
        op
        for op in body.ops
        if op.opcode is Opcode.FIFO_READ and op.attrs["fifo"].name == fifo.name
    ]
    if len(reads) != lanes:
        raise TransformError(
            f"expected {lanes} reads of {fifo.name!r} after unroll, got {len(reads)}"
        )
    out = DFG(f"{body.name}_unpack")
    mapping: Dict[Value, Value] = {}
    clone_inputs_into(out, body, mapping)
    read_index = {id(op): k for k, op in enumerate(reads)}
    wide_value: Optional[Value] = None
    for op in body.ops:
        k = read_index.get(id(op))
        if k is not None:
            if wide_value is None:
                wide_value = out.add_op(
                    Opcode.FIFO_READ,
                    [],
                    result_type=wide,
                    attrs={"fifo": fifo},
                    name=f"{fifo.name}_word",
                ).result
            extract = out.add_op(
                Opcode.TRUNC,
                [wide_value],
                result_type=elem,
                attrs={"lsb": k * width},
                name=f"{op.result.name}_lane",
            )
            mapping[op.result] = extract.result
            continue
        clone_op_into(out, op, mapping)
    out.verify()
    return out


@register_transform
class WidenTransform(Transform):
    """Widen internal FIFO ``fifo`` to carry ``lanes`` elements per word."""

    name = "widen"

    def __init__(self, fifo: str, lanes: int) -> None:
        super().__init__(fifo=str(fifo), lanes=int(lanes))

    def apply(self, design: Design) -> Design:
        fifo_name = str(self._params["fifo"])
        lanes = int(self._params["lanes"])
        if lanes < 2:
            raise TransformError(f"lane count must be >= 2, got {lanes}")
        out = design.clone()
        fifo = out.fifos.get(fifo_name)
        if fifo is None:
            raise TransformError(f"no fifo named {fifo_name!r}")
        if fifo.external:
            raise TransformError(f"fifo {fifo_name!r} is external (fixed interface)")
        elem = fifo.elem_type
        if not elem.is_int:
            raise TransformError(f"fifo {fifo_name!r} carries {elem}; need an integer")
        if elem.bits * lanes > MAX_WIDTH:
            raise TransformError(
                f"widened word {elem.bits * lanes} bits exceeds max {MAX_WIDTH}"
            )
        wide = DataType("uint", elem.bits * lanes)

        prod_kernel, prod_loop = _endpoint(out, fifo_name, Opcode.FIFO_WRITE)
        cons_kernel, cons_loop = _endpoint(out, fifo_name, Opcode.FIFO_READ)
        if prod_loop is cons_loop:
            raise TransformError(f"fifo {fifo_name!r} is a self-loop; cannot widen")
        _check_endpoint_loop(out, prod_loop, fifo_name, lanes)
        _check_endpoint_loop(out, cons_loop, fifo_name, lanes)

        unrolled_prod = unroll_loop(prod_loop, lanes)
        unrolled_cons = unroll_loop(cons_loop, lanes)
        fifo.elem_type = wide  # depth stays: capacity in *words* is preserved
        prod_body = _pack_writes(unrolled_prod.body, fifo, lanes, wide)
        cons_body = _split_reads(unrolled_cons.body, fifo, lanes, wide, elem)

        prod_kernel.loops[prod_kernel.loops.index(prod_loop)] = Loop(
            name=prod_loop.name,
            body=prod_body,
            trip_count=unrolled_prod.trip_count,
            pipeline=prod_loop.pipeline,
            ii=prod_loop.ii,
            unroll=1,
        )
        cons_kernel.loops[cons_kernel.loops.index(cons_loop)] = Loop(
            name=cons_loop.name,
            body=cons_body,
            trip_count=unrolled_cons.trip_count,
            pipeline=cons_loop.pipeline,
            ii=cons_loop.ii,
            unroll=1,
        )
        out.verify()
        return out

    @classmethod
    def candidates(cls, design: Design) -> List["WidenTransform"]:
        out: List[WidenTransform] = []
        for fifo_name in sorted(design.fifos):
            for lanes in CANDIDATE_LANES:
                transform = cls(fifo=fifo_name, lanes=lanes)
                if transform.applicable(design):
                    out.append(transform)
        return out
