"""Loop tiling: split one counted loop into concurrently-firing tiles.

Tiling splits a trip-``T`` loop into ``t`` loops of trip ``T/t``; tile ``k``
executes the original iterations ``k*T/t .. (k+1)*T/t - 1``, realized by
adding a constant offset to the loop-index inputs of its body.  Each tile
is an independent scheduling/placement unit, so downstream the broadcast
fanout of loop-invariant operands is split ``t`` ways — the de Fine Licht
HPC-transformations catalogue's tiling, recast for the paper's broadcast
model.

The functional simulator fires *all* loops concurrently (one iteration per
cycle each), so tiles interleave: original iteration order is **not**
preserved.  Eligibility must therefore guarantee order-independence:

* no FIFO operations in the body (stream order would be permuted);
* per buffer, at most one STORE in the body, this loop is its only writer
  design-wide, and nobody (including this loop) loads a stored buffer —
  only the final contents are observable, so commuting stores is safe
  *provided addresses never collide across iterations*;
* every STORE address is an injective function of the loop index: its
  operand cone may contain only ADD/SUB/SHL/CONST ops, constants and
  loop-invariant inputs, plus exactly one plain index input (``i``/``j``),
  never in a shift-amount position;
* buffers the loop loads are stored by no loop (read-only tables).

These static guards are deliberately conservative; the dynamic
interp-equivalence tests and the ``passes`` fuzz check are the backstop.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.errors import TransformError
from repro.ir.dfg import DFG
from repro.ir.ops import FIFO_OPS, Opcode
from repro.ir.program import Design, Loop
from repro.ir.transforms.base import (
    Transform,
    clone_inputs_into,
    clone_op_into,
    find_loop,
    register_transform,
    unique_loop_names,
)
from repro.ir.values import Value
from repro.sim.dataflow import INDEX_INPUT_NAMES

#: Tile counts the candidate enumeration proposes.
CANDIDATE_TILES = (2, 4)

_CONE_OPS = frozenset({Opcode.ADD, Opcode.SUB, Opcode.SHL, Opcode.CONST})


def _index_affine(value: Value) -> Tuple[int, int]:
    """``(occurrences, stride)`` of plain loop-index inputs in a cone.

    ``stride`` is the coefficient the index is multiplied by on its path to
    the root (1 when untouched, ``2**c`` through ``SHL`` by constant ``c``).
    Raises :class:`TransformError` when the cone contains anything that
    could break injectivity: a disallowed opcode, a per-iteration non-index
    input, or an index feeding a shift amount.
    """
    if value.is_const:
        return 0, 0
    producer = value.producer
    if producer is None:  # a graph input
        base, sep, _ = value.name.partition("#")
        if base in INDEX_INPUT_NAMES:
            if sep:
                raise TransformError(
                    f"index input {value.name!r} is already unroll-lowered"
                )
            return 1, 1
        if value.loop_invariant:
            return 0, 0
        raise TransformError(
            f"store address depends on per-iteration input {value.name!r}"
        )
    if producer.opcode not in _CONE_OPS:
        raise TransformError(
            f"store address cone contains {producer.opcode} (not injective-safe)"
        )
    if producer.opcode is Opcode.CONST:
        return 0, 0
    if producer.opcode is Opcode.SHL:
        data, amount = producer.operands
        if _index_affine(amount)[0] != 0:
            raise TransformError("loop index used as a shift amount")
        if not amount.is_const:
            raise TransformError("shift amount on the index path is not a constant")
        occurrences, stride = _index_affine(data)
        return occurrences, stride * (1 << int(amount.const))
    total_occ = 0
    total_stride = 0
    for operand in producer.operands:
        occurrences, stride = _index_affine(operand)
        total_occ += occurrences
        total_stride += stride
    return total_occ, total_stride


def _check_store_addresses(loop: Loop) -> None:
    for op in loop.body.ops:
        if op.opcode is not Opcode.STORE:
            continue
        address = op.operands[0]
        occurrences, stride = _index_affine(address)
        if occurrences != 1 or stride < 1:
            raise TransformError(
                f"store {op.name} address is not a one-index affine expression"
            )
        # The interpreter indexes modulo the buffer depth: injectivity over
        # the trip space needs the full affine range inside one wrap.
        depth = op.attrs["buffer"].depth
        trip = loop.trip_count or 0
        if (trip - 1) * stride >= depth:
            raise TransformError(
                f"store {op.name}: affine range {(trip - 1) * stride} "
                f"reaches past buffer depth {depth} (mod-wrap would collide)"
            )


def _buffer_conflicts(design: Design, loop: Loop) -> None:
    stored: Set[str] = set()
    loaded: Set[str] = set()
    per_buffer_stores: Dict[str, int] = {}
    for op in loop.body.ops:
        if op.opcode is Opcode.STORE:
            name = op.attrs["buffer"].name
            stored.add(name)
            per_buffer_stores[name] = per_buffer_stores.get(name, 0) + 1
        elif op.opcode is Opcode.LOAD:
            loaded.add(op.attrs["buffer"].name)
    for name, count in per_buffer_stores.items():
        if count > 1:
            raise TransformError(f"buffer {name!r} stored more than once per iteration")
    for _kernel, other in design.all_loops():
        for op in other.body.ops:
            if op.opcode is Opcode.LOAD and op.attrs["buffer"].name in stored:
                raise TransformError(
                    f"stored buffer {op.attrs['buffer'].name!r} is also loaded"
                )
            if op.opcode is Opcode.STORE:
                name = op.attrs["buffer"].name
                if other is not loop and name in stored:
                    raise TransformError(f"buffer {name!r} has multiple writers")
                if name in loaded:
                    raise TransformError(
                        f"loaded buffer {name!r} is written elsewhere"
                    )


def _offset_body(body: DFG, offset: int, suffix: str) -> DFG:
    """Clone ``body`` with every loop-index input shifted by ``offset``."""
    out = DFG(f"{body.name}{suffix}")
    mapping: Dict[Value, Value] = {}
    for value in body.inputs:
        new_value = out.input(
            value.name, value.type, loop_invariant=value.loop_invariant
        )
        base = value.name.partition("#")[0]
        if offset and base in INDEX_INPUT_NAMES:
            off = out.const(offset, value.type, name=f"{value.name}_off")
            shifted = out.add_op(
                Opcode.ADD, [new_value, off], name=f"{value.name}_tiled"
            )
            mapping[value] = shifted.result
        else:
            mapping[value] = new_value
    for op in body.ops:
        clone_op_into(out, op, mapping)
    out.verify()
    return out


@register_transform
class TileTransform(Transform):
    """Split ``loop`` into ``tiles`` offset-indexed concurrent loops."""

    name = "tile"

    def __init__(self, loop: str, tiles: int) -> None:
        super().__init__(loop=str(loop), tiles=int(tiles))

    def apply(self, design: Design) -> Design:
        loop_name = str(self._params["loop"])
        tiles = int(self._params["tiles"])
        if tiles < 2:
            raise TransformError(f"tile count must be >= 2, got {tiles}")
        out = design.clone()
        kernel, loop = find_loop(out, loop_name)
        if loop.trip_count is None:
            raise TransformError(f"loop {loop_name!r} has no static trip count")
        if loop.trip_count % tiles != 0:
            raise TransformError(
                f"loop {loop_name!r}: trip {loop.trip_count} not divisible by {tiles}"
            )
        new_trip = loop.trip_count // tiles
        if loop.unroll > 1 and (loop.unroll > new_trip or new_trip % loop.unroll):
            raise TransformError(
                f"loop {loop_name!r}: unroll {loop.unroll} does not divide tile "
                f"trip {new_trip}"
            )
        if any(op.opcode in FIFO_OPS for op in loop.body.ops):
            raise TransformError(f"loop {loop_name!r} touches FIFOs; tiling reorders")
        _buffer_conflicts(out, loop)
        _check_store_addresses(loop)

        position = kernel.loops.index(loop)
        tiles_list: List[Loop] = []
        for k in range(tiles):
            tiles_list.append(
                Loop(
                    name=f"{loop.name}_t{k}",
                    body=_offset_body(loop.body, k * new_trip, f"_t{k}"),
                    trip_count=new_trip,
                    pipeline=loop.pipeline,
                    ii=loop.ii,
                    unroll=loop.unroll,
                )
            )
        kernel.loops[position : position + 1] = tiles_list
        out.verify()
        return out

    @classmethod
    def candidates(cls, design: Design) -> List["TileTransform"]:
        out: List[TileTransform] = []
        addressable = set(unique_loop_names(design))
        for _kernel, loop in design.all_loops():
            if loop.name not in addressable or loop.trip_count is None:
                continue
            for tiles in CANDIDATE_TILES:
                if loop.trip_count % tiles:
                    continue
                transform = cls(loop=loop.name, tiles=tiles)
                if transform.applicable(design):
                    out.append(transform)
        return out
