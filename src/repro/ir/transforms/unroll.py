"""Unroll-factor override: retarget a loop's ``#pragma HLS unroll``.

This is the knob that *creates* the paper's data broadcasts: the unroll
factor is exactly the fanout a loop-invariant operand acquires after
:func:`repro.ir.passes.unroll_loop` replicates the body (Fig. 1/2).
Raising it trades II for broadcast pressure; lowering it is often the
cheapest way to pull a design back under the data-broadcast threshold.

The transform only rewrites the pragma — lowering happens later in
:func:`repro.ir.passes.apply_pragmas` — so the functional simulation,
which runs un-lowered bodies, is trivially unchanged; the lowered form is
covered by the long-standing ``pragmas`` metamorphic fuzz check.
"""

from __future__ import annotations

from typing import List

from repro.errors import TransformError
from repro.ir.program import Design
from repro.ir.transforms.base import (
    Transform,
    check_rate_change,
    find_loop,
    register_transform,
    unique_loop_names,
)

#: Largest unroll factor the candidate enumeration proposes.
MAX_UNROLL = 64


@register_transform
class UnrollTransform(Transform):
    """Set ``loop``'s unroll pragma to ``factor`` (1 removes it)."""

    name = "unroll"

    def __init__(self, loop: str, factor: int) -> None:
        super().__init__(loop=str(loop), factor=int(factor))

    def apply(self, design: Design) -> Design:
        loop_name = str(self._params["loop"])
        factor = int(self._params["factor"])
        if factor < 1:
            raise TransformError(f"unroll factor must be >= 1, got {factor}")
        out = design.clone()
        _kernel, loop = find_loop(out, loop_name)
        if loop.trip_count is None:
            raise TransformError(
                f"loop {loop_name!r} has no static trip count to unroll over"
            )
        if loop.trip_count % factor != 0:
            raise TransformError(
                f"loop {loop_name!r}: trip {loop.trip_count} not divisible by {factor}"
            )
        # ``unroll_shared`` ops execute once per *merged* firing, so their
        # rate (e.g. one FIFO element feeding a whole PE row) is part of the
        # design's semantics at its built factor — retargeting would change
        # how many elements the loop consumes or produces.
        for op in loop.body.ops:
            if op.attrs.get("unroll_shared"):
                raise TransformError(
                    f"loop {loop_name!r} has unroll_shared ops; the factor is "
                    "rate-significant and cannot be overridden"
                )
        check_rate_change(out, loop, max(factor, loop.unroll))
        loop.unroll = factor
        out.verify()
        return out

    @classmethod
    def candidates(cls, design: Design) -> List["UnrollTransform"]:
        out: List[UnrollTransform] = []
        addressable = set(unique_loop_names(design))
        for _kernel, loop in design.all_loops():
            if loop.name not in addressable or loop.trip_count is None:
                continue
            if any(op.attrs.get("unroll_shared") for op in loop.body.ops):
                continue
            factor = 1
            while factor <= min(loop.trip_count, MAX_UNROLL):
                if loop.trip_count % factor == 0 and factor != loop.unroll:
                    try:
                        check_rate_change(design, loop, max(factor, loop.unroll))
                    except TransformError:
                        pass
                    else:
                        out.append(cls(loop=loop.name, factor=factor))
                factor *= 2
        return out
