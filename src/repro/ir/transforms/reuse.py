"""Channel reuse: merge two parallel FIFOs onto one physical channel.

Alias's polyhedral-process-network channel optimization, specialized to the
pattern this IR can prove safe: two internal FIFOs with the same element
type, written by the same single producer loop (once each per iteration)
and read by the same single consumer loop (once each per iteration), with
matching relative order on both sides.  Each firing then pushes/pops the
two elements in a fixed alternating pattern, so routing both streams
through the first channel (with the depths summed, preserving aggregate
capacity) delivers every element to the same consumer use in the same
order — while halving the channel count, the skid-buffer area, and the
per-channel synchronization fan-in.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Tuple

from repro.errors import TransformError
from repro.ir.ops import Opcode
from repro.ir.program import Design, Loop
from repro.ir.transforms.base import Transform, register_transform


def _single_endpoint(design: Design, fifo_name: str, opcode: Opcode) -> Tuple[Loop, int]:
    """The unique loop touching ``fifo_name`` with ``opcode`` and the op index."""
    hits: List[Tuple[Loop, int]] = []
    for _kernel, loop in design.all_loops():
        for index, op in enumerate(loop.body.ops):
            if op.opcode is opcode and op.attrs["fifo"].name == fifo_name:
                if op.attrs.get("unroll_shared"):
                    raise TransformError(
                        f"fifo {fifo_name!r}: {opcode} is unroll_shared"
                    )
                hits.append((loop, index))
    if len(hits) != 1:
        raise TransformError(
            f"fifo {fifo_name!r} needs exactly one {opcode}, got {len(hits)}"
        )
    return hits[0]


@register_transform
class ReuseTransform(Transform):
    """Merge fifo ``second`` into fifo ``first`` (depths summed)."""

    name = "reuse"

    def __init__(self, first: str, second: str) -> None:
        super().__init__(first=str(first), second=str(second))

    def apply(self, design: Design) -> Design:
        first_name = str(self._params["first"])
        second_name = str(self._params["second"])
        if first_name == second_name:
            raise TransformError("cannot merge a fifo with itself")
        out = design.clone()
        first = out.fifos.get(first_name)
        second = out.fifos.get(second_name)
        if first is None or second is None:
            raise TransformError(
                f"fifos {first_name!r}/{second_name!r} not both present"
            )
        if first.external or second.external:
            raise TransformError("cannot merge external fifos (fixed interfaces)")
        if first.elem_type != second.elem_type:
            raise TransformError(
                f"element types differ: {first.elem_type} vs {second.elem_type}"
            )

        writer1, w1 = _single_endpoint(out, first_name, Opcode.FIFO_WRITE)
        writer2, w2 = _single_endpoint(out, second_name, Opcode.FIFO_WRITE)
        reader1, r1 = _single_endpoint(out, first_name, Opcode.FIFO_READ)
        reader2, r2 = _single_endpoint(out, second_name, Opcode.FIFO_READ)
        if writer1 is not writer2:
            raise TransformError("fifos have different producer loops")
        if reader1 is not reader2:
            raise TransformError("fifos have different consumer loops")
        if writer1 is reader1:
            raise TransformError("producer and consumer are the same loop")
        if (w1 < w2) != (r1 < r2):
            raise TransformError(
                "write order and read order of the two fifos disagree"
            )

        for loop in (writer1, reader1):
            for op in loop.body.ops:
                if op.attrs.get("fifo") is second:
                    op.attrs["fifo"] = first
        first.depth = first.depth + second.depth
        del out.fifos[second_name]
        out.verify()
        return out

    @classmethod
    def candidates(cls, design: Design) -> List["ReuseTransform"]:
        out: List[ReuseTransform] = []
        internal = sorted(
            name for name, fifo in design.fifos.items() if not fifo.external
        )
        for first_name, second_name in combinations(internal, 2):
            transform = cls(first=first_name, second=second_name)
            if transform.applicable(design):
                out.append(transform)
        return out
