"""Named, parameterized, digest-stable design transforms.

The paper applies its broadcast fixes to designs whose broadcast structure
was *created* by source-level transformations (unrolling in Fig. 1/2).  This
package turns those transformations into first-class objects so a search
can enumerate, compose, hash and replay them:

* a :class:`Transform` is a named rewrite with JSON-canonical parameters —
  the same (name, params) pair always produces the same rewritten design,
  and :meth:`Transform.digest` is stable across processes;
* a :class:`TransformPlan` is an ordered composition of transforms; its
  wire form (:meth:`TransformPlan.to_spec`) rides inside ``FlowRequest`` so
  plans are digest-visible to the service/cluster coalescing layers;
* every concrete transform must be interp-equivalent: applying it must not
  change the design's observable behaviour under
  :class:`repro.sim.dataflow.DataflowSim` (outputs and final buffer
  contents).  The fuzz harness enforces this as a metamorphic check.

Transforms never mutate their input design; they clone and rewrite.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.errors import TransformError
from repro.hashing import canonical_json, content_digest
from repro.ir.dfg import DFG
from repro.ir.ops import Opcode
from repro.ir.program import Design, Kernel, Loop

#: Schema tag for plan digests (bump on encoding changes).
PLAN_SCHEMA = "repro-transform-plan/1"
#: Schema tag for single-transform digests.
TRANSFORM_SCHEMA = "repro-transform/1"

_REGISTRY: Dict[str, Type["Transform"]] = {}


def register_transform(cls: Type["Transform"]) -> Type["Transform"]:
    """Class decorator adding ``cls`` to the global transform registry."""
    if not cls.name or cls.name in _REGISTRY:
        raise TransformError(f"transform name {cls.name!r} invalid or duplicate")
    _REGISTRY[cls.name] = cls
    return cls


def transform_names() -> List[str]:
    return sorted(_REGISTRY)


def transform_type(name: str) -> Type["Transform"]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise TransformError(
            f"unknown transform {name!r}; known: {', '.join(transform_names())}"
        ) from None


class Transform:
    """Base class: a named design rewrite with canonical parameters.

    Subclasses set :attr:`name`, validate/normalize their parameters in
    ``__init__`` (every parameter value must be JSON-canonical: str, int,
    float or bool), and implement :meth:`apply`.  ``apply`` must either
    return a *new* design or raise :class:`TransformError` when the rewrite
    is inapplicable — it never returns the input object and never mutates
    it.
    """

    name: str = ""

    def __init__(self, **params: object) -> None:
        self._params: Dict[str, object] = {k: params[k] for k in sorted(params)}
        canonical_json(self._params)  # fail fast on non-JSON parameters

    @property
    def params(self) -> Dict[str, object]:
        return dict(self._params)

    def spec(self) -> List[object]:
        """Wire form: ``[name, {param: value}]`` (JSON-canonical)."""
        return [self.name, dict(self._params)]

    def digest(self) -> str:
        return content_digest({"schema": TRANSFORM_SCHEMA, "spec": self.spec()})

    def apply(self, design: Design) -> Design:
        raise NotImplementedError

    def applicable(self, design: Design) -> bool:
        """Whether :meth:`apply` would succeed on ``design``."""
        try:
            self.apply(design)
        except TransformError:
            return False
        return True

    @classmethod
    def candidates(cls, design: Design) -> List["Transform"]:
        """Deterministically enumerate applicable instances for ``design``."""
        return []

    def _key(self) -> Tuple:
        return (self.name, canonical_json(self._params))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Transform) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self._params.items())
        return f"{type(self).__name__}({args})"


class TransformPlan:
    """An ordered composition of transforms applied to one design.

    Plans are immutable value objects: equality and :meth:`digest` depend
    only on the transform sequence, and :meth:`to_spec`/:meth:`from_spec`
    round-trip through plain JSON so a plan can ride in a
    :class:`~repro.service.request.FlowRequest`.
    """

    __slots__ = ("transforms",)

    def __init__(self, transforms: Iterable[Transform] = ()) -> None:
        self.transforms: Tuple[Transform, ...] = tuple(transforms)
        for transform in self.transforms:
            if not isinstance(transform, Transform):
                raise TransformError(f"not a Transform: {transform!r}")

    # -- application ---------------------------------------------------
    def apply(self, design: Design) -> Design:
        """Apply every transform in order; returns a new design.

        An empty plan returns the input design unchanged (no clone), so
        plan-free flows pay nothing.
        """
        for transform in self.transforms:
            design = transform.apply(design)
        return design

    # -- wire form -----------------------------------------------------
    def to_spec(self) -> List[List[object]]:
        return [t.spec() for t in self.transforms]

    @classmethod
    def from_spec(cls, spec: object) -> "TransformPlan":
        """Build a plan from its wire form (or pass a plan through).

        Accepts ``None`` / ``()`` (empty plan), an existing plan, or a
        sequence of ``[name, {params}]`` pairs (lists or tuples; params may
        be a dict or a sequence of key/value pairs).
        """
        if spec is None:
            return cls()
        if isinstance(spec, TransformPlan):
            return spec
        transforms: List[Transform] = []
        for entry in spec:
            try:
                name, params = entry
            except (TypeError, ValueError):
                raise TransformError(f"bad plan entry {entry!r}") from None
            if not isinstance(params, dict):
                params = dict(params)
            try:
                transforms.append(transform_type(str(name))(**params))
            except TypeError as exc:
                raise TransformError(
                    f"bad parameters for transform {name!r}: {exc}"
                ) from None
        return cls(transforms)

    def digest(self) -> str:
        return content_digest({"schema": PLAN_SCHEMA, "transforms": self.to_spec()})

    # -- composition ---------------------------------------------------
    def then(self, transform: Transform) -> "TransformPlan":
        return TransformPlan(self.transforms + (transform,))

    def without_last(self) -> "TransformPlan":
        return TransformPlan(self.transforms[:-1])

    # -- value-object protocol -----------------------------------------
    def __iter__(self) -> Iterator[Transform]:
        return iter(self.transforms)

    def __len__(self) -> int:
        return len(self.transforms)

    def __bool__(self) -> bool:
        return bool(self.transforms)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TransformPlan) and self.transforms == other.transforms

    def __hash__(self) -> int:
        return hash(self.transforms)

    def __repr__(self) -> str:
        return f"TransformPlan({list(self.transforms)!r})"


#: The canonical empty plan.
EMPTY_PLAN = TransformPlan()


def all_candidates(design: Design) -> List[Transform]:
    """Every applicable transform instance, in deterministic order."""
    out: List[Transform] = []
    for name in transform_names():
        out.extend(_REGISTRY[name].candidates(design))
    return out


# ----------------------------------------------------------------------
# Shared helpers for concrete transforms
# ----------------------------------------------------------------------
def find_loop(design: Design, loop_name: str) -> Tuple[Kernel, Loop]:
    """Locate the unique loop named ``loop_name`` across all kernels."""
    matches = [
        (kernel, loop)
        for kernel, loop in design.all_loops()
        if loop.name == loop_name
    ]
    if not matches:
        raise TransformError(f"no loop named {loop_name!r} in design {design.name!r}")
    if len(matches) > 1:
        raise TransformError(f"loop name {loop_name!r} is ambiguous in {design.name!r}")
    return matches[0]


def unique_loop_names(design: Design) -> List[str]:
    """Loop names that occur exactly once (addressable by transforms)."""
    counts: Dict[str, int] = {}
    for _kernel, loop in design.all_loops():
        counts[loop.name] = counts.get(loop.name, 0) + 1
    return [name for name, n in counts.items() if n == 1]


def check_rate_change(
    design: Design,
    loop: Loop,
    factor: int,
    exclude_fifo: Optional[str] = None,
) -> None:
    """Reject rate changes on ``loop`` that the simulation could observe.

    Unrolling merges ``factor`` iterations into one firing, so the loop's
    firing rate drops by ``factor`` while its per-firing channel traffic
    grows by the same amount.  That is observable in two ways:

    * an internal FIFO the loop touches ``n`` times per iteration needs
      ``factor * n`` elements (or slots) per firing — if the FIFO is
      shallower than that, ``can_fire`` can never be satisfied again and
      the design deadlocks (``exclude_fifo`` skips the channel a widening
      is about to pack down to one access);
    * loops synchronize through FIFO handshakes only, so a buffer shared
      with another loop is an unsynchronized race whose outcome depends on
      relative firing rates — changing the rate changes what racy loads
      observe.
    """
    fifo_ops: Dict[str, int] = {}
    loads = set()
    stores = set()
    for op in loop.body.ops:
        fifo = op.attrs.get("fifo")
        if fifo is not None and not fifo.external and fifo.name != exclude_fifo:
            fifo_ops[fifo.name] = fifo_ops.get(fifo.name, 0) + 1
        if op.opcode is Opcode.LOAD:
            loads.add(op.attrs["buffer"].name)
        elif op.opcode is Opcode.STORE:
            stores.add(op.attrs["buffer"].name)
    for name, count in fifo_ops.items():
        depth = design.fifos[name].depth
        if depth < factor * count:
            raise TransformError(
                f"loop {loop.name!r}: fifo {name!r} depth {depth} < "
                f"{factor}x{count} accesses per merged firing (deadlock)"
            )
    for _kernel, other in design.all_loops():
        if other is loop:
            continue
        other_loads = set()
        other_stores = set()
        for op in other.body.ops:
            if op.opcode is Opcode.LOAD:
                other_loads.add(op.attrs["buffer"].name)
            elif op.opcode is Opcode.STORE:
                other_stores.add(op.attrs["buffer"].name)
        racy = (stores & (other_loads | other_stores)) | (loads & other_stores)
        if racy:
            raise TransformError(
                f"loop {loop.name!r}: buffers {sorted(racy)} are shared with "
                f"loop {other.name!r}; rate change would alter the race"
            )


def clone_op_into(out: DFG, op, mapping: Dict) -> None:
    """Clone one operation into ``out`` under a value ``mapping``.

    Mirrors :meth:`DFG.clone`'s per-op logic so rewrites that intercept
    selected ops can fall back to a faithful copy for the rest.
    """
    if op.opcode is Opcode.CONST:
        mapping[op.result] = out.const(
            op.attrs["value"], op.result.type, name=op.result.name
        )
        return
    new_op = out.add_op(
        op.opcode,
        [mapping[v] for v in op.operands],
        result_type=op.result.type if op.result is not None else None,
        attrs=dict(op.attrs),
        name=op.result.name if op.result is not None else None,
    )
    if op.result is not None:
        mapping[op.result] = new_op.result


def clone_inputs_into(out: DFG, body: DFG, mapping: Dict) -> None:
    """Declare ``body``'s inputs on ``out`` (preserving invariance flags)."""
    for value in body.inputs:
        mapping[value] = out.input(
            value.name, value.type, loop_invariant=value.loop_invariant
        )
