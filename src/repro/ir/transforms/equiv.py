"""Interp-equivalence checking for transforms.

Every transform in this package must preserve a design's observable
behaviour under the functional dataflow simulation: the sequence of
elements on every external output FIFO and the final contents of every
buffer.  :func:`equivalence_diffs` runs both designs on identical
deterministic stimuli and reports any divergence; the transform tests and
the ``passes`` fuzz check are both built on it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.ir.program import Design
from repro.sim.dataflow import DataflowSim

#: Default number of elements fed to each external input FIFO.  Must stay a
#: multiple of every rate factor the candidate enumerations propose (i.e. of
#: :data:`repro.ir.transforms.unroll.MAX_UNROLL` and every lane count): a
#: merged firing consumes ``factor`` elements at once, so a stimulus with a
#: partial tail would strand elements the un-merged base design processes —
#: a divergence of the oracle, not of the transform.
DEFAULT_STIMULUS_LEN = 64


def default_stimuli(design: Design, length: int = DEFAULT_STIMULUS_LEN) -> Dict[str, List[int]]:
    """Deterministic integer stimuli for every external input FIFO.

    Derived from the FIFO's position in sorted name order (never from
    ``hash()``, which is process-randomized), so the same design always
    gets the same feed in any process.
    """
    read = set()
    for _kernel, loop in design.all_loops():
        r, _w = loop.fifo_endpoints()
        read.update(r)
    stimuli: Dict[str, List[int]] = {}
    names = sorted(
        name for name, fifo in design.fifos.items() if fifo.external and name in read
    )
    for index, name in enumerate(names):
        fifo = design.fifos[name]
        span = 1 << min(fifo.elem_type.bits, 16)
        stimuli[name] = [
            ((index + 1) * 7919 + i * 2654435761) % span for i in range(length)
        ]
    return stimuli


def _diff_sequences(kind: str, name: str, a: Sequence, b: Sequence) -> List[str]:
    if list(a) == list(b):
        return []
    return [f"{kind} {name!r} differs: {list(a)[:8]}... vs {list(b)[:8]}..."]


def equivalence_diffs(
    base: Design,
    transformed: Design,
    stimuli: Optional[Dict[str, Sequence[object]]] = None,
    params: Optional[Dict[str, object]] = None,
    max_cycles: int = 100_000,
) -> List[str]:
    """Differences in observable behaviour between two designs (empty = equivalent)."""
    if stimuli is None:
        stimuli = default_stimuli(base)
    sim_a = DataflowSim(base, {k: list(v) for k, v in stimuli.items()}, params=params)
    sim_b = DataflowSim(
        transformed, {k: list(v) for k, v in stimuli.items()}, params=params
    )
    trace_a = sim_a.run(max_cycles)
    trace_b = sim_b.run(max_cycles)
    diffs: List[str] = []
    for name in sorted(set(trace_a.outputs) | set(trace_b.outputs)):
        diffs.extend(
            _diff_sequences("output", name, trace_a.lane(name), trace_b.lane(name))
        )
    buffers_a = sim_a.evaluator.buffers
    buffers_b = sim_b.evaluator.buffers
    for name in sorted(set(buffers_a) | set(buffers_b)):
        diffs.extend(
            _diff_sequences(
                "buffer", name, buffers_a.get(name, []), buffers_b.get(name, [])
            )
        )
    return diffs
