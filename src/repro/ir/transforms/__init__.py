"""The transform pass library: named, parameterized design rewrites.

Importing this package registers every concrete transform; see
:mod:`repro.ir.transforms.base` for the model.
"""

from repro.ir.transforms.base import (
    EMPTY_PLAN,
    PLAN_SCHEMA,
    Transform,
    TransformPlan,
    all_candidates,
    register_transform,
    transform_names,
    transform_type,
)
from repro.ir.transforms.equiv import default_stimuli, equivalence_diffs
from repro.ir.transforms.reuse import ReuseTransform
from repro.ir.transforms.stream import StreamTransform
from repro.ir.transforms.tile import TileTransform
from repro.ir.transforms.unroll import UnrollTransform
from repro.ir.transforms.widen import WidenTransform

__all__ = [
    "EMPTY_PLAN",
    "PLAN_SCHEMA",
    "Transform",
    "TransformPlan",
    "all_candidates",
    "default_stimuli",
    "equivalence_diffs",
    "register_transform",
    "transform_names",
    "transform_type",
    "ReuseTransform",
    "StreamTransform",
    "TileTransform",
    "UnrollTransform",
    "WidenTransform",
]
