"""Operations of the HLS IR and their static metadata.

The opcode set mirrors the LLVM-level instructions that appear in Vivado HLS
schedule reports (the paper parses exactly those): integer/float arithmetic,
comparisons, selects, memory and FIFO accesses, plus a few structural opcodes
(``REG`` for explicitly inserted register stages — the paper's "register
modules" — and ``CALL`` for sub-module instances whose synchronization §4.2
prunes).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.errors import IRError, TypeMismatchError
from repro.ir.types import DataType, common_type, i1
from repro.ir.values import Value


class Opcode(enum.Enum):
    """Every operation kind the scheduler and netlist generator understand."""

    # Arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    # Bitwise / shifts
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    # Comparisons (result is i1)
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    # Ternary select: select(cond, a, b)
    SELECT = "select"
    # Width adjustment
    TRUNC = "trunc"
    ZEXT = "zext"
    SEXT = "sext"
    # Memory (attrs carry the Buffer)
    LOAD = "load"
    STORE = "store"
    # Streaming (attrs carry the Fifo)
    FIFO_READ = "fifo_read"
    FIFO_WRITE = "fifo_write"
    # Structural
    CONST = "const"
    REG = "reg"  # explicit pipeline register ("register module", §4.1)
    CALL = "call"  # sub-module instance with attrs["latency"]

    def __str__(self) -> str:
        return self.value


#: Opcodes whose result is a fresh boolean regardless of operand widths.
CMP_OPS = frozenset({Opcode.EQ, Opcode.NE, Opcode.LT, Opcode.LE, Opcode.GT, Opcode.GE})

#: Two-operand arithmetic opcodes.
BINARY_ARITH_OPS = frozenset({Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV})

#: Bitwise opcodes with two operands.
BINARY_LOGIC_OPS = frozenset({Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR})

#: Opcodes with observable side effects: never dead-code-eliminated, and the
#: anchors ("elementary flow control units", §4.2) of the dataflow graph.
SIDE_EFFECT_OPS = frozenset(
    {Opcode.STORE, Opcode.FIFO_WRITE, Opcode.FIFO_READ, Opcode.LOAD, Opcode.CALL}
)

#: Opcodes that touch a FIFO and therefore participate in flow control.
FIFO_OPS = frozenset({Opcode.FIFO_READ, Opcode.FIFO_WRITE})

#: Opcodes that touch a memory buffer.
MEM_OPS = frozenset({Opcode.LOAD, Opcode.STORE})

_ARITY: Dict[Opcode, int] = {
    Opcode.ADD: 2,
    Opcode.SUB: 2,
    Opcode.MUL: 2,
    Opcode.DIV: 2,
    Opcode.AND: 2,
    Opcode.OR: 2,
    Opcode.XOR: 2,
    Opcode.NOT: 1,
    Opcode.SHL: 2,
    Opcode.SHR: 2,
    Opcode.EQ: 2,
    Opcode.NE: 2,
    Opcode.LT: 2,
    Opcode.LE: 2,
    Opcode.GT: 2,
    Opcode.GE: 2,
    Opcode.SELECT: 3,
    Opcode.TRUNC: 1,
    Opcode.ZEXT: 1,
    Opcode.SEXT: 1,
    Opcode.LOAD: 1,  # address
    Opcode.STORE: 2,  # address, data
    Opcode.FIFO_READ: 0,
    Opcode.FIFO_WRITE: 1,
    Opcode.CONST: 0,
    Opcode.REG: 1,
    # CALL arity is free-form.
}


class Operation:
    """One node of the dataflow graph.

    Attributes:
        opcode: The :class:`Opcode`.
        operands: Input :class:`Value` list (order matters).
        result: Output value, or ``None`` for pure sinks (store/fifo_write).
        attrs: Opcode-specific attributes — ``buffer`` for LOAD/STORE,
            ``fifo`` for FIFO ops, ``latency``/``dynamic_latency``/``callee``
            for CALL, ``value`` for CONST.
        name: Unique name assigned by the owning DFG.
    """

    __slots__ = ("opcode", "operands", "result", "attrs", "name")

    def __init__(
        self,
        opcode: Opcode,
        operands: List[Value],
        result: Optional[Value],
        attrs: Optional[dict] = None,
        name: str = "",
    ) -> None:
        self.opcode = opcode
        self.operands = list(operands)
        self.result = result
        self.attrs = dict(attrs or {})
        self.name = name
        _check_operation(self)
        for operand in self.operands:
            operand.add_use(self)
        if result is not None:
            result.producer = self

    @property
    def is_side_effecting(self) -> bool:
        return self.opcode in SIDE_EFFECT_OPS

    @property
    def is_combinational(self) -> bool:
        """True when the op is pure combinational logic in the datapath.

        LOAD is sequential (BRAM output register); REG and CALL are
        sequential by construction.
        """
        return self.opcode not in (
            Opcode.LOAD,
            Opcode.REG,
            Opcode.CALL,
            Opcode.FIFO_READ,
            Opcode.FIFO_WRITE,
            Opcode.STORE,
        )

    @property
    def latency(self) -> int:
        """Intrinsic latency in cycles beyond the issue cycle.

        Combinational ops have latency 0 (they chain); LOAD and REG take one
        cycle; CALL takes ``attrs['latency']`` cycles.
        """
        if self.opcode is Opcode.CALL:
            return int(self.attrs.get("latency", 1))
        if self.opcode in (Opcode.LOAD, Opcode.REG):
            return 1
        return 0

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` in the operand list.

        Returns the number of slots replaced and maintains use lists.
        """
        count = 0
        for i, operand in enumerate(self.operands):
            if operand is old:
                self.operands[i] = new
                count += 1
        if count:
            new.add_use(self)
            old.remove_use(self)
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        res = f"{self.result.name} = " if self.result is not None else ""
        args = ", ".join(v.name for v in self.operands)
        return f"<{res}{self.opcode}({args})>"


def _check_operation(op: Operation) -> None:
    """Structural and type validation applied at construction time."""
    expected = _ARITY.get(op.opcode)
    if expected is not None and len(op.operands) != expected:
        raise IRError(
            f"{op.opcode} expects {expected} operands, got {len(op.operands)}"
        )
    if op.opcode in BINARY_ARITH_OPS:
        a, b = (v.type for v in op.operands)
        if a.is_float != b.is_float:
            raise TypeMismatchError(f"{op.opcode} mixes float and int: {a} vs {b}")
        if op.result is not None and op.result.type != common_type(a, b):
            raise TypeMismatchError(
                f"{op.opcode} result type {op.result.type} != {common_type(a, b)}"
            )
    if op.opcode in CMP_OPS and op.result is not None and op.result.type != i1:
        raise TypeMismatchError(f"comparison result must be i1, got {op.result.type}")
    if op.opcode is Opcode.SELECT:
        cond, a, b = op.operands
        if cond.type != i1:
            raise TypeMismatchError(f"select condition must be i1, got {cond.type}")
        if a.type != b.type:
            raise TypeMismatchError(f"select arms differ: {a.type} vs {b.type}")
    if op.opcode in MEM_OPS and "buffer" not in op.attrs:
        raise IRError(f"{op.opcode} requires attrs['buffer']")
    if op.opcode in FIFO_OPS and "fifo" not in op.attrs:
        raise IRError(f"{op.opcode} requires attrs['fifo']")
    if op.opcode is Opcode.CALL and "latency" not in op.attrs:
        raise IRError("call requires attrs['latency'] (use dynamic_latency=True for unknown)")
    if op.opcode is Opcode.CONST and op.result is None:
        raise IRError("const must produce a result")


def result_type_of(opcode: Opcode, operands: List[Value], explicit: Optional[DataType]) -> Optional[DataType]:
    """Infer the result type for ``opcode`` applied to ``operands``.

    ``explicit`` overrides inference (required for TRUNC/ZEXT/SEXT, CALL,
    FIFO_READ and CONST).  Sink ops return ``None``.
    """
    if opcode in (Opcode.STORE, Opcode.FIFO_WRITE):
        return None
    if explicit is not None:
        return explicit
    if opcode in CMP_OPS:
        return i1
    if opcode in BINARY_ARITH_OPS:
        return common_type(operands[0].type, operands[1].type)
    if opcode in BINARY_LOGIC_OPS or opcode in (Opcode.NOT, Opcode.REG):
        return operands[0].type
    if opcode is Opcode.SELECT:
        return operands[1].type
    if opcode is Opcode.LOAD:
        raise IRError("load result type comes from the buffer element type")
    raise IRError(f"result type of {opcode} must be given explicitly")
