"""A functional interpreter for the HLS IR.

Executes one iteration of a loop body over concrete values, with FIFOs as
deques and buffers as plain lists.  Used to prove that compiler passes and
the paper's optimizations are *semantics-preserving*: unrolling, flow
splitting (§4.2), and broadcast-tree insertion must never change what a
design computes — only its timing.

Integer ops wrap to their declared width (two's complement for signed
kinds), matching ``ap_int`` behaviour.
"""

from __future__ import annotations

import collections
from typing import Deque, Dict, List, Optional

from repro.errors import SimulationError
from repro.ir.dfg import DFG
from repro.ir.ops import Opcode, Operation
from repro.ir.types import DataType
from repro.ir.values import Value


def _wrap(value: float, dtype: DataType):
    """Clamp a raw python result to the IR type's domain."""
    if dtype.is_float:
        return float(value)
    mask = (1 << dtype.width) - 1
    raw = int(value) & mask
    if dtype.is_signed and raw >= (1 << (dtype.width - 1)):
        raw -= 1 << dtype.width
    return raw


class Evaluator:
    """Evaluates DFGs against shared FIFO/buffer state.

    Attributes:
        fifos: name → deque (reads pop left, writes append right).
        buffers: name → list (index clamped into range).
        call_impls: callee name → python callable for CALL ops; defaults to
            identity on the first operand.
    """

    def __init__(
        self,
        fifos: Optional[Dict[str, Deque]] = None,
        buffers: Optional[Dict[str, List]] = None,
        call_impls: Optional[Dict[str, object]] = None,
    ) -> None:
        self.fifos = fifos if fifos is not None else {}
        self.buffers = buffers if buffers is not None else {}
        self.call_impls = call_impls or {}

    # ------------------------------------------------------------------
    def can_fire(self, dfg: DFG) -> bool:
        """All FIFO reads satisfiable and writes have space right now."""
        needed: Dict[str, int] = {}
        written: Dict[str, tuple] = {}  # name -> (count, Fifo)
        for op in dfg.ops:
            if op.opcode is Opcode.FIFO_READ:
                fifo = op.attrs["fifo"]
                needed[fifo.name] = needed.get(fifo.name, 0) + 1
            elif op.opcode is Opcode.FIFO_WRITE:
                fifo = op.attrs["fifo"]
                count, _ = written.get(fifo.name, (0, fifo))
                written[fifo.name] = (count + 1, fifo)
        for name, count in needed.items():
            if len(self.fifos.get(name, ())) < count:
                return False
        for name, (count, fifo) in written.items():
            if not fifo.external and len(self.fifos.get(name, ())) + count > fifo.depth:
                return False
        return True

    def run(self, dfg: DFG, inputs: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """Execute one iteration; returns every computed value by name."""
        env: Dict[Value, object] = {}
        inputs = inputs or {}
        for value in dfg.inputs:
            base = value.name.split("#")[0]
            if value.name in inputs:
                env[value] = inputs[value.name]
            elif base in inputs:
                env[value] = inputs[base]
            else:
                env[value] = 0
        for op in dfg.topo_order():
            result = self._eval_op(op, env)
            if op.result is not None:
                env[op.result] = result
        return {v.name: val for v, val in env.items()}

    # ------------------------------------------------------------------
    def _operands(self, op: Operation, env) -> List[object]:
        out = []
        for operand in op.operands:
            if operand.is_const and operand not in env:
                out.append(operand.const)
            else:
                out.append(env[operand])
        return out

    def _eval_op(self, op: Operation, env):
        code = op.opcode
        if code is Opcode.CONST:
            return op.attrs["value"]
        args = self._operands(op, env)
        dtype = op.result.type if op.result is not None else None

        if code is Opcode.ADD:
            return _wrap(args[0] + args[1], dtype)
        if code is Opcode.SUB:
            return _wrap(args[0] - args[1], dtype)
        if code is Opcode.MUL:
            return _wrap(args[0] * args[1], dtype)
        if code is Opcode.DIV:
            if args[1] == 0:
                raise SimulationError(f"{op.name}: division by zero")
            if dtype is not None and dtype.is_float:
                return _wrap(args[0] / args[1], dtype)
            quotient = abs(int(args[0])) // abs(int(args[1]))
            sign = -1 if (args[0] < 0) != (args[1] < 0) else 1
            return _wrap(sign * quotient, dtype)
        if code is Opcode.AND:
            return _wrap(int(args[0]) & int(args[1]), dtype)
        if code is Opcode.OR:
            return _wrap(int(args[0]) | int(args[1]), dtype)
        if code is Opcode.XOR:
            return _wrap(int(args[0]) ^ int(args[1]), dtype)
        if code is Opcode.NOT:
            return _wrap(~int(args[0]), dtype)
        if code is Opcode.SHL:
            # Any shift >= width yields 0 after masking; clamping keeps the
            # intermediate bounded (a fuzzed 2^31 shift amount must not
            # materialize a billion-bit integer on the way to that 0).
            shift = min(max(0, int(args[1])), dtype.width)
            return _wrap(int(args[0]) << shift, dtype)
        if code is Opcode.SHR:
            shift = min(max(0, int(args[1])), dtype.width)
            return _wrap(int(args[0]) >> shift, dtype)
        if code is Opcode.EQ:
            return 1 if args[0] == args[1] else 0
        if code is Opcode.NE:
            return 1 if args[0] != args[1] else 0
        if code is Opcode.LT:
            return 1 if args[0] < args[1] else 0
        if code is Opcode.LE:
            return 1 if args[0] <= args[1] else 0
        if code is Opcode.GT:
            return 1 if args[0] > args[1] else 0
        if code is Opcode.GE:
            return 1 if args[0] >= args[1] else 0
        if code is Opcode.SELECT:
            return args[1] if args[0] else args[2]
        if code is Opcode.TRUNC:
            lsb = int(op.attrs.get("lsb", 0))
            return _wrap(int(args[0]) >> lsb, dtype)
        if code in (Opcode.ZEXT, Opcode.SEXT):
            return _wrap(args[0], dtype)
        if code is Opcode.REG:
            return args[0]
        if code is Opcode.LOAD:
            data = self.buffers.setdefault(op.attrs["buffer"].name, [0] * op.attrs["buffer"].depth)
            return data[int(args[0]) % len(data)]
        if code is Opcode.STORE:
            buffer = op.attrs["buffer"]
            data = self.buffers.setdefault(buffer.name, [0] * buffer.depth)
            data[int(args[0]) % len(data)] = args[1]
            return None
        if code is Opcode.FIFO_READ:
            queue = self.fifos.setdefault(op.attrs["fifo"].name, collections.deque())
            if not queue:
                raise SimulationError(f"{op.name}: read from empty fifo")
            return queue.popleft()
        if code is Opcode.FIFO_WRITE:
            queue = self.fifos.setdefault(op.attrs["fifo"].name, collections.deque())
            queue.append(args[0])
            return None
        if code is Opcode.CALL:
            impl = self.call_impls.get(op.attrs.get("callee"))
            if impl is not None:
                return impl(*args)
            return args[0] if args else 0
        raise SimulationError(f"no interpreter rule for {code}")  # pragma: no cover
