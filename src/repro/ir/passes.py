"""Front-end compiler passes that shape the broadcast structures.

The paper's data broadcasts are *created* by these lowerings:

* :func:`unroll_loop` replicates a loop body; values defined outside the
  unrolled region (marked ``loop_invariant``) are shared across all copies
  and acquire a fanout equal to the unroll factor — exactly Fig. 1/2.
* :func:`apply_pragmas` runs unrolling over a whole design.

Classic clean-up passes (:func:`dce`, :func:`cse`) are also provided; HLS
front-ends run them before scheduling, and CSE in particular *increases*
fanout by merging duplicate producers, which matters for broadcast analysis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import IRError
from repro.ir.dfg import DFG
from repro.ir.ops import Opcode, Operation
from repro.ir.program import Design, Loop
from repro.ir.values import Value


def unroll_loop(loop: Loop, factor: Optional[int] = None) -> Loop:
    """Unroll ``loop`` by ``factor`` (default: its pragma factor).

    Replication policy, mirroring HLS:

    * ``loop_invariant`` inputs are **shared** by every copy — this is the
      broadcast source;
    * other inputs get a per-copy instance (``name#k``), modelling values
      such as ``prev[j]`` that differ per iteration;
    * every operation is replicated with its attributes (buffer/fifo refs
      are shared objects, so bank fanout accumulates naturally).

    Returns a new :class:`Loop` with ``unroll == 1`` and the trip count
    divided by the factor.
    """
    factor = factor if factor is not None else loop.unroll
    if factor <= 0:
        raise IRError(f"unroll factor must be positive, got {factor}")
    if factor == 1:
        return loop
    if loop.trip_count is not None and loop.trip_count % factor != 0:
        raise IRError(
            f"loop {loop.name!r}: trip count {loop.trip_count} "
            f"not divisible by unroll factor {factor}"
        )

    merged = DFG(f"{loop.body.name}_x{factor}")
    shared: Dict[str, Value] = {}
    for value in loop.body.inputs:
        if value.loop_invariant:
            new_value = merged.input(value.name, value.type, loop_invariant=True)
            shared[value.name] = new_value

    # Ops marked ``unroll_shared`` execute once per (post-unroll) iteration
    # and feed every copy — e.g. a single FIFO read whose element an entire
    # PE row consumes.  Their results become broadcast sources exactly like
    # loop-invariant inputs.
    shared_results: Dict[Value, Value] = {}

    def _shared_operand(value: Value) -> Value:
        if value in shared_results:
            return shared_results[value]
        if not value.is_const and value.name in shared:
            return shared[value.name]
        if value.is_const:
            mapped = merged.const(value.const, value.type, name=value.name)
            shared_results[value] = mapped
            return mapped
        raise IRError(
            f"unroll_shared op depends on per-iteration value {value.name!r}"
        )

    for op in loop.body.ops:
        if not op.attrs.get("unroll_shared"):
            continue
        new_op = merged.add_op(
            op.opcode,
            [_shared_operand(v) for v in op.operands],
            result_type=op.result.type if op.result is not None else None,
            attrs=dict(op.attrs),
            name=op.result.name if op.result is not None else None,
        )
        if op.result is not None:
            shared_results[op.result] = new_op.result
            shared_results[op.result].loop_invariant = True

    for k in range(factor):
        mapping: Dict[Value, Value] = dict(shared_results)
        for value in loop.body.inputs:
            if value.loop_invariant:
                mapping[value] = shared[value.name]
            else:
                mapping[value] = merged.input(f"{value.name}#{k}", value.type)
        for op in loop.body.ops:
            if op.attrs.get("unroll_shared"):
                continue
            if op.opcode is Opcode.CONST:
                # Constants are free to duplicate; keep one per copy for
                # naming clarity (netlist generation merges them anyway).
                mapping[op.result] = merged.const(
                    op.attrs["value"], op.result.type, name=f"{op.result.name}#{k}"
                )
                continue
            attrs = dict(op.attrs)
            if attrs.get("bank_group") == "per_copy":
                # Partitioned-array accesses: copy k touches bank group k of
                # the buffer (cyclic partitioning by the unroll factor).
                attrs["bank_group"] = (k, factor)
            new_op = merged.add_op(
                op.opcode,
                [mapping[v] for v in op.operands],
                result_type=op.result.type if op.result is not None else None,
                attrs=attrs,
                name=f"{op.result.name}#{k}" if op.result is not None else None,
            )
            if op.result is not None:
                mapping[op.result] = new_op.result

    merged.verify()
    new_trip = None if loop.trip_count is None else loop.trip_count // factor
    return Loop(
        name=loop.name,
        body=merged,
        trip_count=new_trip,
        pipeline=loop.pipeline,
        ii=loop.ii,
        unroll=1,
    )


def apply_pragmas(design: Design) -> Design:
    """Lower all pragma-level transformations of a design (currently unroll).

    Operates on a clone; the input design is untouched.
    """
    lowered = design.clone()
    for kernel in lowered.kernels:
        kernel.loops = [
            unroll_loop(loop) if loop.unroll > 1 else loop for loop in kernel.loops
        ]
    lowered.verify()
    return lowered


def dce(dfg: DFG, keep: Optional[set] = None) -> int:
    """Dead-code elimination: drop pure ops whose results are unused.

    Liveness roots are side-effecting ops plus any value named in ``keep``
    (the design's outputs — the DFG itself cannot tell a live-out from a
    dead temporary, so callers must say which unused values escape).

    Returns the number of operations removed.  Iterates to a fixed point so
    whole dead chains disappear.
    """
    keep = keep or set()
    removed = 0
    changed = True
    while changed:
        changed = False
        for op in list(dfg.ops):
            if op.is_side_effecting:
                continue
            if op.result is not None and op.result.name in keep:
                continue
            if op.result is not None and not op.result.uses:
                dfg.remove_op(op)
                removed += 1
                changed = True
    return removed


def _cse_key(op: Operation) -> Optional[Tuple]:
    """Hashable identity of a pure operation, or None if not CSE-able.

    The key must cover everything that feeds the computed value: opcode and
    operands, but also the result type (``zext`` of one value to two widths
    is two different ops) and the attributes (``slice_`` encodes its bit
    position in ``attrs['lsb']``).  Merging on opcode+operands alone is a
    miscompile the differential fuzzer catches immediately.
    """
    if op.is_side_effecting or op.opcode is Opcode.REG:
        return None
    if op.opcode is Opcode.CONST:
        return (op.opcode, op.result.type, repr(op.attrs.get("value")))
    attrs = tuple(sorted((k, repr(v)) for k, v in op.attrs.items()))
    result_type = op.result.type if op.result is not None else None
    return (op.opcode, result_type, attrs, tuple(id(v) for v in op.operands))


def cse(dfg: DFG) -> int:
    """Common-subexpression elimination over pure ops.

    Returns the number of operations merged away.  Note the timing
    side-effect the paper cares about: merging duplicated producers
    concentrates fanout on the survivor, raising its broadcast factor.
    """
    merged = 0
    seen: Dict[Tuple, Operation] = {}
    for op in list(dfg.ops):
        key = _cse_key(op)
        if key is None:
            continue
        keeper = seen.get(key)
        if keeper is None:
            seen[key] = op
            continue
        assert op.result is not None and keeper.result is not None
        for user in list(op.result.uses):
            user.replace_operand(op.result, keeper.result)
        dfg.remove_op(op)
        merged += 1
    return merged


def loop_invariant_inputs(dfg: DFG) -> List[Value]:
    """Inputs flagged loop-invariant — the §3.1 broadcast source candidates."""
    return [v for v in dfg.inputs if v.loop_invariant]
