"""Source-level broadcast tree construction.

§4.1 discusses this alternative: "Another potential option is to
explicitly construct a broadcast tree in the source code to deal with huge
broadcasts. However, it is difficult to model the influence of different
tree topologies on the black-box physical design process. Our extensive
experimental experiences also show that it is better to let the physical
design tools handle the register duplication during placement."

We implement the option anyway so the claim can be tested:
:func:`build_broadcast_tree` replaces a high-fanout value with a balanced
tree of explicit register stages, each serving a bounded number of
consumers.  The ablation bench compares it against leaving duplication to
the backend (the default), reproducing the paper's conclusion that the
fixed source-level topology is not better.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.errors import IRError
from repro.ir.dfg import DFG
from repro.ir.ops import Opcode, Operation
from repro.ir.values import Value


def build_broadcast_tree(
    dfg: DFG,
    value: Value,
    arity: int = 4,
    levels: Optional[int] = None,
) -> int:
    """Fan ``value`` out through an explicit register tree.

    Args:
        dfg: Graph to edit in place.
        value: The broadcast source (must belong to ``dfg``).
        arity: Maximum consumers per tree node.
        levels: Force a tree depth (default: enough levels so no node
            exceeds ``arity`` consumers).

    Returns the number of REG stages inserted.  Each inserted level adds a
    cycle of latency for the rewired consumers, exactly like hand-written
    ``register`` pragmas in HLS source.

    Raises :class:`IRError` for foreign or unconsumed values.
    """
    if dfg.values.get(value.name) is not value:
        raise IRError(f"value {value.name!r} does not belong to DFG {dfg.name!r}")
    consumers = list(value.uses)
    if not consumers:
        raise IRError(f"value {value.name!r} has no consumers to tree up")
    if arity < 2:
        raise IRError("broadcast tree arity must be at least 2")

    needed = max(1, math.ceil(math.log(max(len(consumers), 2), arity)))
    depth = levels if levels is not None else needed
    inserted = 0

    # Build the tree top-down: at each level, split the current consumer
    # groups into `arity` chunks and give each chunk its own register copy.
    groups: List[List[Operation]] = [consumers]
    sources: List[Value] = [value]
    for level in range(depth):
        next_groups: List[List[Operation]] = []
        next_sources: List[Value] = []
        for source, group in zip(sources, groups):
            if len(group) <= 1 and level > 0:
                next_groups.append(group)
                next_sources.append(source)
                continue
            chunk = max(1, math.ceil(len(group) / arity))
            for start in range(0, len(group), chunk):
                sub = group[start : start + chunk]
                reg_op = dfg.insert_reg_after(
                    source, consumers=sub, name=f"{value.name}_bt{level}_{start // chunk}"
                )
                inserted += 1
                next_groups.append(sub)
                next_sources.append(reg_op.result)
        groups = next_groups
        sources = next_sources
    dfg.verify()
    return inserted


def tree_fanout_profile(dfg: DFG, value_name: str) -> List[int]:
    """Fanouts along a built tree, root first (for tests/inspection)."""
    profile: List[int] = []
    frontier = [dfg.values[value_name]]
    while frontier:
        profile.append(max(v.fanout for v in frontier))
        next_frontier: List[Value] = []
        for v in frontier:
            for use in v.uses:
                if use.opcode is Opcode.REG and use.result is not None:
                    next_frontier.append(use.result)
        frontier = next_frontier
    return profile
