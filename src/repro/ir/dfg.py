"""The dataflow graph (DFG): one per loop body.

A DFG is an acyclic graph of :class:`~repro.ir.ops.Operation` nodes over SSA
:class:`~repro.ir.values.Value` edges.  Construction order is definition
order, so the op list is always a valid topological order — the scheduler
relies on this.

The DFG also hosts the surgical edits the paper's optimizations perform:
:meth:`DFG.insert_reg_after` realizes the "insert register modules to the
source code" step of broadcast-aware scheduling (§4.1).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import IRError, VerificationError
from repro.ir.ops import (
    FIFO_OPS,
    MEM_OPS,
    SIDE_EFFECT_OPS,
    Opcode,
    Operation,
    result_type_of,
)
from repro.ir.types import DataType
from repro.ir.values import Value


class DFG:
    """A mutable dataflow graph with unique value/op naming.

    Typical construction goes through :class:`repro.ir.builder.DFGBuilder`;
    the raw interface below is what passes and tests use.
    """

    def __init__(self, name: str = "dfg") -> None:
        self.name = name
        self.ops: List[Operation] = []
        self.values: Dict[str, Value] = {}
        self._counters: Counter = Counter()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _unique(self, stem: str) -> str:
        """Return ``stem`` if free, else ``stem.N`` with increasing N."""
        if stem not in self.values and stem not in self._counters:
            self._counters[stem] = 0
            return stem
        self._counters[stem] += 1
        candidate = f"{stem}.{self._counters[stem]}"
        while candidate in self.values:
            self._counters[stem] += 1
            candidate = f"{stem}.{self._counters[stem]}"
        return candidate

    def input(self, name: str, type: DataType, loop_invariant: bool = False) -> Value:
        """Declare a graph input (live-in from outside the loop body)."""
        value = Value(self._unique(name), type)
        value.loop_invariant = loop_invariant
        self.values[value.name] = value
        return value

    def const(self, py_value: object, type: DataType, name: str = "c") -> Value:
        """Declare a constant value (zero hardware cost, no broadcast risk)."""
        value = Value(self._unique(name), type, const=py_value)
        self.values[value.name] = value
        op = Operation(Opcode.CONST, [], value, {"value": py_value}, name=self._unique(f"op_{name}"))
        self.ops.append(op)
        return value

    def add_op(
        self,
        opcode: Opcode,
        operands: Sequence[Value],
        result_type: Optional[DataType] = None,
        attrs: Optional[dict] = None,
        name: Optional[str] = None,
    ) -> Operation:
        """Append an operation; infers the result type when possible.

        Returns the :class:`Operation`; its ``result`` is the new value (or
        ``None`` for sink ops).
        """
        operands = list(operands)
        for operand in operands:
            if self.values.get(operand.name) is not operand:
                raise IRError(f"operand {operand.name!r} does not belong to DFG {self.name!r}")
        attrs = dict(attrs or {})
        if opcode is Opcode.LOAD:
            result_type = attrs["buffer"].elem_type if "buffer" in attrs else result_type
        inferred = result_type_of(opcode, operands, result_type)
        result = None
        if inferred is not None:
            stem = name or opcode.value
            result = Value(self._unique(stem), inferred)
            self.values[result.name] = result
        op = Operation(
            opcode,
            operands,
            result,
            attrs,
            name=self._unique(f"op_{name or opcode.value}"),
        )
        self.ops.append(op)
        return op

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> List[Value]:
        """Graph inputs in declaration order."""
        return [v for v in self.values.values() if v.is_input]

    @property
    def outputs(self) -> List[Value]:
        """Values with no consumers inside the graph (live-outs)."""
        return [
            v
            for v in self.values.values()
            if not v.uses and v.producer is not None
        ]

    def consumers(self, value: Value) -> List[Operation]:
        """Operations reading ``value`` (each listed once)."""
        return list(value.uses)

    def fanout(self, value: Value) -> int:
        """Physical sink-pin count of ``value`` — the broadcast factor."""
        return value.fanout

    def op_index(self) -> Dict[Operation, int]:
        return {op: i for i, op in enumerate(self.ops)}

    def topo_order(self) -> List[Operation]:
        """Operations in a valid topological order (construction order)."""
        return list(self.ops)

    def predecessors(self, op: Operation) -> List[Operation]:
        """Producing operations of ``op``'s operands (constants included)."""
        preds = []
        for operand in op.operands:
            if operand.producer is not None:
                preds.append(operand.producer)
        return preds

    def successors(self, op: Operation) -> List[Operation]:
        if op.result is None:
            return []
        return list(op.result.uses)

    def broadcast_sources(self, threshold: int = 2) -> List[Tuple[Value, int]]:
        """Values with fanout >= ``threshold``, sorted by descending fanout.

        These are the candidate data-broadcast sources of §3.1.
        """
        pairs = [
            (v, v.fanout) for v in self.values.values() if v.fanout >= threshold
        ]
        pairs.sort(key=lambda item: (-item[1], item[0].name))
        return pairs

    # ------------------------------------------------------------------
    # Mutation used by optimization passes
    # ------------------------------------------------------------------
    def insert_reg_after(
        self,
        value: Value,
        consumers: Optional[Iterable[Operation]] = None,
        name: Optional[str] = None,
    ) -> Operation:
        """Insert an explicit register stage on ``value``.

        All of ``consumers`` (default: every current consumer) are rewired to
        read the registered copy instead.  This is the IR-level equivalent of
        the paper's source-level "register module" insertion: it forces the
        scheduler to place the rewired consumers at least one cycle later.
        """
        targets = list(consumers) if consumers is not None else list(value.uses)
        for target in targets:
            if value not in target.operands:
                raise IRError(f"{target.name} does not consume {value.name}")
        reg_op = self.add_op(Opcode.REG, [value], name=name or f"{value.name}_reg")
        assert reg_op.result is not None
        for target in targets:
            target.replace_operand(value, reg_op.result)
        # Keep topological validity: the REG was appended at the end, but its
        # consumers may appear earlier in the op list.  Re-sort locally.
        self._restore_topo_order()
        return reg_op

    def remove_op(self, op: Operation) -> None:
        """Remove an operation whose result is unused."""
        if op.result is not None and op.result.uses:
            raise IRError(f"cannot remove {op.name}: result still used")
        self.ops.remove(op)
        for operand in op.operands:
            if op in operand.uses:
                operand.uses.remove(op)
        if op.result is not None:
            del self.values[op.result.name]

    def _restore_topo_order(self) -> None:
        """Stable-re-sort ``self.ops`` into topological order.

        Value edges alone under-constrain side-effecting ops: a STORE and a
        later LOAD of the same buffer (or two reads of one FIFO) are ordered
        by *program order*, not by any SSA edge, so a purely value-driven
        sort may legally hoist the LOAD above the STORE and change what it
        reads.  Side-effecting ops are therefore chained with explicit
        ordering edges that pin their current relative order.
        """
        indegree: Dict[Operation, int] = {}
        for op in self.ops:
            indegree[op] = 0
        ordering: Dict[Operation, List[Operation]] = {}
        previous: Optional[Operation] = None
        for op in self.ops:
            if op.opcode in SIDE_EFFECT_OPS:
                if previous is not None:
                    ordering.setdefault(previous, []).append(op)
                previous = op

        def successors_of(op: Operation) -> List[Operation]:
            return self.successors(op) + ordering.get(op, [])

        for op in self.ops:
            for succ in successors_of(op):
                if succ in indegree:
                    indegree[succ] += 1
        ready = [op for op in self.ops if indegree[op] == 0]
        order: List[Operation] = []
        position = self.op_index()
        while ready:
            ready.sort(key=lambda o: position[o])
            op = ready.pop(0)
            order.append(op)
            for succ in successors_of(op):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.ops):
            raise VerificationError(f"cycle detected in DFG {self.name!r}")
        self.ops = order

    # ------------------------------------------------------------------
    # Validation & cloning
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Raise :class:`VerificationError` on any structural inconsistency."""
        seen: Set[str] = set()
        defined: Set[Value] = {v for v in self.values.values() if v.is_input}
        for op in self.ops:
            if op.name in seen:
                raise VerificationError(f"duplicate op name {op.name!r}")
            seen.add(op.name)
            for operand in op.operands:
                if self.values.get(operand.name) is not operand:
                    raise VerificationError(
                        f"{op.name} uses foreign value {operand.name!r}"
                    )
                if operand not in defined and not operand.is_const:
                    raise VerificationError(
                        f"{op.name} uses {operand.name!r} before definition"
                    )
                if op not in operand.uses:
                    raise VerificationError(
                        f"use list of {operand.name!r} is missing {op.name}"
                    )
            if op.result is not None:
                if op.result.producer is not op:
                    raise VerificationError(
                        f"producer link of {op.result.name!r} is stale"
                    )
                defined.add(op.result)
        for value in self.values.values():
            if value.is_const:
                defined.add(value)
        for value in self.values.values():
            if value not in defined and value.uses:
                raise VerificationError(f"value {value.name!r} is never defined")

    def clone(self, name: Optional[str] = None) -> "DFG":
        """Deep-copy the graph (fresh Value/Operation objects, same names)."""
        copy = DFG(name or self.name)
        mapping: Dict[Value, Value] = {}
        for value in self.values.values():
            if value.is_input:
                new_value = copy.input(value.name, value.type)
                new_value.loop_invariant = value.loop_invariant
                mapping[value] = new_value
        for op in self.ops:
            if op.opcode is Opcode.CONST:
                mapping[op.result] = copy.const(
                    op.attrs["value"], op.result.type, name=op.result.name
                )
                continue
            new_operands = [mapping[v] for v in op.operands]
            new_op = copy.add_op(
                op.opcode,
                new_operands,
                result_type=op.result.type if op.result is not None else None,
                attrs=dict(op.attrs),
                name=op.result.name if op.result is not None else None,
            )
            if op.result is not None:
                mapping[op.result] = new_op.result
        return copy

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def count(self, opcode: Opcode) -> int:
        return sum(1 for op in self.ops if op.opcode is opcode)

    def mem_ops(self) -> List[Operation]:
        return [op for op in self.ops if op.opcode in MEM_OPS]

    def fifo_ops(self) -> List[Operation]:
        return [op for op in self.ops if op.opcode in FIFO_OPS]

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DFG {self.name!r}: {len(self.ops)} ops, {len(self.values)} values>"
