"""SSA values flowing through the dataflow graph.

A :class:`Value` is produced exactly once — by a graph input, a constant, or
an operation — and may be consumed by any number of operations.  The number
of *consumers in the same clock cycle* is the "broadcast factor" the paper's
calibration keys on, so values track their uses explicitly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.ir.types import DataType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.ir.ops import Operation


class Value:
    """A typed SSA value.

    Attributes:
        name: Unique (within a DFG) human-readable name, e.g. ``curr_x``.
        type: Scalar :class:`DataType`.
        producer: The :class:`Operation` that defines this value, or ``None``
            for graph inputs and free-standing constants.
        const: Python-level constant payload when this value is a constant.
        loop_invariant: Marked by the unroller on values defined outside the
            unrolled region — the classic data-broadcast sources of Fig. 1.
    """

    __slots__ = ("name", "type", "producer", "uses", "const", "loop_invariant")

    def __init__(
        self,
        name: str,
        type: DataType,
        producer: Optional["Operation"] = None,
        const: Optional[object] = None,
    ) -> None:
        self.name = name
        self.type = type
        self.producer = producer
        self.const = const
        self.uses: List["Operation"] = []
        self.loop_invariant = False

    @property
    def is_const(self) -> bool:
        return self.const is not None

    @property
    def is_input(self) -> bool:
        """True for values not produced by any operation (graph inputs)."""
        return self.producer is None and self.const is None

    @property
    def fanout(self) -> int:
        """Number of operand slots reading this value.

        An operation using the value twice (e.g. ``mul(x, x)``) counts twice:
        each read is a physical sink pin.
        """
        return sum(op.operands.count(self) for op in self.uses)

    def add_use(self, op: "Operation") -> None:
        if op not in self.uses:
            self.uses.append(op)

    def remove_use(self, op: "Operation") -> None:
        if op in self.uses and self not in op.operands:
            self.uses.remove(op)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "const " if self.is_const else ""
        return f"<Value {tag}{self.name}:{self.type}>"
