"""Fluent construction API for dataflow graphs.

The benchmark designs (:mod:`repro.designs`) are written against this
builder so they read like the HLS C snippets in the paper:

>>> from repro.ir import DFGBuilder, i32
>>> b = DFGBuilder("body")
>>> x = b.input("x", i32, loop_invariant=True)
>>> y = b.input("y", i32)
>>> s = b.add(x, y)
>>> d = b.sub(s, b.const(1, i32))
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.dfg import DFG
from repro.ir.ops import Opcode, Operation
from repro.ir.program import Buffer, Fifo
from repro.ir.types import DataType, i1
from repro.ir.values import Value


class DFGBuilder:
    """Thin, chainable wrapper over :class:`~repro.ir.dfg.DFG`."""

    def __init__(self, name: str = "body") -> None:
        self.dfg = DFG(name)

    # -- declarations ---------------------------------------------------
    def input(self, name: str, type: DataType, loop_invariant: bool = False) -> Value:
        return self.dfg.input(name, type, loop_invariant=loop_invariant)

    def const(self, value: object, type: DataType, name: str = "c") -> Value:
        return self.dfg.const(value, type, name=name)

    # -- arithmetic -----------------------------------------------------
    def _binary(self, opcode: Opcode, a: Value, b: Value, name: Optional[str]) -> Value:
        op = self.dfg.add_op(opcode, [a, b], name=name)
        assert op.result is not None
        return op.result

    def add(self, a: Value, b: Value, name: Optional[str] = None) -> Value:
        return self._binary(Opcode.ADD, a, b, name)

    def sub(self, a: Value, b: Value, name: Optional[str] = None) -> Value:
        return self._binary(Opcode.SUB, a, b, name)

    def mul(self, a: Value, b: Value, name: Optional[str] = None) -> Value:
        return self._binary(Opcode.MUL, a, b, name)

    def div(self, a: Value, b: Value, name: Optional[str] = None) -> Value:
        return self._binary(Opcode.DIV, a, b, name)

    def and_(self, a: Value, b: Value, name: Optional[str] = None) -> Value:
        return self._binary(Opcode.AND, a, b, name)

    def or_(self, a: Value, b: Value, name: Optional[str] = None) -> Value:
        return self._binary(Opcode.OR, a, b, name)

    def xor(self, a: Value, b: Value, name: Optional[str] = None) -> Value:
        return self._binary(Opcode.XOR, a, b, name)

    def shl(self, a: Value, b: Value, name: Optional[str] = None) -> Value:
        return self._binary(Opcode.SHL, a, b, name)

    def shr(self, a: Value, b: Value, name: Optional[str] = None) -> Value:
        return self._binary(Opcode.SHR, a, b, name)

    def not_(self, a: Value, name: Optional[str] = None) -> Value:
        op = self.dfg.add_op(Opcode.NOT, [a], name=name)
        assert op.result is not None
        return op.result

    # -- comparisons & select --------------------------------------------
    def cmp(self, kind: str, a: Value, b: Value, name: Optional[str] = None) -> Value:
        kinds = {
            "eq": Opcode.EQ,
            "ne": Opcode.NE,
            "lt": Opcode.LT,
            "le": Opcode.LE,
            "gt": Opcode.GT,
            "ge": Opcode.GE,
        }
        if kind not in kinds:
            from repro.errors import IRError

            raise IRError(f"unknown comparison {kind!r}; expected one of {sorted(kinds)}")
        opcode = kinds[kind]
        op = self.dfg.add_op(opcode, [a, b], result_type=i1, name=name)
        assert op.result is not None
        return op.result

    def select(self, cond: Value, a: Value, b: Value, name: Optional[str] = None) -> Value:
        op = self.dfg.add_op(Opcode.SELECT, [cond, a, b], name=name)
        assert op.result is not None
        return op.result

    def min_(self, a: Value, b: Value, name: Optional[str] = None) -> Value:
        """``a < b ? a : b`` — expands to cmp + select like HLS does."""
        return self.select(self.cmp("lt", a, b), a, b, name=name)

    def max_(self, a: Value, b: Value, name: Optional[str] = None) -> Value:
        return self.select(self.cmp("gt", a, b), a, b, name=name)

    def abs_diff(self, a: Value, b: Value, name: Optional[str] = None) -> Value:
        """``a > b ? a - b : b - a`` (the ``dd`` idiom of Fig. 13)."""
        return self.select(self.cmp("gt", a, b), self.sub(a, b), self.sub(b, a), name=name)

    # -- width casts ------------------------------------------------------
    def slice_(
        self, a: Value, lsb: int, type: DataType, name: Optional[str] = None
    ) -> Value:
        """Constant bit-field extraction ``a[lsb +: width]``.

        Pure wiring in hardware (zero delay, zero LUTs) — how a 512-bit HBM
        word scatters into lanes.
        """
        op = self.dfg.add_op(
            Opcode.TRUNC, [a], result_type=type, attrs={"lsb": lsb}, name=name
        )
        assert op.result is not None
        return op.result

    def trunc(self, a: Value, type: DataType, name: Optional[str] = None) -> Value:
        op = self.dfg.add_op(Opcode.TRUNC, [a], result_type=type, name=name)
        assert op.result is not None
        return op.result

    def zext(self, a: Value, type: DataType, name: Optional[str] = None) -> Value:
        op = self.dfg.add_op(Opcode.ZEXT, [a], result_type=type, name=name)
        assert op.result is not None
        return op.result

    def sext(self, a: Value, type: DataType, name: Optional[str] = None) -> Value:
        op = self.dfg.add_op(Opcode.SEXT, [a], result_type=type, name=name)
        assert op.result is not None
        return op.result

    # -- memory & streaming ------------------------------------------------
    def load(self, buffer: Buffer, addr: Value, name: Optional[str] = None) -> Value:
        op = self.dfg.add_op(Opcode.LOAD, [addr], attrs={"buffer": buffer}, name=name)
        assert op.result is not None
        return op.result

    def store(self, buffer: Buffer, addr: Value, data: Value) -> Operation:
        return self.dfg.add_op(Opcode.STORE, [addr, data], attrs={"buffer": buffer})

    def fifo_read(
        self, fifo: Fifo, name: Optional[str] = None, unroll_shared: bool = False
    ) -> Value:
        """Read one element; ``unroll_shared`` reads once per post-unroll
        iteration and broadcasts the element to every unrolled copy."""
        attrs: dict = {"fifo": fifo}
        if unroll_shared:
            attrs["unroll_shared"] = True
        op = self.dfg.add_op(
            Opcode.FIFO_READ, [], result_type=fifo.elem_type, attrs=attrs, name=name
        )
        assert op.result is not None
        return op.result

    def fifo_write(self, fifo: Fifo, data: Value) -> Operation:
        return self.dfg.add_op(Opcode.FIFO_WRITE, [data], attrs={"fifo": fifo})

    # -- structural ----------------------------------------------------------
    def reg(self, a: Value, name: Optional[str] = None) -> Value:
        """Explicit one-cycle register stage (the paper's register module)."""
        op = self.dfg.add_op(Opcode.REG, [a], name=name)
        assert op.result is not None
        return op.result

    def call(
        self,
        callee: str,
        operands: Sequence[Value],
        result_type: Optional[DataType],
        latency: int,
        dynamic_latency: bool = False,
        name: Optional[str] = None,
    ) -> Operation:
        """Instantiate a sub-module (a ``PE_*()`` call of Fig. 5b).

        ``latency`` is the module latency in cycles; set ``dynamic_latency``
        when the real latency is input-dependent (this blocks §4.2 pruning,
        as in the paper).
        """
        attrs = {"callee": callee, "latency": latency, "dynamic_latency": dynamic_latency}
        return self.dfg.add_op(
            Opcode.CALL, list(operands), result_type=result_type, attrs=attrs, name=name
        )

    def reduce(self, values: Sequence[Value], op: str = "add") -> Value:
        """Balanced reduction tree, as HLS infers for ``a[0]+a[1]+...``."""
        assert values, "cannot reduce an empty sequence"
        level = list(values)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self._binary(Opcode[op.upper()], level[i], level[i + 1], None))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def build(self) -> DFG:
        """Finalize: verify and return the underlying DFG."""
        self.dfg.verify()
        return self.dfg
