"""RTL netlist generation: schedule → cells + nets.

This reproduces the HLS *RTL generation* phase the paper describes in §2:
datapath cells bound per scheduled operation, pipeline registers at every
cycle boundary, memory ports fanning out to BRAM banks, and — crucially —
the control structures whose implementation choice the paper studies:

* **stall-based pipeline control** (baseline): one combinational enable,
  aggregated from every FIFO's empty/full flags, broadcast to every
  sequential element of the loop (§3.3, Fig. 8);
* **skid-buffer control** (§4.3): a free-running valid chain, per-stage
  local enables driven by valid *registers* (replicable by the backend),
  and bounded skid FIFOs whose empty flag gates only the first stage;
* **synchronization** (§3.2): per-loop status aggregation over everything
  fused into the loop, and done-reduce/start-broadcast for parallel module
  instances — or, when §4.2 pruning marked the loop, a start signal driven
  by the longest-latency module's done register.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.control.minarea import CutPlan, end_buffer_plan, min_area_cuts
from repro.control.skid import SkidBufferSpec, fifo_area, skid_buffer_specs
from repro.control.styles import ControlStyle
from repro.control.widths import skid_width_profile
from repro.delay.tables import (
    BRAM_CLK_Q_NS,
    CLK_Q_NS,
    CTRL_CLK_Q_NS,
    FIFO_CLK_Q_NS,
    LOAD_ADDR_LOGIC_NS,
    LOAD_MUX_LOGIC_NS,
    STORE_PORT_LOGIC_NS,
    op_resources,
    physical_cell_delay,
)
from repro.errors import RTLError
from repro.ir.ops import Opcode, Operation
from repro.ir.program import Buffer, Design, Fifo, Kernel, Loop
from repro.ir.values import Value
from repro.rtl.netlist import Cell, CellKind, Netlist, NetKind
from repro.rtl.resources import ResourceReport
from repro.scheduling.schedule import Schedule

#: Comb delay of FIFO read/write port logic (dout mux, pointer compare).
FIFO_PORT_NS = 0.35
#: Base delay of a status/done aggregation gate plus per-level tree cost.
AGG_BASE_NS = 0.15
AGG_LEVEL_NS = 0.12


def _reduce_tree_delay(inputs: int) -> float:
    """Delay of an AND/OR reduce tree over ``inputs`` signals."""
    levels = max(1, math.ceil(math.log2(max(inputs, 2))))
    return AGG_BASE_NS + AGG_LEVEL_NS * levels


@dataclass
class GenOptions:
    """Generation knobs."""

    control: ControlStyle = ControlStyle.STALL
    #: Cap on the number of skid FIFOs for SKID_MINAREA (0 = unlimited).
    max_skid_buffers: int = 0


@dataclass
class LoopInfo:
    """Bookkeeping for one generated loop."""

    kernel: str
    name: str
    depth: int
    widths: List[int]
    pipeline: bool
    statuses: int = 0
    enable_fanout: int = 0
    skid_specs: List[SkidBufferSpec] = field(default_factory=list)
    seq_cells: List[Cell] = field(default_factory=list)
    stage_cells: Dict[int, List[Cell]] = field(default_factory=dict)
    first_stage_cells: List[Cell] = field(default_factory=list)
    call_cells: List[Cell] = field(default_factory=list)
    control_gate: Optional[Cell] = None


@dataclass
class GenResult:
    """Netlist plus generation metadata."""

    netlist: Netlist
    loops: List[LoopInfo]
    resources: ResourceReport
    anchor: str

    def loop(self, name: str) -> LoopInfo:
        for info in self.loops:
            if info.name == name:
                return info
        raise RTLError(f"no generated loop named {name!r}")


def generate_netlist(
    design: Design,
    schedules: Dict[Tuple[str, str], Schedule],
    options: Optional[GenOptions] = None,
    incremental: Optional[Any] = None,
) -> GenResult:
    """Generate the full-design netlist.

    ``schedules`` maps ``(kernel_name, loop_name)`` to the loop's schedule.
    The design must already be pragma-lowered (loops unrolled).

    ``incremental`` is an optional per-loop emission memo (the ``rtl``
    :class:`~repro.pipeline.incremental._LruMemo` of the flow's incremental
    state).  When set, every loop whose (content, schedule decisions,
    control options, shared buffer/fifo signature) matches a memoized loop
    is re-emitted by replaying its recorded cell/net tape — byte-identical
    names, insertion order, and :class:`LoopInfo` bookkeeping — instead of
    re-running the emitter logic.
    """
    options = options or GenOptions()
    netlist = Netlist(design.name)
    anchor = netlist.new_cell("io", CellKind.PORT, delay_ns=CLK_Q_NS, width=1)

    # Shared structural cells -------------------------------------------------
    buffer_cells: Dict[str, List[Cell]] = {}
    for buffer in design.buffers.values():
        cells = []
        for i in range(buffer.bram36_units()):
            cells.append(
                netlist.new_cell(
                    f"{buffer.name}_bram{i}",
                    CellKind.BRAM,
                    delay_ns=BRAM_CLK_Q_NS,
                    brams=1,
                    width=min(buffer.elem_type.bits, 72),
                    tag=f"buffer:{buffer.name}",
                )
            )
        buffer_cells[buffer.name] = cells

    fifo_cells: Dict[str, Cell] = {}
    for fifo in design.fifos.values():
        luts, ffs, brams = fifo_area(fifo.depth, fifo.width)
        cell = netlist.new_cell(
            f"fifo_{fifo.name}",
            CellKind.FIFO,
            delay_ns=FIFO_CLK_Q_NS,
            luts=luts,
            ffs=ffs,
            brams=brams,
            width=fifo.width,
            tag=f"fifo:{fifo.name}",
        )
        fifo_cells[fifo.name] = cell
        if fifo.external:
            # Each external interface gets its own edge pin (HBM ports /
            # AXI-Stream endpoints sit along the die edge), so independent
            # streams anchor at separate locations instead of piling onto
            # one pad.
            pad = netlist.new_cell(
                f"pad_{fifo.name}", CellKind.PORT, delay_ns=CLK_Q_NS, width=1
            )
            netlist.connect(
                f"ext_{fifo.name}", pad, [(cell, "ext")], kind=NetKind.CLOCKLESS
            )

    if incremental is not None:
        # Deferred: ``repro.pipeline`` imports this module at package init.
        from repro.pipeline.digest import loop_digest, schedule_decisions_digest
        from repro.pipeline.incremental import ensure_traced

        # Loop tapes reference the shared BRAM/FIFO cells by name, so the
        # memo key pins the shared-cell layout alongside the loop content.
        buffers_sig = tuple(sorted(
            (b.name, b.bram36_units(), b.elem_type.bits, b.depth, b.partition)
            for b in design.buffers.values()
        ))
        fifos_sig = tuple(sorted(
            (f.name, f.width, f.depth, bool(f.external))
            for f in design.fifos.values()
        ))
        guard = ensure_traced()
    else:
        guard = nullcontext()

    loop_infos: List[LoopInfo] = []
    with guard:
        for kernel in design.kernels:
            prev_ctrl: Optional[Cell] = None
            for loop in kernel.loops:
                schedule = schedules.get((kernel.name, loop.name))
                if schedule is None:
                    raise RTLError(
                        f"missing schedule for {kernel.name}/{loop.name}"
                    )
                record = incremental is not None
                emitter = _LoopEmitter(
                    netlist, design, kernel, loop, schedule, options,
                    buffer_cells, fifo_cells, record=record,
                )
                key = hit = None
                if incremental is not None:
                    key = (
                        loop_digest(kernel.name, loop),
                        schedule_decisions_digest(schedule),
                        options.control.value,
                        options.max_skid_buffers,
                        buffers_sig,
                        fifos_sig,
                    )
                    hit = incremental.get(key)
                with obs.span(
                    "emit-loop", kernel=kernel.name, loop=loop.name
                ) as loop_span:
                    cells_before = len(netlist.cells)
                    if hit is not None:
                        info = emitter.replay(hit)
                        obs.replay_span(loop_span, hit["span"])
                        loop_span.set("cached", True)
                    else:
                        info = emitter.emit()
                        loop_span.set("depth", info.depth)
                        loop_span.set("cells", len(netlist.cells) - cells_before)
                        loop_span.set("enable_fanout", info.enable_fanout)
                        if incremental is not None:
                            incremental.put(
                                key,
                                emitter.record_payload(obs.snapshot_span(loop_span)),
                            )
                obs.add("rtl.loops_emitted", 1)
                loop_infos.append(info)
                # Each loop gets its own small controller (HLS emits one
                # FSM per process/loop nest) talking only to that loop's
                # flow gate.
                if info.control_gate is not None:
                    ctrl = netlist.new_cell(
                        f"fsm_{kernel.name}_{loop.name}",
                        CellKind.CTRL,
                        delay_ns=CTRL_CLK_Q_NS,
                        ffs=8,
                        luts=20,
                    )
                    netlist.connect(
                        f"fsm_go_{kernel.name}_{loop.name}",
                        ctrl,
                        [(info.control_gate, "go")],
                        kind=NetKind.SYNC,
                    )
                    # Sequential loops of one kernel hand off through
                    # their controllers (loop1 done -> loop2 start): tiny
                    # sync nets.
                    if prev_ctrl is not None:
                        netlist.connect(
                            f"fsm_seq_{kernel.name}_{loop.name}",
                            prev_ctrl,
                            [(ctrl, "next")],
                            kind=NetKind.SYNC,
                        )
                    prev_ctrl = ctrl
    netlist.validate()
    return GenResult(
        netlist=netlist,
        loops=loop_infos,
        resources=ResourceReport.of_netlist(netlist),
        anchor=anchor.name,
    )


class _LoopEmitter:
    """Emits cells and nets for one scheduled loop."""

    def __init__(
        self,
        netlist: Netlist,
        design: Design,
        kernel: Kernel,
        loop: Loop,
        schedule: Schedule,
        options: GenOptions,
        buffer_cells: Dict[str, List[Cell]],
        fifo_cells: Dict[str, Cell],
        record: bool = False,
    ) -> None:
        self.netlist = netlist
        self.design = design
        self.kernel = kernel
        self.loop = loop
        self.schedule = schedule
        self.options = options
        self.buffer_cells = buffer_cells
        self.fifo_cells = fifo_cells
        #: When recording, the ordered cell/net construction tape — every
        #: ``_cell``/``_connect`` call with its *arguments* (cells and nets
        #: interleaved in insertion order, which placement depends on).
        #: Replaying the tape through the same helpers reproduces names,
        #: uniquification, and LoopInfo bookkeeping bit-identically.
        self.tape: Optional[List[tuple]] = [] if record else None
        self.prefix = f"{kernel.name}.{loop.name}"
        #: value name -> cell providing it in its definition cycle
        self.def_cells: Dict[str, Cell] = {}
        #: op name -> cell receiving the op's operand pins
        self.sink_cells: Dict[str, Cell] = {}
        self.info = LoopInfo(
            kernel=kernel.name,
            name=loop.name,
            depth=schedule.depth,
            widths=schedule.width_profile(),
            pipeline=loop.pipeline,
        )

    # -- small helpers ---------------------------------------------------
    def _cell(self, stem: str, kind: CellKind, stage: int, **kwargs) -> Cell:
        if self.tape is not None:
            self.tape.append(("cell", stem, kind, stage, dict(kwargs)))
        cell = self.netlist.new_cell(f"{self.prefix}.{stem}", kind, **kwargs)
        self.info.stage_cells.setdefault(stage, []).append(cell)
        if cell.is_sequential:
            self.info.seq_cells.append(cell)
        if stage <= 0:
            self.info.first_stage_cells.append(cell)
        return cell

    def _connect(
        self,
        name: str,
        driver: Cell,
        sinks: List[Tuple[Cell, str]],
        kind: NetKind = NetKind.DATA,
        width: int = 1,
    ):
        """``netlist.connect`` with tape recording (sinks/driver by name)."""
        if self.tape is not None:
            self.tape.append(
                ("net", name, driver.name,
                 [(cell.name, pin) for cell, pin in sinks], kind, width)
            )
        connect = self.netlist.connect
        return connect(name, driver, sinks, kind=kind, width=width)

    def record_payload(self, span_snapshot: Dict[str, Any]) -> Dict[str, Any]:
        """Freeze this emission into a memo payload (everything by name)."""
        info = self.info
        return {
            "tape": self.tape,
            "statuses": info.statuses,
            "enable_fanout": info.enable_fanout,
            "skid_specs": list(info.skid_specs),
            "call_cells": [cell.name for cell in info.call_cells],
            "control_gate": (
                info.control_gate.name if info.control_gate is not None else None
            ),
            "span": span_snapshot,
        }

    def replay(self, hit: Dict[str, Any]) -> LoopInfo:
        """Re-emit this loop from a recorded tape.

        The tape replays through :meth:`_cell` (reproducing name
        uniquification and stage/sequential bookkeeping) and raw
        ``netlist.connect`` with driver/sinks resolved by their recorded
        names — valid because all emitter names are loop-prefixed and the
        shared BRAM/FIFO cell layout is pinned by the memo key, so the
        names a replayed loop produces are independent of what *other*
        (possibly changed) loops emitted.
        """
        self.tape = None  # never re-record a replay
        cells = self.netlist.cells
        connect = self.netlist.connect
        for entry in hit["tape"]:
            if entry[0] == "cell":
                _tag, stem, kind, stage, kwargs = entry
                self._cell(stem, kind, stage, **kwargs)
            else:
                _tag, name, driver, sinks, kind, width = entry
                connect(
                    name,
                    cells[driver],
                    [(cells[sink], pin) for sink, pin in sinks],
                    kind=kind,
                    width=width,
                )
        info = self.info
        info.statuses = hit["statuses"]
        info.enable_fanout = hit["enable_fanout"]
        info.skid_specs = list(hit["skid_specs"])
        info.call_cells = [cells[name] for name in hit["call_cells"]]
        gate = hit["control_gate"]
        info.control_gate = cells[gate] if gate is not None else None
        return info

    def _bank_cells(self, op: Operation) -> List[Cell]:
        buffer: Buffer = op.attrs["buffer"]
        cells = self.buffer_cells[buffer.name]
        group = op.attrs.get("bank_group")
        if not isinstance(group, tuple):
            # "per_copy" markers survive lowering when the loop's unroll
            # factor is 1 (nothing to partition); the access sees the whole
            # buffer, same as an unmarked op.
            return cells
        index, total = group
        size = math.ceil(len(cells) / total)
        chunk = cells[index * size : (index + 1) * size]
        return chunk or cells[-size:]

    def _reg_chain(
        self, stem: str, source: Cell, count: int, width: int, stage: int,
        kind: NetKind = NetKind.DATA,
    ) -> Cell:
        """``count`` movable registers in series after ``source``."""
        cursor = source
        for i in range(count):
            reg = self._cell(
                f"{stem}_p{i}",
                CellKind.FF,
                stage + i + 1,
                delay_ns=CLK_Q_NS,
                ffs=max(1, width),
                width=width,
                movable=True,
            )
            self._connect(
                f"{self.prefix}.{stem}_p{i}", cursor, [(reg, "d")], kind=kind, width=width
            )
            cursor = reg
        return cursor

    # -- main ------------------------------------------------------------
    def emit(self) -> LoopInfo:
        dfg = self.loop.body
        # Input capture registers.
        for value in dfg.inputs:
            cell = self._cell(
                f"in_{value.name}",
                CellKind.FF,
                0,
                delay_ns=CLK_Q_NS,
                ffs=value.type.bits,
                width=value.type.bits,
                tag="input",
            )
            self.def_cells[value.name] = cell
        # Operation cells.
        for op in dfg.topo_order():
            self._emit_op(op)
        # Dataflow nets with pipeline boundary registers.
        for value in dfg.values.values():
            self._emit_value_nets(value)
        # Flow control.  Pure sub-module wrapper loops (one CALL, no
        # streaming) keep their control inside the module — no loop-level
        # stall logic is generated for them.
        calls = [op for op in dfg.ops if op.opcode is Opcode.CALL]
        is_wrapper = (
            not self.loop.pipeline
            and len(calls) <= 1
            and not any(self.loop.fifo_endpoints())
        )
        if not is_wrapper:
            if self.options.control.uses_skid and self.loop.pipeline:
                self._emit_skid_control()
            else:
                self._emit_stall_control()
        self._emit_call_sync()
        return self.info

    # -- per-op emission -----------------------------------------------------
    def _emit_op(self, op: Operation) -> None:
        entry = self.schedule.entry(op)
        stage = entry.cycle
        extra = int(op.attrs.get("extra_latency", 0))
        opcode = op.opcode

        if opcode is Opcode.CONST:
            return  # constants are absorbed into consuming LUTs
        if opcode is Opcode.REG:
            cell = self._cell(
                f"reg_{op.name}",
                CellKind.FF,
                stage,
                delay_ns=CLK_Q_NS,
                ffs=op.result.type.bits,
                width=op.result.type.bits,
                movable=True,
            )
            self.sink_cells[op.name] = cell
            self.def_cells[op.result.name] = cell
            return
        if opcode is Opcode.FIFO_READ:
            fifo: Fifo = op.attrs["fifo"]
            port = self._cell(
                f"rd_{op.name}", CellKind.LOGIC, stage,
                delay_ns=FIFO_PORT_NS, luts=6, width=fifo.width,
            )
            self._connect(
                f"{self.prefix}.{fifo.name}_dout",
                self.fifo_cells[fifo.name],
                [(port, "dout")],
                kind=NetKind.DATA,
                width=fifo.width,
            )
            self.sink_cells[op.name] = port
            self.def_cells[op.result.name] = port
            return
        if opcode is Opcode.FIFO_WRITE:
            fifo = op.attrs["fifo"]
            port = self._cell(
                f"wr_{op.name}", CellKind.LOGIC, stage,
                delay_ns=FIFO_PORT_NS, luts=6, width=fifo.width,
            )
            self._connect(
                f"{self.prefix}.{fifo.name}_din",
                port,
                [(self.fifo_cells[fifo.name], "din")],
                kind=NetKind.DATA,
                width=fifo.width,
            )
            self.sink_cells[op.name] = port
            return
        if opcode is Opcode.STORE:
            port = self._cell(
                f"st_{op.name}", CellKind.LOGIC, stage,
                delay_ns=STORE_PORT_LOGIC_NS, luts=24,
                width=op.operands[1].type.bits,
            )
            banks = self._bank_cells(op)
            self._dist_tree(
                f"st_{op.name}_wdata",
                port,
                [(bram, "din") for bram in banks],
                port.width,
                extra,
                stage,
                kind=NetKind.MEM,
            )
            self.sink_cells[op.name] = port
            return
        if opcode is Opcode.LOAD:
            banks = self._bank_cells(op)
            e_addr = math.ceil(extra / 2)
            e_ret = extra - e_addr
            aport = self._cell(
                f"ld_{op.name}_a", CellKind.LOGIC, stage,
                delay_ns=LOAD_ADDR_LOGIC_NS, luts=12, width=20,
            )
            self._dist_tree(
                f"ld_{op.name}_addr",
                aport,
                [(bram, "addr") for bram in banks],
                20,
                e_addr,
                stage,
                kind=NetKind.MEM,
            )
            width = op.result.type.bits
            last = self._mux_tree(
                f"ld_{op.name}", banks, width, stage + 1 + e_addr, e_ret + 1
            )
            self.sink_cells[op.name] = aport
            self.def_cells[op.result.name] = last
            return
        if opcode is Opcode.CALL:
            area = op.attrs.get("area", {})
            cell = self._cell(
                f"call_{op.name}", CellKind.CTRL, stage,
                delay_ns=CTRL_CLK_Q_NS,
                luts=int(area.get("luts", 200)),
                ffs=int(area.get("ffs", 200)),
                brams=int(area.get("brams", 0)),
                dsps=int(area.get("dsps", 0)),
                width=op.result.type.bits if op.result is not None else 0,
                tag=f"call:{op.attrs.get('callee', '?')}",
            )
            self.info.call_cells.append(cell)
            self.sink_cells[op.name] = cell
            if op.result is not None:
                # Sub-modules register their outputs (standard interface
                # discipline); the movable register also splits the
                # module-to-module hop for the physical optimizer.
                out_reg = self._cell(
                    f"call_{op.name}_q", CellKind.FF,
                    self.schedule.entry(op).finish_cycle,
                    delay_ns=CLK_Q_NS,
                    ffs=max(1, op.result.type.bits),
                    width=op.result.type.bits,
                    movable=True,
                )
                self._connect(
                    f"{self.prefix}.call_{op.name}_q", cell, [(out_reg, "d")],
                    kind=NetKind.DATA, width=op.result.type.bits,
                )
                self.def_cells[op.result.name] = out_reg
            return

        # Plain combinational operator — possibly internally pipelined over
        # ``extra + 1`` stages (how DSP multipliers and float cores ship):
        # stage cells of delay D/(extra+1) separated by movable registers.
        dtype = op.result.type if op.result is not None else op.operands[-1].type
        luts, ffs, dsps = op_resources(opcode, dtype)
        kind = CellKind.DSP if dsps else CellKind.LOGIC
        stages = extra + 1
        total_delay = physical_cell_delay(opcode, dtype)

        def _share(total: int, s: int) -> int:
            # Exact partition of `total` units across stages (no inflation).
            return total * (s + 1) // stages - total * s // stages

        cell = self._cell(
            f"op_{op.name}", kind, stage,
            delay_ns=total_delay / stages,
            luts=_share(luts, 0), ffs=_share(ffs, 0), dsps=_share(dsps, 0),
            width=dtype.bits,
            tag=op.opcode.value,
        )
        self.sink_cells[op.name] = cell
        cursor = cell
        for s in range(extra):
            reg = self._cell(
                f"op_{op.name}_s{s}r", CellKind.FF, stage + s,
                delay_ns=CLK_Q_NS, ffs=max(1, dtype.bits), width=dtype.bits,
                movable=True,
            )
            self._connect(
                f"{self.prefix}.op_{op.name}_s{s}", cursor, [(reg, "d")],
                kind=NetKind.DATA, width=dtype.bits,
            )
            stage_kind = kind if _share(dsps, s + 1) else (
                CellKind.LOGIC if kind is CellKind.DSP else kind
            )
            stage_cell = self._cell(
                f"op_{op.name}_s{s + 1}", stage_kind, stage + s + 1,
                delay_ns=total_delay / stages,
                luts=_share(luts, s + 1), ffs=_share(ffs, s + 1),
                dsps=_share(dsps, s + 1),
                width=dtype.bits, tag=op.opcode.value,
                movable=True,  # internal core stage, relocatable by retiming
            )
            self._connect(
                f"{self.prefix}.op_{op.name}_s{s}b", reg, [(stage_cell, "i")],
                kind=NetKind.DATA, width=dtype.bits,
            )
            cursor = stage_cell
        if op.result is not None:
            self.def_cells[op.result.name] = cursor

    def _dist_tree(
        self,
        stem: str,
        source: Cell,
        sinks: List[Tuple[Cell, str]],
        width: int,
        reg_layers: int,
        stage: int,
        kind: NetKind = NetKind.MEM,
    ) -> None:
        """Registered fanout tree from ``source`` to ``sinks``.

        ``reg_layers`` register levels split the route into
        ``reg_layers + 1`` hops — how the "additional pipelining" of §4.1
        physically distributes a value across a sea of BRAM banks.  With
        ``reg_layers == 0`` this degenerates to one flat net (the baseline
        structure the paper criticizes).
        """
        if reg_layers <= 0 or len(sinks) <= 4:
            self._connect(
                f"{self.prefix}.{stem}", source, sinks, kind=kind, width=width
            )
            return
        branch = max(2, math.ceil(len(sinks) ** (1.0 / (reg_layers + 1))))
        groups = max(2, min(branch, len(sinks)))
        size = math.ceil(len(sinks) / groups)
        level_sinks: List[Tuple[Cell, str]] = []
        for gi in range(0, len(sinks), size):
            chunk = sinks[gi : gi + size]
            reg = self._cell(
                f"{stem}_t{reg_layers}_{gi // size}",
                CellKind.FF,
                stage,
                delay_ns=CLK_Q_NS,
                ffs=max(1, width),
                width=width,
            )
            level_sinks.append((reg, "d"))
            self._dist_tree(
                f"{stem}_b{gi // size}",
                reg,
                chunk,
                width,
                reg_layers - 1,
                stage + 1,
                kind=kind,
            )
        self._connect(
            f"{self.prefix}.{stem}", source, level_sinks, kind=kind, width=width
        )

    def _mux_tree(
        self, stem: str, banks: List[Cell], width: int, stage: int, levels: int
    ) -> Cell:
        """Bank-read multiplexing as a (possibly registered) tree.

        With ``levels`` > 1 the tree has registers between mux levels —
        this is how "additional pipelining ... to variables interacting
        with the buffer" (§4.1) is materialized on the read-return side.
        Returns the cell producing the selected data.
        """
        branching = max(2, math.ceil(len(banks) ** (1.0 / levels)))
        current: List[Cell] = list(banks)
        level = 0
        while True:
            chunks = [
                current[i : i + branching] for i in range(0, len(current), branching)
            ]
            nxt: List[Cell] = []
            final = len(chunks) == 1
            for ci, chunk in enumerate(chunks):
                mux = self._cell(
                    f"{stem}_mux{level}_{ci}", CellKind.LOGIC, stage + level,
                    delay_ns=LOAD_MUX_LOGIC_NS, luts=6 * len(chunk), width=width,
                )
                for i, src in enumerate(chunk):
                    self._connect(
                        f"{self.prefix}.{stem}_q{level}_{ci}_{i}",
                        src,
                        [(mux, f"q{i}")],
                        kind=NetKind.MEM,
                        width=width,
                    )
                if final:
                    return mux
                reg = self._cell(
                    f"{stem}_mr{level}_{ci}", CellKind.FF, stage + level,
                    delay_ns=CLK_Q_NS, ffs=width, width=width, movable=True,
                )
                self._connect(
                    f"{self.prefix}.{stem}_mr{level}_{ci}",
                    mux,
                    [(reg, "d")],
                    kind=NetKind.MEM,
                    width=width,
                )
                nxt.append(reg)
            current = nxt
            level += 1
            if level > 12:  # pragma: no cover - defensive
                raise RTLError(f"mux tree for {stem} failed to converge")

    # -- dataflow nets --------------------------------------------------------
    def _emit_value_nets(self, value: Value) -> None:
        if value.is_const:
            return
        def_cell = self.def_cells.get(value.name)
        if def_cell is None:
            return  # sink-op names (store/fifo_write) have no result value
        avail = self.schedule.cycle_of_value(value)
        consumers: Dict[int, List[Tuple[Cell, str]]] = {}
        for op in value.uses:
            entry = self.schedule.entry(op)
            sink = self.sink_cells.get(op.name)
            if sink is None:
                continue
            slots = op.operands.count(value)
            for slot in range(slots):
                consumers.setdefault(entry.cycle, []).append((sink, f"i{slot}"))
        if consumers:
            last_needed = max(consumers)
        elif value.producer is not None:
            last_needed = self.schedule.depth - 1  # live-out
        else:
            last_needed = avail
        width = value.type.bits
        cursor = def_cell
        for cycle in range(avail, last_needed + 1):
            sinks = list(consumers.get(cycle, []))
            if cycle < last_needed:
                reg = self._cell(
                    f"pipe_{value.name}_c{cycle}",
                    CellKind.FF,
                    cycle,
                    delay_ns=CLK_Q_NS,
                    ffs=width,
                    width=width,
                    movable=True,
                    tag="pipe_reg",
                )
                obs.add("rtl.pipeline_registers", 1)
                sinks.append((reg, "d"))
            if sinks:
                self._connect(
                    f"{self.prefix}.{value.name}_c{cycle}",
                    cursor,
                    sinks,
                    kind=NetKind.DATA,
                    width=width,
                )
            if cycle < last_needed:
                cursor = reg

    # -- control styles -----------------------------------------------------
    def _status_sources(self) -> List[Cell]:
        reads, writes = self.loop.fifo_endpoints()
        return [self.fifo_cells[name] for name in reads + writes]

    def _emit_stall_control(self) -> None:
        """Baseline: comb aggregate of every status, broadcast to all CEs."""
        statuses = self._status_sources()
        self.info.statuses = len(statuses)
        agg = self._cell(
            "stall_agg", CellKind.LOGIC, 0,
            delay_ns=_reduce_tree_delay(len(statuses) + 1),
            luts=4 + len(statuses) // 3,
            width=1,
        )
        self.info.control_gate = agg
        for i, fifo_cell in enumerate(statuses):
            self._connect(
                f"{self.prefix}.status{i}",
                fifo_cell,
                [(agg, f"s{i}")],
                kind=NetKind.STATUS,
            )
        targets: List[Tuple[Cell, str]] = []
        for cell in self.info.seq_cells:
            if cell is agg:
                continue
            targets.append((cell, "ce"))
            if cell.kind is CellKind.CTRL and cell.ffs > 4_000:
                # A big sub-module exposes many clock-enable pins — the
                # stall broadcast must reach registers throughout its area.
                extra_pins = min(64, cell.ffs // 5_000)
                targets.extend((cell, f"ce{i}") for i in range(extra_pins))
        for name in set(self.loop.buffers_touched()):
            targets.extend((bram, "we") for bram in self.buffer_cells[name])
        for name in set(sum(self.loop.fifo_endpoints(), [])):
            targets.append((self.fifo_cells[name], "en"))
        if targets:
            self.info.enable_fanout = len(targets)
            obs.observe("rtl.enable_fanout", len(targets))
            self._connect(
                f"{self.prefix}.enable", agg, targets, kind=NetKind.ENABLE
            )

    def _emit_skid_control(self) -> None:
        """§4.3: valid chain + skid FIFO(s); only stage 0 sees back-pressure."""
        depth = max(1, self.schedule.depth)
        widths = skid_width_profile(self.schedule)
        if self.options.control is ControlStyle.SKID_MINAREA:
            plan = min_area_cuts(widths, max_buffers=self.options.max_skid_buffers)
        else:
            plan = end_buffer_plan(widths)
        specs = skid_buffer_specs(plan)
        self.info.skid_specs = specs

        # Valid-bit chain (one flag register per stage).
        valids: List[Cell] = []
        for c in range(depth):
            v = self._cell(
                f"valid{c}", CellKind.FF, c, delay_ns=CLK_Q_NS, ffs=1, width=1
            )
            valids.append(v)
        for c in range(depth - 1):
            self._connect(
                f"{self.prefix}.vchain{c}", valids[c], [(valids[c + 1], "d")],
                kind=NetKind.ENABLE,
            )
        # Local write gating: each stage's side effects are enabled by that
        # stage's valid *register* — replicable by the backend, unlike the
        # global comb stall signal.
        for c in range(depth):
            sinks: List[Tuple[Cell, str]] = []
            for cell in self.info.stage_cells.get(c, []):
                if cell.kind is CellKind.LOGIC and cell.name.find(".st_") >= 0:
                    sinks.append((cell, "ven"))
            for op in self.loop.body.ops:
                if op.opcode is Opcode.FIFO_WRITE and self.schedule.entry(op).cycle == c:
                    sinks.append((self.fifo_cells[op.attrs["fifo"].name], "en"))
            if sinks:
                self._connect(
                    f"{self.prefix}.ven{c}", valids[c], sinks, kind=NetKind.ENABLE
                )
            # Bank write-enables ride a registered tree matching the data
            # distribution depth, so WE arrives with the data — a valid
            # *register* drives it, which the backend can replicate,
            # unlike the monolithic comb stall of the baseline.
            for op in self.loop.body.ops:
                if op.opcode is Opcode.STORE and self.schedule.entry(op).cycle == c:
                    extra = int(op.attrs.get("extra_latency", 0))
                    self._dist_tree(
                        f"ven_{op.name}",
                        valids[c],
                        [(bram, "we") for bram in self._bank_cells(op)],
                        1,
                        extra,
                        c,
                        kind=NetKind.ENABLE,
                    )

        # Skid FIFOs tap the boundary values at their cut stage.
        skid_cells: List[Cell] = []
        for spec in specs:
            luts, ffs, brams = spec.luts, spec.ffs, spec.brams
            cell = self._cell(
                f"skid_s{spec.after_stage}", CellKind.FIFO,
                min(spec.after_stage, depth - 1),
                delay_ns=FIFO_CLK_Q_NS, luts=luts, ffs=ffs, brams=brams,
                width=spec.width, tag="skid",
            )
            skid_cells.append(cell)
            stage = min(spec.after_stage - 1, depth - 1)
            feeders = [
                c for c in self.info.stage_cells.get(stage, [])
                if c.kind is CellKind.FF and c.width > 1
            ][:4] or [valids[stage]]
            for i, feeder in enumerate(feeders):
                self._connect(
                    f"{self.prefix}.skid_in{spec.after_stage}_{i}",
                    feeder,
                    [(cell, "din")],
                    kind=NetKind.DATA,
                    width=spec.width,
                )

        # Back-pressure: input-fifo empty + skid non-empty gate stage 0 only.
        statuses = [self.fifo_cells[n] for n in self.loop.fifo_endpoints()[0]]
        statuses += skid_cells
        self.info.statuses = len(statuses)
        gate = self._cell(
            "read_gate", CellKind.LOGIC, 0,
            delay_ns=_reduce_tree_delay(len(statuses) + 1),
            luts=4, width=1,
        )
        self.info.control_gate = gate
        for i, cell in enumerate(statuses):
            self._connect(
                f"{self.prefix}.sstat{i}", cell, [(gate, f"s{i}")], kind=NetKind.STATUS
            )
        # The comb gate drives only the head valid register and the FIFO
        # read-enables (tiny fanout).  Stage-0 data capture is gated by the
        # valid *register* — a replicable driver, so even a wide input
        # boundary stays fast.
        targets: List[Tuple[Cell, str]] = [(valids[0], "ce")]
        for name in self.loop.fifo_endpoints()[0]:
            targets.append((self.fifo_cells[name], "ren"))
        self._connect(
            f"{self.prefix}.read_en", gate, targets, kind=NetKind.ENABLE
        )
        # Only FIFO read ports are gated: plain capture registers free-run
        # in an always-flowing pipeline (invalid slots are just bubbles),
        # which is precisely how the skid scheme sheds the CE broadcast.
        capture: List[Tuple[Cell, str]] = []
        for cell in self.info.stage_cells.get(0, []):
            if cell.name.find(".rd_") >= 0:
                capture.append((cell, "ce"))
        self.info.enable_fanout = len(targets) + len(capture)
        obs.observe("rtl.enable_fanout", self.info.enable_fanout)
        if capture:
            self._connect(
                f"{self.prefix}.capture_en", valids[0], capture, kind=NetKind.ENABLE
            )

    # -- parallel-module synchronization --------------------------------------
    def _emit_call_sync(self) -> None:
        """Synchronize *parallel* instances: calls issued in the same state.

        Chained calls (a pipeline of sub-modules) need no synchronization —
        data dependencies order them.
        """
        groups: Dict[int, List[Operation]] = {}
        for op in self.loop.body.ops:
            if op.opcode is Opcode.CALL:
                groups.setdefault(self.schedule.entry(op).cycle, []).append(op)
        for calls in groups.values():
            if len(calls) >= 2:
                self._emit_call_sync_group(calls)

    def _emit_call_sync_group(self, calls: List[Operation]) -> None:
        pruned = any(op.attrs.get("sync_pruned") for op in calls)
        done_ffs: Dict[str, Cell] = {}
        for op in calls:
            cell = self._cell(
                f"done_{op.name}", CellKind.FF, self.schedule.entry(op).cycle,
                delay_ns=CLK_Q_NS, ffs=1, width=1,
            )
            done_ffs[op.name] = cell
            self._connect(
                f"{self.prefix}.done_{op.name}",
                self.sink_cells[op.name],
                [(cell, "d")],
                kind=NetKind.SYNC,
            )
        # Start-broadcast sinks: every parallel instance plus the consumers
        # of their results (the next FSM state's capture registers).
        sinks: List[Tuple[Cell, str]] = [
            (self.sink_cells[op.name], "start") for op in calls
        ]
        for op in calls:
            if op.result is None:
                continue
            for user in op.result.uses:
                sink = self.sink_cells.get(user.name)
                if sink is not None:
                    sinks.append((sink, "sync_en"))
        if pruned:
            winner = next(op for op in calls if op.attrs.get("sync_pruned"))
            driver = done_ffs[winner.name]
        else:
            reduce_gate = self._cell(
                "done_reduce", CellKind.LOGIC,
                max(self.schedule.entry(op).cycle for op in calls),
                delay_ns=_reduce_tree_delay(len(calls)),
                luts=4 + len(calls) // 3,
                width=1,
            )
            for op in calls:
                self._connect(
                    f"{self.prefix}.dnet_{op.name}",
                    done_ffs[op.name],
                    [(reduce_gate, f"d_{op.name}")],
                    kind=NetKind.SYNC,
                )
            driver = reduce_gate
        self._connect(
            f"{self.prefix}.start", driver, sinks, kind=NetKind.SYNC
        )
