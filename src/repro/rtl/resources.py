"""Resource accounting and device utilization reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.physical.device import Device, get_device
from repro.rtl.netlist import Netlist


@dataclass(frozen=True)
class ResourceReport:
    """Primitive usage of a generated design.

    Percentages are against a named device, Table-1 style.
    """

    luts: int
    ffs: int
    brams: int
    dsps: int

    @classmethod
    def of_netlist(cls, netlist: Netlist) -> "ResourceReport":
        area = netlist.area()
        return cls(
            luts=area["luts"], ffs=area["ffs"], brams=area["brams"], dsps=area["dsps"]
        )

    def __add__(self, other: "ResourceReport") -> "ResourceReport":
        return ResourceReport(
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.brams + other.brams,
            self.dsps + other.dsps,
        )

    def utilization(self, device: str) -> Dict[str, float]:
        """Percent of each primitive class on ``device``."""
        dev: Device = get_device(device)
        return dev.utilization(self.luts, self.ffs, self.brams, self.dsps)

    def utilization_row(self, device: str) -> str:
        """Formatted like Table 1: LUT/FF/BRAM/DSP percentages."""
        util = self.utilization(device)
        return " ".join(f"{key}={util[key]:.1f}%" for key in ("LUT", "FF", "BRAM", "DSP"))
