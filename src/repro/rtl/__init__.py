"""RTL-level netlist representation and generation.

The netlist is the hand-off between HLS (scheduling + binding) and the
physical model: cells with LUT/FF/BRAM/DSP areas connected by typed nets.
Net *kinds* (data / enable / sync / memory) let timing analysis attribute
critical paths to the paper's broadcast classes.
"""

from repro.rtl.netlist import Cell, CellKind, Net, Netlist, NetKind

__all__ = ["Cell", "CellKind", "Net", "NetKind", "Netlist"]
